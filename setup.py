"""Setup shim; the real metadata lives in pyproject.toml.

Kept so legacy editable installs (``pip install -e . --no-use-pep517``)
work in offline environments that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
