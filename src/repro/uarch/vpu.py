"""Vector processing unit model."""

from __future__ import annotations


class VectorUnit:
    """SIMD unit with power gating and architected register state.

    When gated on, vector instructions execute natively (one per issue
    slot).  When gated off, the binary translator's alternate scalar code
    paths execute instead: each vector instruction expands into
    ``emulation_factor`` scalar operations (paper §IV-C2).  The VPU's
    register file is architecturally visible, so every gating transition
    pays an explicit save/restore penalty (500 cycles, paper §IV-D) charged
    by the gating policy layer.
    """

    def __init__(self, width: int, emulation_factor: int) -> None:
        if width <= 0:
            raise ValueError("VPU width must be positive")
        if emulation_factor < 1:
            raise ValueError("emulation factor must be >= 1")
        self.width = width
        self.emulation_factor = emulation_factor
        self.gated_on = True

        self.native_ops = 0
        self.emulated_ops = 0

    def execute(self, n_vector_instrs: int) -> int:
        """Account ``n_vector_instrs``; returns *extra* micro-ops emitted.

        Natively each vector instruction is a single operation (0 extra).
        Under emulation each becomes ``emulation_factor`` scalar ops, i.e.
        ``emulation_factor - 1`` extra ops that occupy scalar issue slots.
        """
        if n_vector_instrs < 0:
            raise ValueError("vector instruction count must be non-negative")
        if self.gated_on:
            self.native_ops += n_vector_instrs
            return 0
        self.emulated_ops += n_vector_instrs
        return n_vector_instrs * (self.emulation_factor - 1)

    def execute_bulk(self, n_vector_instrs: int) -> int:
        """Account a whole batch of vector instructions at once.

        Equivalent to summing :meth:`execute` over the batch *provided the
        gating state is constant across it* — which is the caller's burst
        invariant (gating only changes at burst boundaries).  Returns the
        total extra micro-ops emitted.
        """
        if n_vector_instrs < 0:
            raise ValueError("vector instruction count must be non-negative")
        if self.gated_on:
            self.native_ops += n_vector_instrs
            return 0
        self.emulated_ops += n_vector_instrs
        return n_vector_instrs * (self.emulation_factor - 1)

    def gate_off(self) -> None:
        self.gated_on = False

    def gate_on(self) -> None:
        self.gated_on = True
