"""Cache hierarchy models with way-level power gating for the MLC."""

from repro.uarch.cache.cache import SetAssocCache
from repro.uarch.cache.hierarchy import CacheHierarchy, MemoryLevel

__all__ = ["SetAssocCache", "CacheHierarchy", "MemoryLevel"]
