"""Set-associative write-back cache with way-level power gating."""

from __future__ import annotations

#: Sentinel distinguishing "line absent" from a resident clean line (whose
#: dirty flag is ``False``) on the allocation-free ``dict.pop`` probe.
_ABSENT = object()


class SetAssocCache:
    """Write-back, write-allocate set-associative cache with true LRU.

    Each set is an insertion-ordered ``{line: dirty}`` dict: the *last* key
    is the MRU line and the *first* key the LRU victim.  A hit pops and
    re-inserts its key (an O(1) move-to-back), which is semantically
    identical to the classic recency-ordered list but avoids the per-access
    list scan and ``insert(0, ...)`` churn on the simulator's hottest path.
    ``active_ways`` implements the MLC's way gating: lookups only probe, and
    fills only allocate into, the first ``active_ways`` ways.  Shrinking the
    active ways *flushes* the gated ways — dirty lines are counted for
    writeback cost and clean lines are simply lost — which is exactly the
    state-loss behaviour Table I prescribes ("WB dirty lines, lose clean
    lines, rewarm").
    """

    def __init__(
        self,
        size_kb: float,
        assoc: int,
        line_size: int = 64,
        name: str = "cache",
    ) -> None:
        size_bytes = int(size_kb * 1024)
        if assoc <= 0:
            raise ValueError("associativity must be positive")
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line size must be a positive power of two")
        n_lines = size_bytes // line_size
        if n_lines < assoc or n_lines % assoc:
            raise ValueError(
                f"{name}: size {size_kb}KB not divisible into {assoc}-way sets"
            )
        self.name = name
        self.size_kb = size_kb
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = n_lines // assoc
        if self.n_sets & (self.n_sets - 1):
            raise ValueError(f"{name}: set count {self.n_sets} not a power of two")
        self._set_mask = self.n_sets - 1
        self._line_shift = line_size.bit_length() - 1
        self._sets: list = [{} for _ in range(self.n_sets)]
        self.active_ways = assoc

        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.flushed_dirty = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def active_size_kb(self) -> float:
        return self.size_kb * self.active_ways / self.assoc

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Look up ``addr``; on miss, allocate (possibly evicting a victim).

        Returns True on hit.  Dirty-victim writebacks are tallied in
        ``self.writebacks`` (the energy/latency accounting reads the
        counter rather than a per-access result, keeping this hot path
        allocation-free).
        """
        line = addr >> self._line_shift
        cache_set = self._sets[line & self._set_mask]

        dirty = cache_set.pop(line, _ABSENT)
        if dirty is not _ABSENT:
            self.hits += 1
            cache_set[line] = dirty or is_write
            return True

        self.misses += 1
        cache_set[line] = is_write
        while len(cache_set) > self.active_ways:
            if cache_set.pop(next(iter(cache_set))):
                self.writebacks += 1
        return False

    def charge_bulk(self, hits: int, misses: int, writebacks: int = 0) -> None:
        """Fold batched hit/miss/writeback counts in at once.

        For execution backends that resolve a burst of accesses against the
        set dicts directly and tally outcomes locally; the per-line state
        must already have been applied by the caller.
        """
        self.hits += hits
        self.misses += misses
        self.writebacks += writebacks

    def set_active_ways(self, n_ways: int) -> int:
        """Reconfigure way gating; returns dirty lines flushed (for WB cost).

        Growing the active ways costs nothing here (new ways come up cold);
        shrinking flushes the lines held in the gated ways.
        """
        if not 1 <= n_ways <= self.assoc:
            raise ValueError(f"active ways must be in [1, {self.assoc}]")
        dirty = 0
        if n_ways < self.active_ways:
            for cache_set in self._sets:
                while len(cache_set) > n_ways:
                    if cache_set.pop(next(iter(cache_set))):
                        dirty += 1
            self.flushed_dirty += dirty
            self.writebacks += dirty
        self.active_ways = n_ways
        return dirty

    def flush(self) -> int:
        """Invalidate everything; returns number of dirty lines written back."""
        dirty = 0
        for cache_set in self._sets:
            for entry_dirty in cache_set.values():
                if entry_dirty:
                    dirty += 1
            cache_set.clear()
        self.writebacks += dirty
        return dirty

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SetAssocCache({self.name}, {self.size_kb}KB, {self.assoc}-way, "
            f"active={self.active_ways})"
        )
