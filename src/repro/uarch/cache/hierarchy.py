"""Multi-level cache hierarchy with a gateable middle-level cache."""

from __future__ import annotations

from enum import IntEnum
from typing import Optional, Tuple

from repro.uarch.cache.cache import SetAssocCache
from repro.uarch.cache.prefetch import StreamPrefetcher


class MemoryLevel(IntEnum):
    """Where an access was satisfied."""

    L1 = 0
    MLC = 1
    LLC = 2
    MEMORY = 3


class CacheHierarchy:
    """L1 → MLC → (optional LLC) → memory.

    The MLC is the PowerChop-managed level: its ``active_ways`` can be
    reconfigured at runtime.  Per Table I the MLC continues to service
    requests in every gating state (ways are gated, never the whole cache).

    Latencies are *additional* cycles beyond the pipelined L1 hit.
    """

    def __init__(
        self,
        l1: SetAssocCache,
        mlc: SetAssocCache,
        llc: Optional[SetAssocCache],
        mlc_latency: int,
        llc_latency: int,
        memory_latency: int,
        prefetch_streams: int = 8,
        prefetch_window: int = 4,
    ) -> None:
        self.l1 = l1
        self.mlc = mlc
        self.llc = llc
        self.mlc_latency = mlc_latency
        self.llc_latency = llc_latency
        self.memory_latency = memory_latency
        self.level_counts = [0, 0, 0, 0]
        self.prefetcher = (
            StreamPrefetcher(prefetch_streams, prefetch_window)
            if prefetch_streams
            else None
        )
        #: Stall charged when the prefetcher covered a below-MLC access:
        #: the line was staged ahead of demand, leaving roughly an MLC hit's
        #: worth of exposure.
        self.prefetched_latency = mlc_latency
        self.prefetch_covered = 0
        self._line_shift = l1.line_size.bit_length() - 1

    def access(self, addr: int, is_write: bool = False) -> Tuple[int, MemoryLevel]:
        """Walk the hierarchy; returns (stall cycles, satisfying level)."""
        if self.l1.access(addr, is_write):
            self.level_counts[MemoryLevel.L1] += 1
            return 0, MemoryLevel.L1
        return self.access_below_l1(addr, is_write)

    def access_below_l1(self, addr: int, is_write: bool) -> Tuple[int, MemoryLevel]:
        """Service an access the L1 already missed (prefetcher consulted).

        Split out of :meth:`access` so the fast-path run loop can probe the
        L1 inline (one dict operation) and fall into this single monomorphic
        call for the MLC → LLC → memory walk only on an L1 miss.
        """
        prefetched = False
        if self.prefetcher is not None:
            prefetched = self.prefetcher.access(addr >> self._line_shift)
        if self.mlc.access(addr, is_write):
            self.level_counts[MemoryLevel.MLC] += 1
            return self.mlc_latency, MemoryLevel.MLC
        if self.llc is not None and self.llc.access(addr, is_write):
            self.level_counts[MemoryLevel.LLC] += 1
            if prefetched:
                self.prefetch_covered += 1
                return self.prefetched_latency, MemoryLevel.LLC
            return self.llc_latency, MemoryLevel.LLC
        self.level_counts[MemoryLevel.MEMORY] += 1
        if prefetched:
            self.prefetch_covered += 1
            return self.prefetched_latency, MemoryLevel.MEMORY
        return self.memory_latency, MemoryLevel.MEMORY

    def set_mlc_ways(self, n_ways: int) -> int:
        """Way-gate the MLC; returns the number of dirty lines flushed."""
        return self.mlc.set_active_ways(n_ways)

    @property
    def mlc_hits(self) -> int:
        return self.mlc.hits
