"""Stream prefetcher model.

Both design points (Nehalem-class and Cortex-A9-class) ship hardware
stream/stride prefetchers, and they matter here: sequential working-set
sweeps — including the MLC rewarm traffic after a way-gating transition —
are largely covered by the prefetcher rather than paying full DRAM latency.
The model tracks a small number of miss streams; an access that continues a
tracked stream within ``window`` lines counts as prefetched.
"""

from __future__ import annotations


class StreamPrefetcher:
    """Detects sequential miss streams over cache-line addresses."""

    __slots__ = ("window", "_streams", "_clock", "_stamps", "hits", "misses")

    def __init__(self, n_streams: int = 8, window: int = 4) -> None:
        if n_streams < 1 or window < 1:
            raise ValueError("streams and window must be >= 1")
        self.window = window
        self._streams = [-(1 << 60)] * n_streams
        self._stamps = [0] * n_streams
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Observe one miss-stream line; True if a stream covers it.

        A covered access would have been prefetched ahead of demand.  The
        stream advances to the new line either way; unmatched lines start a
        new stream in the least-recently-used slot.
        """
        clock = self._clock + 1
        self._clock = clock
        streams = self._streams
        stamps = self._stamps
        window = self.window
        i = 0
        for head in streams:
            delta = line - head
            if 0 <= delta <= window:
                if delta:
                    streams[i] = line
                stamps[i] = clock
                self.hits += 1
                return True
            i += 1
        self.misses += 1
        # First index holding the minimal stamp — identical victim choice
        # to min(range(n), key=...) but at C speed.
        lru = stamps.index(min(stamps))
        streams[lru] = line
        stamps[lru] = clock
        return False

    @property
    def coverage(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
