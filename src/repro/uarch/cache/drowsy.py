"""Drowsy-cache baseline (Flautner et al., paper §VI related work).

An alternative MLC leakage-reduction technique PowerChop is positioned
against: instead of power gating ways (losing state), every line is
periodically dropped into a *drowsy* low-voltage mode that retains state at
a fraction of nominal leakage; touching a drowsy line first pays a short
wake-up penalty.  Leakage savings are bounded by the drowsy retention
voltage and, unlike PowerChop, dynamic (per-access) power is unaffected.
"""

from __future__ import annotations

from repro.uarch.cache.cache import SetAssocCache

#: Leakage of a drowsy line relative to full voltage (literature: ~6-25%;
#: we use the conservative end of Flautner et al.'s reported range).
DROWSY_LEAKAGE_FRAC = 0.25
#: Cycles to restore a drowsy line to full voltage before access.
WAKE_CYCLES = 1


class DrowsySetAssocCache(SetAssocCache):
    """Set-associative cache whose lines can be put into drowsy mode.

    Entries are ``[line, dirty, drowsy]``.  ``drowse_all()`` (called
    periodically by :class:`DrowsyMLCController`) puts every resident line
    to sleep; an access to a drowsy line wakes it, counting toward
    ``wakes`` so the timing model can charge the wake penalty.  The
    ``drowsy_line_cycles`` integral feeds the leakage model.

    Unlike the base class (whose sets are ordered dicts), the per-line
    drowsy bit needs mutable multi-field entries, so this subclass keeps
    the classic recency-ordered list representation (index 0 is MRU) and
    carries its own list-based ``access``/``set_active_ways``/``flush``.
    """

    def __init__(self, size_kb, assoc, line_size=64, name="drowsy"):
        super().__init__(size_kb, assoc, line_size, name)
        self._sets = [[] for _ in range(self.n_sets)]
        self.wakes = 0
        self.drowsy_count = 0
        self.drowsy_line_cycles = 0.0
        #: Invalid (never-filled / evicted) lines hold no state and sit at
        #: the drowsy retention voltage permanently, so they count toward
        #: the drowsy integral too.
        self.resident_line_cycles = 0.0
        self._resident_count = 0
        self._last_event_cycle = 0.0

    def _advance(self, now_cycles: float) -> None:
        if now_cycles > self._last_event_cycle:
            delta = now_cycles - self._last_event_cycle
            self.drowsy_line_cycles += self.drowsy_count * delta
            self.resident_line_cycles += self._resident_count * delta
            self._last_event_cycle = now_cycles

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Untimed lookup (list-based twin of the base-class fast path)."""
        line = addr >> self._line_shift
        cache_set = self._sets[line & self._set_mask]
        for i, entry in enumerate(cache_set):
            if entry[0] == line:
                self.hits += 1
                if i:
                    cache_set.insert(0, cache_set.pop(i))
                if is_write:
                    cache_set[0][1] = True
                return True
        self.misses += 1
        cache_set.insert(0, [line, is_write])
        while len(cache_set) > self.active_ways:
            victim = cache_set.pop()
            if victim[1]:
                self.writebacks += 1
        return False

    def set_active_ways(self, n_ways: int) -> int:
        if not 1 <= n_ways <= self.assoc:
            raise ValueError(f"active ways must be in [1, {self.assoc}]")
        dirty = 0
        if n_ways < self.active_ways:
            for cache_set in self._sets:
                while len(cache_set) > n_ways:
                    victim = cache_set.pop()
                    if victim[1]:
                        dirty += 1
            self.flushed_dirty += dirty
            self.writebacks += dirty
        self.active_ways = n_ways
        return dirty

    def flush(self) -> int:
        dirty = 0
        for cache_set in self._sets:
            for entry in cache_set:
                if entry[1]:
                    dirty += 1
            cache_set.clear()
        self.writebacks += dirty
        return dirty

    def access_timed(self, addr: int, now_cycles: float, is_write: bool = False) -> bool:
        """Like :meth:`access`, but wakes drowsy lines and tracks time."""
        self._advance(now_cycles)
        line = addr >> self._line_shift
        cache_set = self._sets[line & self._set_mask]
        for i, entry in enumerate(cache_set):
            if entry[0] == line:
                self.hits += 1
                if len(entry) > 2 and entry[2]:
                    entry[2] = False
                    self.wakes += 1
                    self.drowsy_count -= 1
                if i:
                    cache_set.insert(0, cache_set.pop(i))
                if is_write:
                    cache_set[0][1] = True
                return True
        self.misses += 1
        cache_set.insert(0, [line, is_write, False])
        self._resident_count += 1
        while len(cache_set) > self.active_ways:
            victim = cache_set.pop()
            self._resident_count -= 1
            if len(victim) > 2 and victim[2]:
                self.drowsy_count -= 1
            if victim[1]:
                self.writebacks += 1
        return False

    def drowse_all(self, now_cycles: float) -> int:
        """Put every awake resident line into drowsy mode; returns count."""
        self._advance(now_cycles)
        drowsed = 0
        for cache_set in self._sets:
            for entry in cache_set:
                if len(entry) == 2:
                    entry.append(True)
                    drowsed += 1
                elif not entry[2]:
                    entry[2] = True
                    drowsed += 1
        self.drowsy_count += drowsed
        return drowsed

    def drowsy_fraction(self, total_cycles: float) -> float:
        """Mean fraction of the cache's lines held at drowsy voltage.

        Resident lines count while explicitly drowsed; non-resident lines
        (holding no state) count always.
        """
        self._advance(total_cycles)
        capacity = self.n_sets * self.assoc
        if total_cycles <= 0 or capacity == 0:
            return 0.0
        line_cycles = total_cycles * capacity
        empty_cycles = line_cycles - self.resident_line_cycles
        return min(1.0, (self.drowsy_line_cycles + empty_cycles) / line_cycles)


class DrowsyMLCController:
    """Periodic drowse-all policy (the simple policy Flautner et al. show
    performs within a hair of the ideal)."""

    def __init__(self, cache: DrowsySetAssocCache, interval_cycles: float = 4000.0):
        if interval_cycles <= 0:
            raise ValueError("drowse interval must be positive")
        self.cache = cache
        self.interval_cycles = interval_cycles
        self._next_drowse = interval_cycles
        self.drowse_events = 0

    def tick(self, now_cycles: float) -> None:
        """Call periodically with the current cycle count."""
        if now_cycles >= self._next_drowse:
            self.cache.drowse_all(now_cycles)
            self.drowse_events += 1
            self._next_drowse = now_cycles + self.interval_cycles

    def mlc_leakage_factor(self, total_cycles: float) -> float:
        """Effective MLC leakage multiplier vs an always-awake cache."""
        drowsy = self.cache.drowsy_fraction(total_cycles)
        return (1.0 - drowsy) + drowsy * DROWSY_LEAKAGE_FRAC

    def wake_stall_cycles(self) -> float:
        return self.cache.wakes * WAKE_CYCLES
