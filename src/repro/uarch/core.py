"""The core timing model: units + cycle accounting per basic block."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.blocks import BlockExec
from repro.obs.events import EventKind
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.uarch.branch.unit import BranchUnit
from repro.uarch.cache.cache import SetAssocCache
from repro.uarch.cache.hierarchy import CacheHierarchy
from repro.uarch.config import DesignPoint
from repro.uarch.vpu import VectorUnit


@dataclass(slots=True)
class PerfCounters:
    """Hardware performance counters the CDE profiles phases with (§IV-C)."""

    instructions: int = 0
    micro_ops: int = 0
    simd_instructions: int = 0
    branches: int = 0
    mispredicts: int = 0
    btb_redirects: int = 0
    memory_ops: int = 0

    def snapshot(self) -> "PerfCounters":
        return PerfCounters(
            self.instructions,
            self.micro_ops,
            self.simd_instructions,
            self.branches,
            self.mispredicts,
            self.btb_redirects,
            self.memory_ops,
        )

    def add_batch(
        self,
        instructions: int = 0,
        micro_ops: int = 0,
        simd_instructions: int = 0,
        branches: int = 0,
        mispredicts: int = 0,
        btb_redirects: int = 0,
        memory_ops: int = 0,
    ) -> None:
        """Fold a batch of per-block increments in at once.

        Execution backends that batch monotonic counters (fastpath's
        ``_sync``, the vectorized backend's burst flush) land their totals
        through this single call; a flush must happen before any observer
        (window stats, probes, metrics) reads the counters.
        """
        self.instructions += instructions
        self.micro_ops += micro_ops
        self.simd_instructions += simd_instructions
        self.branches += branches
        self.mispredicts += mispredicts
        self.btb_redirects += btb_redirects
        self.memory_ops += memory_ops


@dataclass(slots=True)
class UnitStates:
    """Current power-gating state of the three managed units."""

    vpu_on: bool = True
    bpu_large_on: bool = True
    mlc_ways: int = 8

    def as_policy_tuple(self) -> tuple:
        return (self.vpu_on, self.bpu_large_on, self.mlc_ways)


class CoreModel:
    """Cycle-approximate core: executes block traces, owns the three units.

    The timing model charges, per dynamic basic block:

    - issue cycles: micro-ops / issue width (interpreted guest code instead
      pays ``interpreter_cpi`` per instruction — the BT's slow path);
    - branch resolution through the *active* predictor configuration, with
      full mispredict / BTB-redirect penalties;
    - exposed memory stalls from a functional walk of the cache hierarchy,
      scaled by ``memory_stall_factor`` to approximate latency overlap;
    - vector work natively on the VPU or as scalar emulation micro-ops when
      the VPU is gated off.
    """

    def __init__(self, design: DesignPoint, tracer: Optional[Tracer] = None) -> None:
        self.design = design
        self.tracer = tracer if tracer is not None else NULL_TRACER
        bpu_params = design.bpu
        self.bpu = BranchUnit(
            large_local_entries=bpu_params.large_local_entries,
            large_local_hist_bits=bpu_params.large_local_hist_bits,
            large_global_hist_bits=bpu_params.large_global_hist_bits,
            large_global_counters=bpu_params.large_global_counters,
            large_chooser_entries=bpu_params.large_chooser_entries,
            large_btb_entries=bpu_params.large_btb_entries,
            small_local_entries=bpu_params.small_local_entries,
            small_local_hist_bits=bpu_params.small_local_hist_bits,
            small_btb_entries=bpu_params.small_btb_entries,
        )
        l1 = SetAssocCache(design.l1_kb, design.l1_assoc, design.line_size, "L1D")
        mlc = SetAssocCache(design.mlc_kb, design.mlc_assoc, design.line_size, "MLC")
        llc: Optional[SetAssocCache] = None
        if design.has_llc:
            llc = SetAssocCache(design.llc_kb, design.llc_assoc, design.line_size, "LLC")
        self.hierarchy = CacheHierarchy(
            l1,
            mlc,
            llc,
            design.mlc_latency,
            design.llc_latency,
            design.memory_latency,
            prefetch_streams=design.prefetch_streams,
            prefetch_window=design.prefetch_window,
        )
        self.vpu = VectorUnit(design.vpu_width, design.vpu_emulation_factor)
        self.counters = PerfCounters(micro_ops=0)
        self.states = UnitStates(mlc_ways=design.mlc_assoc)

        self._issue_cpi = 1.0 / design.issue_width
        self._stall_factor = design.memory_stall_factor
        # Pre-bound hot methods: the hierarchy/VPU/BPU objects live for the
        # whole run (gating toggles flags inside them, never replaces them),
        # so binding once here removes two attribute walks per block from
        # ``execute_block``.
        self._hierarchy_access = self.hierarchy.access
        self._vpu_execute = self.vpu.execute
        self._bpu_predict_and_update = self.bpu.predict_and_update
        #: Optional steady-phase fast-path observer; when set, every gating
        #: transition notifies it so memoized replay state is conservatively
        #: invalidated (see :mod:`repro.sim.backends.fastpath`).
        self.fastpath_listener = None

    # ----------------------------------------------------------------- run

    def execute_block(self, block_exec: BlockExec, interpreting: bool) -> float:
        """Execute one dynamic block; returns cycles consumed."""
        block = block_exec.block
        counters = self.counters
        design = self.design

        n_vec = block.n_vec
        extra_ops = self._vpu_execute(n_vec) if n_vec else 0
        n_instr = block.n_instr
        micro_ops = n_instr + extra_ops

        if interpreting:
            cycles = n_instr * design.interpreter_cpi + extra_ops * self._issue_cpi
        else:
            cycles = micro_ops * self._issue_cpi

        addresses = block_exec.addresses
        if addresses:
            hierarchy_access = self._hierarchy_access
            loads = block.n_loads
            stall_factor = self._stall_factor
            for i, addr in enumerate(addresses):
                stall, _level = hierarchy_access(addr, i >= loads)
                if stall:
                    cycles += stall * stall_factor
            counters.memory_ops += len(addresses)

        branch = block.branch
        if branch is not None:
            mispredicted, redirect = self._bpu_predict_and_update(
                branch.pc, block_exec.taken
            )
            counters.branches += 1
            if mispredicted:
                counters.mispredicts += 1
                cycles += design.mispredict_penalty
            elif redirect:
                counters.btb_redirects += 1
                cycles += design.btb_redirect_penalty

        counters.instructions += n_instr
        counters.micro_ops += micro_ops
        counters.simd_instructions += n_vec
        return cycles

    # ------------------------------------------------------------- gating

    def apply_vpu_state(self, powered_on: bool) -> None:
        if powered_on:
            self.vpu.gate_on()
        else:
            self.vpu.gate_off()
        self.states.vpu_on = powered_on
        listener = self.fastpath_listener
        if listener is not None:
            listener.note_gating("vpu")

    def apply_bpu_state(self, large_on: bool) -> None:
        if large_on:
            self.bpu.gate_on()
        else:
            self.bpu.gate_off()
        self.states.bpu_large_on = large_on
        listener = self.fastpath_listener
        if listener is not None:
            listener.note_gating("bpu")

    def apply_mlc_state(self, n_ways: int) -> int:
        """Way-gate the MLC; returns dirty lines flushed (writeback cost)."""
        dirty = self.hierarchy.set_mlc_ways(n_ways)
        self.states.mlc_ways = n_ways
        tracer = self.tracer
        if dirty and tracer.active:
            tracer.emit(
                EventKind.WAYBACK_WRITEBACK,
                tracer.now,
                {"cache": "mlc", "dirty_lines": dirty, "ways": n_ways},
            )
        listener = self.fastpath_listener
        if listener is not None:
            listener.note_gating("mlc")
        return dirty
