"""Architectural design points (paper Table I).

Two configurations are evaluated: a server-class core (Intel Nehalem-like)
running SPEC CPU2006 and PARSEC, and a mobile-class core (ARM Cortex-A9-like)
running MobileBench.  Unit area fractions, gated configurations, and gating
state overheads are taken directly from Table I; timing and power scalars
not printed in the paper are set to representative 32 nm values and recorded
in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class BPUParams:
    """Sizes for the small (always-on) and large (gateable) BPU sides."""

    large_local_entries: int = 2048
    large_local_hist_bits: int = 10
    large_global_hist_bits: int = 8
    large_global_counters: int = 8192
    large_chooser_entries: int = 16384
    large_btb_entries: int = 4096
    small_local_entries: int = 512
    small_local_hist_bits: int = 6
    small_btb_entries: int = 1024


@dataclass(frozen=True)
class DesignPoint:
    """Everything the simulator needs to instantiate one processor design."""

    name: str
    kind: str  # "server" | "mobile"
    frequency_ghz: float
    issue_width: int
    mispredict_penalty: int
    btb_redirect_penalty: int
    #: Fraction of memory stall latency exposed to execution (models MLP /
    #: out-of-order latency hiding; lower = more aggressive OoO core).
    memory_stall_factor: float

    # Cache hierarchy
    l1_kb: float = 32.0
    l1_assoc: int = 8
    mlc_kb: float = 1024.0
    mlc_assoc: int = 8
    mlc_latency: int = 12
    llc_kb: float = 8192.0  # 0 disables the LLC
    llc_assoc: int = 16
    llc_latency: int = 38
    memory_latency: int = 180
    line_size: int = 64
    prefetch_streams: int = 8  # 0 disables the stream prefetcher
    prefetch_window: int = 4

    # Units
    bpu: BPUParams = field(default_factory=BPUParams)
    vpu_width: int = 4
    vpu_emulation_factor: int = 12

    # Binary translation subsystem (Transmeta-style, §II-A)
    interpreter_cpi: float = 12.0
    translate_cycles_per_instr: float = 60.0
    hot_threshold: int = 12
    max_translation_blocks: int = 3

    # Power-gating switch penalties (paper §IV-D and Table I)
    mlc_switch_cycles: int = 50
    vpu_switch_cycles: int = 30
    bpu_switch_cycles: int = 20
    vpu_save_restore_cycles: int = 500
    writeback_cycles_per_line: int = 4

    # Power/area (32 nm, McPAT-style budgets; fractions from Table I)
    mlc_area_frac: float = 0.35
    vpu_area_frac: float = 0.20
    bpu_area_frac: float = 0.04
    core_leakage_w: float = 2.5
    core_peak_dynamic_w: float = 9.0
    gated_leakage_frac: float = 0.05
    sleep_transistor_ratio: float = 0.20  # W_H in Eq. 1 (worst case in [0.05, 0.20])
    switching_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in ("server", "mobile"):
            raise ValueError(f"unknown design kind {self.kind!r}")
        if self.issue_width <= 0 or self.frequency_ghz <= 0:
            raise ValueError("issue width and frequency must be positive")
        if not 0.0 < self.memory_stall_factor <= 1.0:
            raise ValueError("memory_stall_factor must be in (0, 1]")

    @property
    def frequency_hz(self) -> float:
        return self.frequency_ghz * 1e9

    @property
    def mlc_way_states(self) -> Tuple[int, int, int]:
        """The three MLC gating states: 1 way, half the ways, all ways."""
        return (1, max(1, self.mlc_assoc // 2), self.mlc_assoc)

    @property
    def mlc_way_states_extended(self) -> Tuple[int, int, int, int]:
        """Four-state MLC gating (paper §IV-B3: 'the number of states...can
        be increased'): adds a quarter-ways state using the PVT's reserved
        M=0b10 encoding."""
        return (
            1,
            max(1, self.mlc_assoc // 4),
            max(1, self.mlc_assoc // 2),
            self.mlc_assoc,
        )

    @property
    def has_llc(self) -> bool:
        return self.llc_kb > 0


#: Server design point — Intel Nehalem-class core (Table I, left column).
#: MLC: 1024 KB 8-way (35 % of core area); gated: 512 KB 4-way or 128 KB
#: 1-way.  VPU: 4-wide SIMD (20 %).  BPU: local/global tournament with
#: 4 K-entry BTB and 16 K-entry chooser (4 %); small side local-only with
#: 1 K-entry BTB.
SERVER = DesignPoint(
    name="server-nehalem",
    kind="server",
    frequency_ghz=2.66,
    issue_width=4,
    mispredict_penalty=17,
    btb_redirect_penalty=7,
    memory_stall_factor=0.45,
    l1_kb=32.0,
    l1_assoc=8,
    mlc_kb=1024.0,
    mlc_assoc=8,
    mlc_latency=12,
    llc_kb=8192.0,
    llc_assoc=16,
    llc_latency=38,
    memory_latency=180,
    bpu=BPUParams(
        large_local_entries=2048,
        large_local_hist_bits=10,
        large_global_hist_bits=9,
        large_global_counters=8192,
        large_chooser_entries=16384,
        large_btb_entries=4096,
        small_local_entries=512,
        small_local_hist_bits=6,
        small_btb_entries=1024,
    ),
    vpu_width=4,
    vpu_emulation_factor=12,
    interpreter_cpi=12.0,
    mlc_area_frac=0.35,
    vpu_area_frac=0.20,
    bpu_area_frac=0.04,
    core_leakage_w=2.5,
    core_peak_dynamic_w=9.0,
)

#: Mobile design point — ARM Cortex-A9-class core (Table I, right column).
#: MLC: 2048 KB 8-way (60 % of core area); gated: 1024 KB 4-way or 256 KB
#: 1-way.  VPU: 2-wide SIMD (18 %).  BPU: tournament with 2 K-entry BTB and
#: 8 K-entry chooser (3 %); small side local-only with 512-entry BTB.
MOBILE = DesignPoint(
    name="mobile-cortex-a9",
    kind="mobile",
    frequency_ghz=1.0,
    issue_width=2,
    mispredict_penalty=11,
    btb_redirect_penalty=5,
    memory_stall_factor=0.80,
    l1_kb=32.0,
    l1_assoc=4,
    mlc_kb=2048.0,
    mlc_assoc=8,
    mlc_latency=10,
    llc_kb=0.0,
    llc_latency=0,
    memory_latency=130,
    bpu=BPUParams(
        large_local_entries=1024,
        large_local_hist_bits=9,
        large_global_hist_bits=8,
        large_global_counters=4096,
        large_chooser_entries=8192,
        large_btb_entries=2048,
        small_local_entries=256,
        small_local_hist_bits=6,
        small_btb_entries=512,
    ),
    vpu_width=2,
    vpu_emulation_factor=10,
    interpreter_cpi=10.0,
    mlc_area_frac=0.60,
    vpu_area_frac=0.18,
    bpu_area_frac=0.03,
    core_leakage_w=0.30,
    core_peak_dynamic_w=0.80,
)

_DESIGNS = {d.name: d for d in (SERVER, MOBILE)}
_DESIGNS["server"] = SERVER
_DESIGNS["mobile"] = MOBILE


def design_by_name(name: str) -> DesignPoint:
    """Look up a design point (``"server"``, ``"mobile"``, or full name)."""
    try:
        return _DESIGNS[name]
    except KeyError:
        raise KeyError(f"unknown design {name!r}; known: {sorted(_DESIGNS)}") from None


def design_for_suite(suite: str) -> DesignPoint:
    """The paper pairs MobileBench with the mobile core, all else server."""
    return MOBILE if suite == "MobileBench" else SERVER
