"""Direction predictors: bimodal, two-level local, gshare, tournament."""

from __future__ import annotations


def _saturate_up(counter: int, maximum: int = 3) -> int:
    return counter + 1 if counter < maximum else counter


def _saturate_down(counter: int, minimum: int = 0) -> int:
    return counter - 1 if counter > minimum else counter


class DirectionPredictor:
    """Interface shared by all direction predictors."""

    #: Bits of storage the predictor occupies (for the power/area model).
    storage_bits: int = 0

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Lose all state (what happens when the structure is power gated)."""
        raise NotImplementedError


class BimodalPredictor(DirectionPredictor):
    """Classic table of 2-bit saturating counters indexed by PC."""

    def __init__(self, n_counters: int = 1024) -> None:
        if n_counters <= 0 or n_counters & (n_counters - 1):
            raise ValueError("n_counters must be a positive power of two")
        self._mask = n_counters - 1
        self._table = [2] * n_counters  # weakly taken
        self.storage_bits = 2 * n_counters

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        ctr = self._table[idx]
        self._table[idx] = _saturate_up(ctr) if taken else _saturate_down(ctr)

    def flush(self) -> None:
        for i in range(len(self._table)):
            self._table[i] = 2


class LocalPredictor(DirectionPredictor):
    """Two-level local predictor (per-branch history -> pattern table).

    This is the paper's "small" predictor and also the local component of
    the large tournament predictor (at a bigger size).
    """

    def __init__(self, n_history: int = 1024, history_bits: int = 10,
                 n_counters: int = 1024) -> None:
        for value, label in ((n_history, "n_history"), (n_counters, "n_counters")):
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{label} must be a positive power of two")
        if not 1 <= history_bits <= 16:
            raise ValueError("history_bits must be in [1, 16]")
        self._hist_mask = n_history - 1
        self._pat_mask = n_counters - 1
        self._history_bits_mask = (1 << history_bits) - 1
        self.history_bits = history_bits
        self._histories = [0] * n_history
        self._counters = [2] * n_counters
        self.storage_bits = history_bits * n_history + 2 * n_counters

    def _hist_index(self, pc: int) -> int:
        return (pc >> 2) & self._hist_mask

    def predict(self, pc: int) -> bool:
        history = self._histories[self._hist_index(pc)]
        return self._counters[history & self._pat_mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        hidx = self._hist_index(pc)
        history = self._histories[hidx]
        cidx = history & self._pat_mask
        ctr = self._counters[cidx]
        self._counters[cidx] = _saturate_up(ctr) if taken else _saturate_down(ctr)
        self._histories[hidx] = ((history << 1) | int(taken)) & self._history_bits_mask

    def predict_update(self, pc: int, taken: bool) -> bool:
        """Fused ``predict`` + ``update``: one history/index computation.

        Returns the pre-update prediction; the post-call table state is
        identical to ``predict(pc)`` followed by ``update(pc, taken)``.
        """
        hidx = (pc >> 2) & self._hist_mask
        history = self._histories[hidx]
        counters = self._counters
        cidx = history & self._pat_mask
        ctr = counters[cidx]
        if taken:
            if ctr < 3:
                counters[cidx] = ctr + 1
        elif ctr > 0:
            counters[cidx] = ctr - 1
        self._histories[hidx] = ((history << 1) | taken) & self._history_bits_mask
        return ctr >= 2

    def flush(self) -> None:
        for i in range(len(self._histories)):
            self._histories[i] = 0
        for i in range(len(self._counters)):
            self._counters[i] = 2


class GSharePredictor(DirectionPredictor):
    """Global predictor: PC xor global-history indexed counter table."""

    def __init__(self, history_bits: int = 12, n_counters: int = 4096) -> None:
        if n_counters <= 0 or n_counters & (n_counters - 1):
            raise ValueError("n_counters must be a positive power of two")
        if not 1 <= history_bits <= 24:
            raise ValueError("history_bits must be in [1, 24]")
        self._mask = n_counters - 1
        self._ghr_mask = (1 << history_bits) - 1
        self.history_bits = history_bits
        self.ghr = 0
        self._counters = [2] * n_counters
        self.storage_bits = 2 * n_counters + history_bits

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.ghr) & self._mask

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        ctr = self._counters[idx]
        self._counters[idx] = _saturate_up(ctr) if taken else _saturate_down(ctr)
        self.ghr = ((self.ghr << 1) | int(taken)) & self._ghr_mask

    def predict_update(self, pc: int, taken: bool) -> bool:
        """Fused ``predict`` + ``update``: one GHR-index computation."""
        ghr = self.ghr
        idx = ((pc >> 2) ^ ghr) & self._mask
        counters = self._counters
        ctr = counters[idx]
        if taken:
            if ctr < 3:
                counters[idx] = ctr + 1
        elif ctr > 0:
            counters[idx] = ctr - 1
        self.ghr = ((ghr << 1) | taken) & self._ghr_mask
        return ctr >= 2

    def flush(self) -> None:
        self.ghr = 0
        for i in range(len(self._counters)):
            self._counters[i] = 2


class TournamentPredictor(DirectionPredictor):
    """Alpha-21264-style tournament of a local and a global predictor.

    A chooser table of 2-bit counters (indexed by global history) selects
    which component's prediction is used; the chooser trains whenever the
    components disagree.
    """

    def __init__(
        self,
        local: LocalPredictor,
        global_pred: GSharePredictor,
        n_chooser: int = 4096,
    ) -> None:
        if n_chooser <= 0 or n_chooser & (n_chooser - 1):
            raise ValueError("n_chooser must be a positive power of two")
        self.local = local
        self.global_pred = global_pred
        self._chooser = [2] * n_chooser  # >=2 favours global
        self._chooser_mask = n_chooser - 1
        self.storage_bits = (
            local.storage_bits + global_pred.storage_bits + 2 * n_chooser
        )

    def _chooser_index(self, pc: int) -> int:
        # PC-indexed chooser: selection is a property of the branch (is it
        # globally correlated or locally patterned?), so per-branch choice
        # separates the two populations inside a mixed code region.
        return (pc >> 2) & self._chooser_mask

    def predict(self, pc: int) -> bool:
        use_global = self._chooser[self._chooser_index(pc)] >= 2
        if use_global:
            return self.global_pred.predict(pc)
        return self.local.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        local_pred = self.local.predict(pc)
        global_pred = self.global_pred.predict(pc)
        if local_pred != global_pred:
            cidx = self._chooser_index(pc)
            ctr = self._chooser[cidx]
            if global_pred == taken:
                self._chooser[cidx] = _saturate_up(ctr)
            else:
                self._chooser[cidx] = _saturate_down(ctr)
        self.local.update(pc, taken)
        self.global_pred.update(pc, taken)

    def predict_update(self, pc: int, taken: bool) -> bool:
        """Fused ``predict`` + ``update`` over both components.

        ``update`` needs both component predictions anyway (to train the
        chooser), so fusing removes the redundant second ``predict`` walk
        of each component's tables.  Chooser selection reads the counter
        *before* it trains, exactly like ``predict`` before ``update``;
        the component predictors themselves are state-independent of the
        chooser, so the interleaved order leaves identical final state.
        """
        local_pred = self.local.predict_update(pc, taken)
        global_pred = self.global_pred.predict_update(pc, taken)
        if local_pred == global_pred:
            return local_pred
        chooser = self._chooser
        cidx = (pc >> 2) & self._chooser_mask
        ctr = chooser[cidx]
        if global_pred == taken:
            if ctr < 3:
                chooser[cidx] = ctr + 1
        elif ctr > 0:
            chooser[cidx] = ctr - 1
        return global_pred if ctr >= 2 else local_pred

    def flush(self) -> None:
        self.local.flush()
        self.global_pred.flush()
        for i in range(len(self._chooser)):
            self._chooser[i] = 2
