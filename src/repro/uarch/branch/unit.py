"""The gateable branch prediction unit (small + large predictor pair)."""

from __future__ import annotations

from typing import Tuple

from repro.uarch.branch.btb import BranchTargetBuffer
from repro.uarch.branch.predictors import (
    GSharePredictor,
    LocalPredictor,
    TournamentPredictor,
)


class BranchUnit:
    """BPU with a power-gateable large tournament side.

    The *small* local predictor and its small BTB are always powered (they
    are the fallback the core runs on when the large BPU is gated off, per
    Table I).  The *large* side — tournament local/global tables, chooser,
    and the big BTB — loses all state when gated off; because the tables are
    genuinely flushed, the post-regate rewarm cost emerges as real
    mispredictions rather than as a modelling constant.
    """

    def __init__(
        self,
        large_local_entries: int = 2048,
        large_local_hist_bits: int = 10,
        large_global_hist_bits: int = 12,
        large_global_counters: int = 8192,
        large_chooser_entries: int = 16384,
        large_btb_entries: int = 4096,
        small_local_entries: int = 512,
        small_local_hist_bits: int = 6,
        small_btb_entries: int = 1024,
    ) -> None:
        local = LocalPredictor(
            n_history=large_local_entries,
            history_bits=large_local_hist_bits,
            n_counters=1 << large_local_hist_bits,
        )
        global_pred = GSharePredictor(
            history_bits=large_global_hist_bits,
            n_counters=large_global_counters,
        )
        self.large = TournamentPredictor(local, global_pred, large_chooser_entries)
        self.large_btb = BranchTargetBuffer(large_btb_entries)
        self.small = LocalPredictor(
            n_history=small_local_entries,
            history_bits=small_local_hist_bits,
            n_counters=1 << small_local_hist_bits,
        )
        self.small_btb = BranchTargetBuffer(small_btb_entries)
        self.large_on = True
        #: Measurement routing (CDE profiling, §IV-C2): predictions come
        #: from the small predictor while the large side stays powered and
        #: training.  Unlike gating, this loses no state — it is how the
        #: second profiling window obtains MisPred_Small without destroying
        #: the tournament history the next profile needs.
        self.force_small = False

        self.lookups = 0
        self.mispredicts = 0
        self.btb_misses = 0

    @property
    def gated_storage_bits(self) -> int:
        """Bits of state in the gateable (large) side."""
        return self.large.storage_bits + self.large_btb.storage_bits

    def predict_and_update(self, pc: int, taken: bool) -> Tuple[bool, bool]:
        """Run one branch through the active predictor.

        Returns ``(mispredicted, btb_redirect)``.  The small predictor
        trains continuously (it is always powered); the large side trains
        only while gated on.  Built on the predictors' fused
        ``predict_update`` paths: predictions are read before the tables
        train (the small and large sides share no state, so the order of
        their updates relative to each other's reads is immaterial), and
        the final predictor/BTB state is identical to separate
        ``predict`` / ``update`` / ``lookup`` / ``insert`` calls.
        """
        self.lookups += 1
        key = pc >> 2
        if self.large_on:
            if self.force_small:
                prediction = self.small.predict_update(pc, taken)
                self.large.update(pc, taken)
                btb = self.small_btb
            else:
                # Hot path: the large tournament predicts while the small
                # side trains.  The component predict_update bodies are
                # flattened inline (same table reads/writes in the same
                # order) to strip four call frames per branch.
                large = self.large
                local = large.local
                hidx = key & local._hist_mask
                histories = local._histories
                history = histories[hidx]
                counters = local._counters
                cidx = history & local._pat_mask
                ctr = counters[cidx]
                if taken:
                    if ctr < 3:
                        counters[cidx] = ctr + 1
                elif ctr > 0:
                    counters[cidx] = ctr - 1
                histories[hidx] = ((history << 1) | taken) & local._history_bits_mask
                local_pred = ctr >= 2

                gshare = large.global_pred
                ghr = gshare.ghr
                gidx = (key ^ ghr) & gshare._mask
                gcounters = gshare._counters
                gctr = gcounters[gidx]
                if taken:
                    if gctr < 3:
                        gcounters[gidx] = gctr + 1
                elif gctr > 0:
                    gcounters[gidx] = gctr - 1
                gshare.ghr = ((ghr << 1) | taken) & gshare._ghr_mask
                global_pred = gctr >= 2

                if local_pred == global_pred:
                    prediction = local_pred
                else:
                    chooser = large._chooser
                    chidx = key & large._chooser_mask
                    cctr = chooser[chidx]
                    if global_pred == taken:
                        if cctr < 3:
                            chooser[chidx] = cctr + 1
                    elif cctr > 0:
                        chooser[chidx] = cctr - 1
                    prediction = global_pred if cctr >= 2 else local_pred

                small = self.small
                shidx = key & small._hist_mask
                shistories = small._histories
                shistory = shistories[shidx]
                scounters = small._counters
                scidx = shistory & small._pat_mask
                sctr = scounters[scidx]
                if taken:
                    if sctr < 3:
                        scounters[scidx] = sctr + 1
                elif sctr > 0:
                    scounters[scidx] = sctr - 1
                shistories[shidx] = (
                    (shistory << 1) | taken
                ) & small._history_bits_mask
                btb = self.large_btb
        else:
            prediction = self.small.predict_update(pc, taken)
            btb = self.small_btb

        mispredicted = prediction != taken
        if mispredicted:
            self.mispredicts += 1

        btb_redirect = False
        if taken:
            # Inlined BranchTargetBuffer.touch (same entry-map transitions).
            entries = btb._entries
            if pc in entries:
                entries.move_to_end(pc)
                entries[pc] = 0
                btb.hits += 1
            else:
                btb.misses += 1
                if len(entries) >= btb.n_entries:
                    entries.popitem(last=False)
                entries[pc] = 0
                btb_redirect = True
                self.btb_misses += 1
        return mispredicted, btb_redirect

    def gate_off(self) -> None:
        """Power gate the large side; its state is lost immediately."""
        if not self.large_on:
            return
        self.large.flush()
        self.large_btb.flush()
        self.large_on = False

    def gate_on(self) -> None:
        """Restore power to the large side (tables come back cold)."""
        self.large_on = True
