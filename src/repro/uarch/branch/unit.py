"""The gateable branch prediction unit (small + large predictor pair)."""

from __future__ import annotations

from typing import Tuple

from repro.uarch.branch.btb import BranchTargetBuffer
from repro.uarch.branch.predictors import (
    GSharePredictor,
    LocalPredictor,
    TournamentPredictor,
)


class BranchUnit:
    """BPU with a power-gateable large tournament side.

    The *small* local predictor and its small BTB are always powered (they
    are the fallback the core runs on when the large BPU is gated off, per
    Table I).  The *large* side — tournament local/global tables, chooser,
    and the big BTB — loses all state when gated off; because the tables are
    genuinely flushed, the post-regate rewarm cost emerges as real
    mispredictions rather than as a modelling constant.
    """

    def __init__(
        self,
        large_local_entries: int = 2048,
        large_local_hist_bits: int = 10,
        large_global_hist_bits: int = 12,
        large_global_counters: int = 8192,
        large_chooser_entries: int = 16384,
        large_btb_entries: int = 4096,
        small_local_entries: int = 512,
        small_local_hist_bits: int = 6,
        small_btb_entries: int = 1024,
    ) -> None:
        local = LocalPredictor(
            n_history=large_local_entries,
            history_bits=large_local_hist_bits,
            n_counters=1 << large_local_hist_bits,
        )
        global_pred = GSharePredictor(
            history_bits=large_global_hist_bits,
            n_counters=large_global_counters,
        )
        self.large = TournamentPredictor(local, global_pred, large_chooser_entries)
        self.large_btb = BranchTargetBuffer(large_btb_entries)
        self.small = LocalPredictor(
            n_history=small_local_entries,
            history_bits=small_local_hist_bits,
            n_counters=1 << small_local_hist_bits,
        )
        self.small_btb = BranchTargetBuffer(small_btb_entries)
        self.large_on = True
        #: Measurement routing (CDE profiling, §IV-C2): predictions come
        #: from the small predictor while the large side stays powered and
        #: training.  Unlike gating, this loses no state — it is how the
        #: second profiling window obtains MisPred_Small without destroying
        #: the tournament history the next profile needs.
        self.force_small = False

        self.lookups = 0
        self.mispredicts = 0
        self.btb_misses = 0

    @property
    def gated_storage_bits(self) -> int:
        """Bits of state in the gateable (large) side."""
        return self.large.storage_bits + self.large_btb.storage_bits

    def predict_and_update(self, pc: int, taken: bool) -> Tuple[bool, bool]:
        """Run one branch through the active predictor.

        Returns ``(mispredicted, btb_redirect)``.  The small predictor
        trains continuously (it is always powered); the large side trains
        only while gated on.
        """
        self.lookups += 1
        if self.large_on:
            use_large = not self.force_small
            if use_large:
                prediction = self.large.predict(pc)
                btb = self.large_btb
            else:
                prediction = self.small.predict(pc)
                btb = self.small_btb
            self.large.update(pc, taken)
        else:
            prediction = self.small.predict(pc)
            btb = self.small_btb
        self.small.update(pc, taken)

        mispredicted = prediction != taken
        if mispredicted:
            self.mispredicts += 1

        btb_redirect = False
        if taken:
            if not btb.lookup(pc):
                btb_redirect = True
                self.btb_misses += 1
            btb.insert(pc)
        return mispredicted, btb_redirect

    def gate_off(self) -> None:
        """Power gate the large side; its state is lost immediately."""
        if not self.large_on:
            return
        self.large.flush()
        self.large_btb.flush()
        self.large_on = False

    def gate_on(self) -> None:
        """Restore power to the large side (tables come back cold)."""
        self.large_on = True
