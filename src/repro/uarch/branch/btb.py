"""Branch target buffer model."""

from __future__ import annotations

from collections import OrderedDict


class BranchTargetBuffer:
    """Fully-tagged BTB with LRU replacement.

    Modelled as a capacity-bounded LRU map from branch PC to target.  A
    taken branch whose PC misses costs a fetch redirect (cheaper than a full
    mispredict); the penalty itself is charged by the timing model.
    """

    def __init__(self, n_entries: int = 4096) -> None:
        if n_entries <= 0:
            raise ValueError("BTB needs at least one entry")
        self.n_entries = n_entries
        self._entries: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: bits: tag (~32b PC) + target (32b) per entry
        self.storage_bits = 64 * n_entries

    def lookup(self, pc: int) -> bool:
        """Probe the BTB; returns True on hit and refreshes recency."""
        if pc in self._entries:
            self._entries.move_to_end(pc)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, pc: int, target: int = 0) -> None:
        if pc in self._entries:
            self._entries.move_to_end(pc)
            self._entries[pc] = target
            return
        if len(self._entries) >= self.n_entries:
            self._entries.popitem(last=False)
        self._entries[pc] = target

    def touch(self, pc: int) -> bool:
        """Fused ``lookup`` + ``insert`` for a resolved taken branch.

        Returns the lookup outcome (True on hit) and leaves the entry map
        in the identical final state: recency refreshed, target rewritten
        on hit; LRU victim evicted and the entry allocated on miss.
        """
        entries = self._entries
        if pc in entries:
            entries.move_to_end(pc)
            entries[pc] = 0
            self.hits += 1
            return True
        self.misses += 1
        if len(entries) >= self.n_entries:
            entries.popitem(last=False)
        entries[pc] = 0
        return False

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
