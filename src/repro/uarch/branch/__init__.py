"""Branch prediction unit models.

The paper's two BPU configurations (Table I) are:

- **large** — a local/global tournament predictor with a chooser and a big
  BTB (4 K entries server / 2 K mobile);
- **small** — the always-on fallback used when the large BPU is power
  gated: a local-only predictor with a 1 K (server) / 512-entry (mobile)
  BTB.

All predictor state is explicit, so power gating genuinely loses global,
chooser and BTB state and the rewarm penalty emerges from mispredictions.
"""

from repro.uarch.branch.predictors import (
    BimodalPredictor,
    GSharePredictor,
    LocalPredictor,
    TournamentPredictor,
)
from repro.uarch.branch.btb import BranchTargetBuffer
from repro.uarch.branch.unit import BranchUnit

__all__ = [
    "BimodalPredictor",
    "LocalPredictor",
    "GSharePredictor",
    "TournamentPredictor",
    "BranchTargetBuffer",
    "BranchUnit",
]
