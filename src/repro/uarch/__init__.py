"""Microarchitectural substrate: branch prediction, caches, VPU, timing.

This is the gem5-equivalent layer of the reproduction (DESIGN.md §1):
functional models of the three PowerChop-managed units plus a
cycle-approximate core timing model.  State-losing behaviour on power
gating (BPU history flush, MLC way flush with dirty writeback, VPU register
save/restore) is modelled mechanically so rewarm costs emerge naturally.
"""

from repro.uarch.config import (
    MOBILE,
    SERVER,
    BPUParams,
    DesignPoint,
    design_by_name,
)
from repro.uarch.core import CoreModel, PerfCounters, UnitStates
from repro.uarch.vpu import VectorUnit

__all__ = [
    "BPUParams",
    "DesignPoint",
    "SERVER",
    "MOBILE",
    "design_by_name",
    "CoreModel",
    "PerfCounters",
    "UnitStates",
    "VectorUnit",
]
