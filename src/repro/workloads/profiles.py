"""Declarative benchmark profiles and workload instantiation."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.workloads.generator import (
    MemoryBehavior,
    PhaseSpec,
    RegionBuilder,
    SyntheticWorkload,
)

#: Default mix of branch behaviour classes (see repro.isa.branches).
DEFAULT_BRANCH_MIX: Mapping[str, float] = {
    "biased": 0.55,
    "loop": 0.25,
    "pattern": 0.10,
    "global": 0.05,
    "random": 0.05,
}


@dataclass(frozen=True)
class RegionSpec:
    """Static-code parameters for one code region.

    ``branch_mix`` weights decide which behaviour model each static branch
    gets; regions heavy in ``global``/``pattern`` branches make the large
    tournament BPU critical, regions of strongly ``biased`` branches do not.
    ``vector_style`` places vector work densely on the main path, sparsely on
    rarely-taken side blocks, or nowhere.

    ``loop_periods`` / ``pattern_lengths`` constrain the parameter draws of
    ``loop``/``pattern`` branch models to the given choices.  ``None`` (the
    default) keeps the builder's historical unconstrained draws — and its
    exact RNG call order, so every existing profile builds bit-identically.
    Deterministic kernel profiles use small constrained sets so the joint
    branch-phase state space stays small enough for the vectorized backend's
    walk-trace memo to revisit states (see ``repro.staticcheck.proofs``).
    """

    n_blocks: int = 12
    avg_block_size: int = 14
    mem_frac: float = 0.30
    store_frac: float = 0.30
    vector_frac: float = 0.0
    vector_style: str = "none"
    branch_mix: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_BRANCH_MIX))
    bias: float = 0.92
    side_block_prob: float = 0.25
    loop_periods: Optional[Tuple[int, ...]] = None
    pattern_lengths: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class PhaseDecl:
    """One application phase: a region spec, data behaviour and duration."""

    name: str
    region: RegionSpec
    memory: MemoryBehavior
    blocks: int = 64000  # block executions per schedule visit


@dataclass(frozen=True)
class BenchmarkProfile:
    """A complete synthetic benchmark description.

    ``schedule`` is the sequence of phase names executed per iteration of the
    program's outer loop; the trace generator repeats it until the requested
    instruction budget is met, which produces the recurring-phase structure
    PowerChop's PVT exploits.
    """

    name: str
    suite: str
    phases: Tuple[PhaseDecl, ...]
    schedule: Tuple[str, ...]
    seed: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        names = {p.name for p in self.phases}
        if len(names) != len(self.phases):
            raise ValueError(f"{self.name}: duplicate phase names")
        missing = [s for s in self.schedule if s not in names]
        if missing:
            raise ValueError(f"{self.name}: schedule references unknown phases {missing}")

    def phase(self, name: str) -> PhaseDecl:
        for decl in self.phases:
            if decl.name == name:
                return decl
        raise KeyError(name)


def build_workload(
    profile: BenchmarkProfile, seed: Optional[int] = None
) -> SyntheticWorkload:
    """Instantiate a fresh, stateful workload from a profile.

    Workloads are single-use; rebuilding with the same seed replays the
    identical guest instruction stream, which is how full-power / PowerChop /
    minimal-power configurations are compared on equal footing.
    """
    seed = profile.seed if seed is None else seed
    rng = random.Random(seed)
    builder = RegionBuilder(rng, pc_base=0x40_0000)
    phase_specs = []
    for region_id, decl in enumerate(profile.phases):
        spec = decl.region
        region = builder.build(
            region_id=region_id,
            n_blocks=spec.n_blocks,
            avg_block_size=spec.avg_block_size,
            mem_frac=spec.mem_frac,
            store_frac=spec.store_frac,
            vector_frac=spec.vector_frac,
            vector_style=spec.vector_style,
            branch_mix=dict(spec.branch_mix),
            bias=spec.bias,
            side_block_prob=spec.side_block_prob,
            loop_periods=spec.loop_periods,
            pattern_lengths=spec.pattern_lengths,
        )
        phase_specs.append(PhaseSpec(decl.name, region, decl.memory))
    schedule = [(name, profile.phase(name).blocks) for name in profile.schedule]
    return SyntheticWorkload(profile.name, profile.suite, phase_specs, schedule, seed)


def regions_of(workload: SyntheticWorkload) -> Dict[int, object]:
    """Map region id -> CodeRegion for the BT subsystem's code discovery."""
    return {p.region.region_id: p.region for p in workload.phases.values()}
