"""SPEC CPU2006 integer benchmark profiles (synthetic equivalents).

Parameterisation targets the per-benchmark behaviours the paper reports:
near-zero vector intensity across SPEC-INT (VPU gated ~90 % of cycles,
Fig. 10), ``gobmk``'s time-varying vector intensity (Fig. 1), sparse vector
work in ``perlbench``/``h264ref`` that defeats timeout gating (Fig. 16),
``hmmer``'s highly-biased control flow (BPU gateable), and
``gcc``/``libquantum`` working sets that leave the MLC in its 1-way state
for > 40 % of cycles.
"""

from repro.workloads.generator import MemoryBehavior
from repro.workloads.mixes import (
    GLOBAL_HEAVY,
    IRREGULAR,
    LOCAL_HEAVY,
    NOISY,
    PREDICTABLE,
)
from repro.workloads.profiles import BenchmarkProfile, PhaseDecl, RegionSpec

SUITE = "SPEC-INT"


def _p(name, region, memory, blocks=64000):
    return PhaseDecl(name=name, region=region, memory=memory, blocks=blocks)


PERLBENCH = BenchmarkProfile(
    name="perlbench",
    suite=SUITE,
    description="Interpreter loops with globally-correlated dispatch branches "
    "and rare (sparse) vector library calls.",
    phases=(
        _p(
            "interp",
            RegionSpec(n_blocks=56, branch_mix=GLOBAL_HEAVY, vector_style="sparse"),
            MemoryBehavior(working_set_kb=300, pattern="loop", random_frac=0.2),
            blocks=72000,
        ),
        _p(
            "regex",
            RegionSpec(n_blocks=40, branch_mix=LOCAL_HEAVY, vector_style="sparse"),
            MemoryBehavior(working_set_kb=48, pattern="loop"),
            blocks=48000,
        ),
        _p(
            "gc",
            RegionSpec(n_blocks=32, branch_mix=PREDICTABLE),
            MemoryBehavior(working_set_kb=2048, pattern="stream"),
            blocks=32000,
        ),
    ),
    schedule=("interp", "regex", "interp", "gc"),
    seed=101,
)

BZIP2 = BenchmarkProfile(
    name="bzip2",
    suite=SUITE,
    description="Block compression: local-pattern heavy compress loop, "
    "irregular sorting, tight predictable output loop.",
    phases=(
        _p(
            "compress",
            RegionSpec(n_blocks=48, branch_mix=LOCAL_HEAVY),
            MemoryBehavior(working_set_kb=256, pattern="loop", random_frac=0.1),
            blocks=72000,
        ),
        _p(
            "sort",
            RegionSpec(n_blocks=40, branch_mix=IRREGULAR),
            MemoryBehavior(working_set_kb=768, pattern="random"),
            blocks=56000,
        ),
        _p(
            "output",
            RegionSpec(n_blocks=24, branch_mix=PREDICTABLE, bias=0.97),
            MemoryBehavior(working_set_kb=24, pattern="loop"),
            blocks=40000,
        ),
    ),
    schedule=("compress", "sort", "compress", "output"),
    seed=102,
)

GCC = BenchmarkProfile(
    name="gcc",
    suite=SUITE,
    description="Compiler passes: small-footprint parsing, large-footprint "
    "optimisation, streaming code emission (MLC 1-way much of the time).",
    phases=(
        _p(
            "parse",
            RegionSpec(n_blocks=56, branch_mix=GLOBAL_HEAVY),
            MemoryBehavior(working_set_kb=20, pattern="loop"),
            blocks=72000,
        ),
        _p(
            "optimize",
            RegionSpec(n_blocks=48, branch_mix=IRREGULAR),
            MemoryBehavior(working_set_kb=512, pattern="loop", random_frac=0.3),
            blocks=40000,
        ),
        _p(
            "emit",
            RegionSpec(n_blocks=32, branch_mix=PREDICTABLE),
            MemoryBehavior(working_set_kb=4096, pattern="stream"),
            blocks=56000,
        ),
    ),
    schedule=("parse", "optimize", "emit", "parse"),
    seed=103,
)

MCF = BenchmarkProfile(
    name="mcf",
    suite=SUITE,
    description="Network simplex: pointer chasing over a huge working set "
    "with data-dependent branches.",
    phases=(
        _p(
            "pricing",
            RegionSpec(n_blocks=40, branch_mix=NOISY, mem_frac=0.40),
            MemoryBehavior(working_set_kb=12288, pattern="random"),
            blocks=64000,
        ),
        _p(
            "pivot",
            RegionSpec(n_blocks=32, branch_mix=IRREGULAR, mem_frac=0.38),
            MemoryBehavior(working_set_kb=900, pattern="loop", random_frac=0.4),
            blocks=48000,
        ),
    ),
    schedule=("pricing", "pivot", "pricing"),
    seed=104,
)

GOBMK = BenchmarkProfile(
    name="gobmk",
    suite=SUITE,
    description="Go engine: vector intensity varies sharply across phases "
    "(Fig. 1) — scalar tree search vs. vectorised pattern matching.",
    phases=(
        _p(
            "search",
            RegionSpec(n_blocks=56, branch_mix=IRREGULAR),
            MemoryBehavior(working_set_kb=96, pattern="loop", random_frac=0.2),
            blocks=72000,
        ),
        _p(
            "pattern_match",
            RegionSpec(
                n_blocks=32,
                branch_mix=LOCAL_HEAVY,
                vector_frac=0.12,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=64, pattern="loop"),
            blocks=32000,
        ),
        _p(
            "endgame",
            RegionSpec(n_blocks=40, branch_mix=IRREGULAR, vector_style="sparse"),
            MemoryBehavior(working_set_kb=48, pattern="loop"),
            blocks=48000,
        ),
    ),
    schedule=("search", "pattern_match", "search", "endgame"),
    seed=105,
)

HMMER = BenchmarkProfile(
    name="hmmer",
    suite=SUITE,
    description="Profile HMM search: one tight, highly-biased inner loop — "
    "the large BPU is non-critical (paper gates it substantially).",
    phases=(
        _p(
            "viterbi",
            RegionSpec(n_blocks=32, branch_mix=PREDICTABLE, bias=0.985),
            MemoryBehavior(working_set_kb=96, pattern="loop"),
            blocks=96000,
        ),
        _p(
            "postproc",
            RegionSpec(n_blocks=24, branch_mix=PREDICTABLE, bias=0.97),
            MemoryBehavior(working_set_kb=16, pattern="loop"),
            blocks=32000,
        ),
    ),
    schedule=("viterbi", "postproc", "viterbi"),
    seed=106,
)

SJENG = BenchmarkProfile(
    name="sjeng",
    suite=SUITE,
    description="Chess search: globally-correlated and noisy branches; the "
    "tournament predictor earns its keep.",
    phases=(
        _p(
            "alphabeta",
            RegionSpec(n_blocks=56, branch_mix=GLOBAL_HEAVY),
            MemoryBehavior(working_set_kb=128, pattern="loop", random_frac=0.25),
            blocks=72000,
        ),
        _p(
            "eval",
            RegionSpec(n_blocks=40, branch_mix=IRREGULAR),
            MemoryBehavior(working_set_kb=64, pattern="loop"),
            blocks=48000,
        ),
    ),
    schedule=("alphabeta", "eval", "alphabeta"),
    seed=107,
)

LIBQUANTUM = BenchmarkProfile(
    name="libquantum",
    suite=SUITE,
    description="Quantum gate simulation: regular streaming sweeps over a "
    "huge state vector — MLC non-critical for most of execution.",
    phases=(
        _p(
            "gates",
            RegionSpec(n_blocks=32, branch_mix=PREDICTABLE, bias=0.985, mem_frac=0.4),
            MemoryBehavior(working_set_kb=8192, pattern="stream"),
            blocks=96000,
        ),
        _p(
            "toffoli",
            RegionSpec(n_blocks=24, branch_mix=PREDICTABLE, bias=0.98, mem_frac=0.38),
            MemoryBehavior(working_set_kb=8192, pattern="stream", stride=16),
            blocks=48000,
        ),
    ),
    schedule=("gates", "toffoli", "gates"),
    seed=108,
)

H264REF = BenchmarkProfile(
    name="h264ref",
    suite=SUITE,
    description="Video encoder: sparse SIMD in motion estimation defeats "
    "timeout VPU gating (Fig. 16); moderate working set.",
    phases=(
        _p(
            "motion_est",
            RegionSpec(n_blocks=48, branch_mix=LOCAL_HEAVY, vector_style="sparse"),
            MemoryBehavior(working_set_kb=160, pattern="loop", random_frac=0.15),
            blocks=72000,
        ),
        _p(
            "entropy",
            RegionSpec(n_blocks=40, branch_mix=IRREGULAR),
            MemoryBehavior(working_set_kb=32, pattern="loop"),
            blocks=40000,
        ),
        _p(
            "deblock",
            RegionSpec(n_blocks=32, branch_mix=PREDICTABLE, vector_style="sparse"),
            MemoryBehavior(working_set_kb=96, pattern="loop"),
            blocks=40000,
        ),
    ),
    schedule=("motion_est", "entropy", "motion_est", "deblock"),
    seed=109,
)

XALANCBMK = BenchmarkProfile(
    name="xalancbmk",
    suite=SUITE,
    description="XSLT processing: virtual-call-heavy control flow with "
    "global correlation, pointer-rich medium/large working set.",
    phases=(
        _p(
            "transform",
            RegionSpec(n_blocks=64, branch_mix=GLOBAL_HEAVY),
            MemoryBehavior(working_set_kb=1024, pattern="random"),
            blocks=64000,
        ),
        _p(
            "serialize",
            RegionSpec(n_blocks=32, branch_mix=LOCAL_HEAVY),
            MemoryBehavior(working_set_kb=64, pattern="loop"),
            blocks=40000,
        ),
    ),
    schedule=("transform", "serialize", "transform"),
    seed=110,
)

PROFILES = (
    PERLBENCH,
    BZIP2,
    GCC,
    MCF,
    GOBMK,
    HMMER,
    SJENG,
    LIBQUANTUM,
    H264REF,
    XALANCBMK,
)
