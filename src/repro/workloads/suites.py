"""Benchmark suite registry: the paper's 29-application study set."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads import mobilebench, parsec, spec_fp, spec_int
from repro.workloads.profiles import BenchmarkProfile

SPEC_INT: Tuple[BenchmarkProfile, ...] = spec_int.PROFILES
SPEC_FP: Tuple[BenchmarkProfile, ...] = spec_fp.PROFILES
PARSEC: Tuple[BenchmarkProfile, ...] = parsec.PROFILES
MOBILEBENCH: Tuple[BenchmarkProfile, ...] = mobilebench.PROFILES

SUITES: Dict[str, Tuple[BenchmarkProfile, ...]] = {
    "SPEC-INT": SPEC_INT,
    "SPEC-FP": SPEC_FP,
    "PARSEC": PARSEC,
    "MobileBench": MOBILEBENCH,
}

ALL_BENCHMARKS: Tuple[BenchmarkProfile, ...] = (
    SPEC_INT + SPEC_FP + PARSEC + MOBILEBENCH
)

_BY_NAME: Dict[str, BenchmarkProfile] = {p.name: p for p in ALL_BENCHMARKS}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name (e.g. ``"gobmk"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def server_benchmarks() -> List[BenchmarkProfile]:
    """SPEC + PARSEC: the workloads the paper runs on the server core."""
    return list(SPEC_INT + SPEC_FP + PARSEC)


def mobile_benchmarks() -> List[BenchmarkProfile]:
    """MobileBench: the workloads the paper runs on the mobile core."""
    return list(MOBILEBENCH)
