"""Benchmark suite registry: the paper's 29-application study set."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads import kernels, mobilebench, parsec, spec_fp, spec_int
from repro.workloads.profiles import BenchmarkProfile

SPEC_INT: Tuple[BenchmarkProfile, ...] = spec_int.PROFILES
SPEC_FP: Tuple[BenchmarkProfile, ...] = spec_fp.PROFILES
PARSEC: Tuple[BenchmarkProfile, ...] = parsec.PROFILES
MOBILEBENCH: Tuple[BenchmarkProfile, ...] = mobilebench.PROFILES

SUITES: Dict[str, Tuple[BenchmarkProfile, ...]] = {
    "SPEC-INT": SPEC_INT,
    "SPEC-FP": SPEC_FP,
    "PARSEC": PARSEC,
    "MobileBench": MOBILEBENCH,
}

ALL_BENCHMARKS: Tuple[BenchmarkProfile, ...] = (
    SPEC_INT + SPEC_FP + PARSEC + MOBILEBENCH
)

#: Deterministic compute kernels (repro.workloads.kernels).  Resolvable by
#: name like any profile, but deliberately outside ``ALL_BENCHMARKS``/
#: ``SUITES`` so the paper's 29-application study set stays pinned.
KERNEL_BENCHMARKS: Tuple[BenchmarkProfile, ...] = kernels.PROFILES

_BY_NAME: Dict[str, BenchmarkProfile] = {
    p.name: p for p in ALL_BENCHMARKS + KERNEL_BENCHMARKS
}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name (e.g. ``"gobmk"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def server_benchmarks() -> List[BenchmarkProfile]:
    """SPEC + PARSEC: the workloads the paper runs on the server core."""
    return list(SPEC_INT + SPEC_FP + PARSEC)


def mobile_benchmarks() -> List[BenchmarkProfile]:
    """MobileBench: the workloads the paper runs on the mobile core."""
    return list(MOBILEBENCH)


def kernel_benchmarks() -> List[BenchmarkProfile]:
    """Deterministic compute kernels (not part of the paper's 29-app set)."""
    return list(KERNEL_BENCHMARKS)
