"""Synthetic workload substrate.

The paper evaluates PowerChop on SPEC CPU2006, PARSEC and MobileBench
(R-GWB).  Those binaries (and the gem5 checkpoints driving them) are not
available here, so this package provides the closest synthetic equivalent:
29 deterministic benchmark profiles whose *phase structure* — recurring code
regions with distinct vector intensity, branch behaviour and working-set
size — matches the behaviours the paper reports per benchmark.  See
DESIGN.md §1 for the substitution argument.
"""

from repro.workloads.generator import (
    AddressStream,
    MemoryBehavior,
    PhaseSpec,
    RegionBuilder,
    SyntheticWorkload,
)
from repro.workloads.profiles import (
    BenchmarkProfile,
    PhaseDecl,
    RegionSpec,
    build_workload,
)
from repro.workloads.suites import (
    ALL_BENCHMARKS,
    MOBILEBENCH,
    PARSEC,
    SPEC_FP,
    SPEC_INT,
    SUITES,
    get_profile,
    mobile_benchmarks,
    server_benchmarks,
)

__all__ = [
    "AddressStream",
    "MemoryBehavior",
    "PhaseSpec",
    "RegionBuilder",
    "SyntheticWorkload",
    "BenchmarkProfile",
    "PhaseDecl",
    "RegionSpec",
    "build_workload",
    "ALL_BENCHMARKS",
    "SPEC_INT",
    "SPEC_FP",
    "PARSEC",
    "MOBILEBENCH",
    "SUITES",
    "get_profile",
    "server_benchmarks",
    "mobile_benchmarks",
]
