"""Trace export and replay.

Lets users capture a synthetic workload's dynamic block trace to a compact
file (e.g. to diff behaviour across code versions, feed external tools, or
replay identical streams without re-generating them) and replay it through
the simulator.  The format is line-oriented text:

    # repro-trace v1 <name> <suite>
    R <region_id> <entry> <n_blocks>          (region declarations)
    B <region_id> <pc> <scalar> <vector> <loads> <stores> <has_branch>
    X <block_pc> <taken> <phase> [addr...]     (dynamic executions)

Replayed traces reconstruct BasicBlock objects (without branch models —
outcomes come from the recorded stream), which is sufficient for the core
timing model and PowerChop; the BT runtime requires region structure, so
replay drives the simulator's components directly.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, TextIO

from repro.isa.blocks import BasicBlock, BlockExec
from repro.isa.branches import BiasedBranch, StaticBranch
from repro.isa.instructions import InstructionMix
from repro.workloads.generator import SyntheticWorkload

FORMAT_TAG = "# repro-trace v1"


def export_trace(
    workload: SyntheticWorkload, handle: TextIO, max_instructions: int
) -> int:
    """Write a workload's trace; returns dynamic block executions written."""
    handle.write(f"{FORMAT_TAG} {workload.name} {workload.suite}\n")
    seen_blocks = set()
    lines: List[str] = []
    count = 0
    for block_exec in workload.trace(max_instructions):
        block = block_exec.block
        if block.pc not in seen_blocks:
            seen_blocks.add(block.pc)
            mix = block.mix
            handle.write(
                f"B {block.region_id} {block.pc} {mix.scalar} {mix.vector} "
                f"{mix.loads} {mix.stores} {int(mix.has_branch)}\n"
            )
        addresses = " ".join(str(a) for a in block_exec.addresses)
        lines.append(
            f"X {block.pc} {int(block_exec.taken)} {block_exec.phase_name}"
            + (f" {addresses}" if addresses else "")
        )
        count += 1
        if len(lines) >= 4096:
            handle.write("\n".join(lines) + "\n")
            lines.clear()
    if lines:
        handle.write("\n".join(lines) + "\n")
    return count


class ReplayTrace:
    """A parsed trace file, iterable as :class:`BlockExec` records."""

    def __init__(self, name: str, suite: str, blocks: Dict[int, BasicBlock],
                 events: List[tuple]):
        self.name = name
        self.suite = suite
        self.blocks = blocks
        self._events = events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[BlockExec]:
        blocks = self.blocks
        for pc, taken, phase, addresses in self._events:
            yield BlockExec(blocks[pc], taken, addresses, phase)

    @property
    def total_instructions(self) -> int:
        return sum(self.blocks[pc].n_instr for pc, *_ in self._events)


def load_trace(handle: TextIO) -> ReplayTrace:
    """Parse a trace file written by :func:`export_trace`."""
    header = handle.readline().strip()
    if not header.startswith(FORMAT_TAG):
        raise ValueError(f"not a repro trace file (header {header!r})")
    parts = header[len(FORMAT_TAG):].split()
    name = parts[0] if parts else "trace"
    suite = parts[1] if len(parts) > 1 else "unknown"

    blocks: Dict[int, BasicBlock] = {}
    events: List[tuple] = []
    for line in handle:
        kind = line[0]
        if kind == "X":
            fields = line.split()
            pc = int(fields[1])
            taken = fields[2] == "1"
            phase = fields[3]
            addresses = tuple(int(a) for a in fields[4:])
            events.append((pc, taken, phase, addresses))
        elif kind == "B":
            (_tag, region_id, pc, scalar, vector, loads, stores,
             has_branch) = line.split()
            mix = InstructionMix(
                scalar=int(scalar),
                vector=int(vector),
                loads=int(loads),
                stores=int(stores),
                has_branch=has_branch == "1",
            )
            branch = None
            if mix.has_branch:
                # Outcomes replay from the recorded stream; the model is a
                # placeholder that is never consulted.
                branch = StaticBranch(pc=int(pc), model=BiasedBranch(0.5))
            block = BasicBlock(int(pc), mix, branch)
            block.region_id = int(region_id)
            blocks[int(pc)] = block
        elif line.strip() and not line.startswith("#"):
            raise ValueError(f"unrecognised trace line: {line!r}")
    return ReplayTrace(name, suite, blocks, events)


def replay_through_core(trace: ReplayTrace, core) -> float:
    """Drive a :class:`~repro.uarch.core.CoreModel` with a replayed trace.

    Returns total cycles.  The BT layer is bypassed (replay is for timing
    studies of recorded streams), so every block executes as translated
    code.
    """
    cycles = 0.0
    for block_exec in trace:
        cycles += core.execute_block(block_exec, interpreting=False)
    return cycles
