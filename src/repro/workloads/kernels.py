"""Deterministic compute-kernel profiles (outside the paper's 29-app set).

These profiles model tight numerical kernels — tiled matrix multiply and a
stencil sweep — whose control flow is *fully deterministic*: every branch is
a loop backedge (:class:`~repro.isa.branches.LoopBranch`) or a short fixed
pattern (:class:`~repro.isa.branches.PatternBranch`), and the address
streams carry no random component.  ``repro.staticcheck.proofs`` certifies
their regions as outcome-closed-form, which licenses the vectorized
backend's walk-trace memo (record each pass-A chunk once per branch-phase
state, replay it as bulk list/int operations thereafter).

The paper's 29 benchmarks all mix in biased branches (stochastic successor
chains), so none of them certify; these kernels are the deterministic-steady
workloads the memo path is measured on.  They are intentionally *not* part
of ``ALL_BENCHMARKS`` — the paper's study set stays pinned at 29 — but they
resolve through :func:`repro.workloads.suites.get_profile` like any other
profile and must stay clean under ``python -m repro staticcheck``.

``loop_periods``/``pattern_lengths`` are constrained to tiny sets so the
joint branch-phase orbit is short.  The memo keys pass-A chunks on the
(entry-anchored) joint state of every branch model in the region, and that
state only recurs when the walk revisits the same point of the product
orbit; with many models or large periods the orbit is astronomically long
and the memo records forever without hitting.  Small regions (4-8 blocks),
periods of 2/4, patterns of length 2, and no side blocks keep the orbit to
a few dozen circuits.  The seeds below were *selected by measuring* the
orbit of the generated regions (cycle lengths: dgemm 68 circuits; stencil
sweep 50, halo 16), because the cycle of the joint dynamics depends on the
concrete successor wiring and pattern bits the generator draws.
"""

from repro.workloads.generator import MemoryBehavior
from repro.workloads.profiles import BenchmarkProfile, PhaseDecl, RegionSpec

SUITE = "Kernels"

#: Branch mix with no stochastic component: backedges and short patterns.
DETERMINISTIC_MIX = {"loop": 0.65, "pattern": 0.35}


def _kernel_region(
    n_blocks: int,
    mem_frac: float,
    vector_frac: float = 0.0,
    loop_periods=(4,),
    pattern_lengths=(2,),
):
    return RegionSpec(
        n_blocks=n_blocks,
        avg_block_size=12,
        mem_frac=mem_frac,
        store_frac=0.30,
        vector_frac=vector_frac,
        # "sparse" would guard side blocks with BiasedBranch(0.03) and break
        # determinism; dense/none keep every model in the declared mix.
        vector_style="dense" if vector_frac else "none",
        branch_mix=DETERMINISTIC_MIX,
        bias=0.92,
        # Side blocks would lengthen circuits without adding branch state,
        # diluting memo coverage; kernels keep the main loop tight.
        side_block_prob=0.0,
        loop_periods=loop_periods,
        pattern_lengths=pattern_lengths,
    )


DGEMM = BenchmarkProfile(
    name="dgemm",
    suite=SUITE,
    description="Tiled matrix multiply: one fully deterministic inner-kernel "
    "region (loop backedges + fixed unroll patterns) sweeping a loop-resident "
    "tile.  The walk-trace memo's primary measurement target.",
    phases=(
        PhaseDecl(
            name="tile_mult",
            region=_kernel_region(n_blocks=8, mem_frac=0.34, vector_frac=0.12),
            memory=MemoryBehavior(working_set_kb=96, pattern="loop", stride=8),
            blocks=64000,
        ),
    ),
    schedule=("tile_mult", "tile_mult"),
    seed=409,
)

STENCIL = BenchmarkProfile(
    name="stencil",
    suite=SUITE,
    description="5-point stencil: a deterministic sweep phase alternating "
    "with a deterministic halo-exchange phase (two phase slots, both "
    "closed-form), exercising multi-slot stream disjointness proofs.",
    phases=(
        PhaseDecl(
            name="sweep",
            region=_kernel_region(n_blocks=6, mem_frac=0.38),
            memory=MemoryBehavior(working_set_kb=256, pattern="loop", stride=8),
            blocks=48000,
        ),
        PhaseDecl(
            name="halo",
            region=_kernel_region(
                n_blocks=4, mem_frac=0.30, loop_periods=(2,)
            ),
            memory=MemoryBehavior(working_set_kb=32, pattern="loop", stride=16),
            blocks=24000,
        ),
    ),
    schedule=("sweep", "halo", "sweep", "halo"),
    seed=401,
)

PROFILES = (DGEMM, STENCIL)
