"""SPEC CPU2006 floating-point benchmark profiles (synthetic equivalents).

Shapes targeted: ``GemsFDTD``'s alternation between MLC-resident and
streaming phases (Fig. 3), ``milc``/``lbm`` streaming that leaves the MLC in
its 1-way state > 40 % of cycles, ``namd``'s uniformly-distributed sparse
vector ops that defeat timeout gating while PowerChop keeps the VPU off
(Fig. 16), and ``soplex``/``sphinx3`` gating the VPU only ~20 % of the time.
"""

from repro.workloads.generator import MemoryBehavior
from repro.workloads.mixes import IRREGULAR, LOCAL_HEAVY, PREDICTABLE
from repro.workloads.profiles import BenchmarkProfile, PhaseDecl, RegionSpec

SUITE = "SPEC-FP"


def _p(name, region, memory, blocks=64000):
    return PhaseDecl(name=name, region=region, memory=memory, blocks=blocks)


GEMS = BenchmarkProfile(
    name="gems",
    suite=SUITE,
    description="FDTD solver: field-update phases whose working set fits the "
    "full MLC alternate with streaming boundary sweeps (Fig. 3).",
    phases=(
        _p(
            "field_update",
            RegionSpec(
                n_blocks=40,
                branch_mix=PREDICTABLE,
                bias=0.98,
                mem_frac=0.38,
                vector_frac=0.10,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=700, pattern="loop", random_frac=0.35),
            blocks=64000,
        ),
        _p(
            "boundary_sweep",
            RegionSpec(
                n_blocks=32,
                branch_mix=PREDICTABLE,
                bias=0.985,
                mem_frac=0.42,
                vector_frac=0.08,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=16384, pattern="stream"),
            blocks=80000,
        ),
    ),
    schedule=("field_update", "boundary_sweep", "field_update", "boundary_sweep"),
    seed=201,
)

MILC = BenchmarkProfile(
    name="milc",
    suite=SUITE,
    description="Lattice QCD: dense SU(3) vector arithmetic streaming through "
    "a lattice far larger than the MLC.",
    phases=(
        _p(
            "su3_mult",
            RegionSpec(
                n_blocks=32,
                branch_mix=PREDICTABLE,
                bias=0.985,
                mem_frac=0.40,
                vector_frac=0.22,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=12288, pattern="stream"),
            blocks=96000,
        ),
        _p(
            "gauge_force",
            RegionSpec(
                n_blocks=32,
                branch_mix=PREDICTABLE,
                bias=0.98,
                mem_frac=0.36,
                vector_frac=0.18,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=12288, pattern="stream", stride=16),
            blocks=48000,
        ),
    ),
    schedule=("su3_mult", "gauge_force", "su3_mult"),
    seed=202,
)

NAMD = BenchmarkProfile(
    name="namd",
    suite=SUITE,
    description="Molecular dynamics kernel with *occasional* vector ops "
    "spread nearly uniformly through execution — timeouts never fire, "
    "PowerChop emulates them and keeps the VPU off (Fig. 16).",
    phases=(
        _p(
            "pairlist",
            RegionSpec(n_blocks=40, branch_mix=LOCAL_HEAVY, vector_style="sparse"),
            MemoryBehavior(working_set_kb=48, pattern="loop", random_frac=0.1),
            blocks=80000,
        ),
        _p(
            "forces",
            RegionSpec(n_blocks=48, branch_mix=PREDICTABLE, vector_style="sparse"),
            MemoryBehavior(working_set_kb=96, pattern="loop"),
            blocks=64000,
        ),
    ),
    schedule=("pairlist", "forces", "pairlist"),
    seed=203,
)

SOPLEX = BenchmarkProfile(
    name="soplex",
    suite=SUITE,
    description="LP simplex: one long dense-vector factorisation phase plus "
    "scalar pricing phases — VPU gateable only ~20 % of the time.",
    phases=(
        _p(
            "factorize",
            RegionSpec(
                n_blocks=40,
                branch_mix=PREDICTABLE,
                mem_frac=0.36,
                vector_frac=0.18,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=640, pattern="loop", random_frac=0.30),
            blocks=96000,
        ),
        _p(
            "pricing",
            RegionSpec(n_blocks=48, branch_mix=IRREGULAR),
            MemoryBehavior(working_set_kb=384, pattern="loop", random_frac=0.3),
            blocks=32000,
        ),
    ),
    schedule=("factorize", "pricing", "factorize"),
    seed=204,
)

SPHINX3 = BenchmarkProfile(
    name="sphinx3",
    suite=SUITE,
    description="Speech recognition: vectorised Gaussian scoring dominates; "
    "scalar search phases allow brief VPU gating (~20 %).",
    phases=(
        _p(
            "gauss_score",
            RegionSpec(
                n_blocks=32,
                branch_mix=PREDICTABLE,
                mem_frac=0.34,
                vector_frac=0.20,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=200, pattern="loop", random_frac=0.25),
            blocks=88000,
        ),
        _p(
            "search",
            RegionSpec(n_blocks=48, branch_mix=LOCAL_HEAVY),
            MemoryBehavior(working_set_kb=96, pattern="loop", random_frac=0.2),
            blocks=32000,
        ),
    ),
    schedule=("gauss_score", "search", "gauss_score"),
    seed=205,
)

LBM = BenchmarkProfile(
    name="lbm",
    suite=SUITE,
    description="Lattice-Boltzmann: perfectly regular streaming sweep — "
    "BPU and MLC both gateable for large fractions of execution.",
    phases=(
        _p(
            "collide_stream",
            RegionSpec(
                n_blocks=24,
                branch_mix=PREDICTABLE,
                bias=0.995,
                mem_frac=0.44,
                vector_frac=0.14,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=16384, pattern="stream"),
            blocks=112000,
        ),
        _p(
            "boundary",
            RegionSpec(n_blocks=24, branch_mix=PREDICTABLE, bias=0.99, mem_frac=0.40),
            MemoryBehavior(working_set_kb=24, pattern="loop"),
            blocks=32000,
        ),
    ),
    schedule=("collide_stream", "boundary", "collide_stream"),
    seed=206,
)

CACTUS = BenchmarkProfile(
    name="cactusADM",
    suite=SUITE,
    description="Numerical relativity stencil: dense vector work over a "
    "working set the full MLC captures — VPU and MLC both critical.",
    phases=(
        _p(
            "stencil",
            RegionSpec(
                n_blocks=32,
                branch_mix=PREDICTABLE,
                bias=0.98,
                mem_frac=0.40,
                vector_frac=0.25,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=900, pattern="loop", random_frac=0.30),
            blocks=96000,
        ),
        _p(
            "constraints",
            RegionSpec(
                n_blocks=32,
                branch_mix=PREDICTABLE,
                mem_frac=0.34,
                vector_frac=0.12,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=512, pattern="loop", random_frac=0.25),
            blocks=40000,
        ),
    ),
    schedule=("stencil", "constraints", "stencil"),
    seed=207,
)

LESLIE3D = BenchmarkProfile(
    name="leslie3d",
    suite=SUITE,
    description="CFD solver alternating cache-resident flux updates with "
    "streaming grid sweeps; dense vector arithmetic throughout.",
    phases=(
        _p(
            "flux",
            RegionSpec(
                n_blocks=40,
                branch_mix=PREDICTABLE,
                mem_frac=0.38,
                vector_frac=0.18,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=600, pattern="loop", random_frac=0.25),
            blocks=64000,
        ),
        _p(
            "grid_sweep",
            RegionSpec(
                n_blocks=32,
                branch_mix=PREDICTABLE,
                bias=0.99,
                mem_frac=0.42,
                vector_frac=0.15,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=10240, pattern="stream"),
            blocks=64000,
        ),
    ),
    schedule=("flux", "grid_sweep", "flux"),
    seed=208,
)

PROFILES = (GEMS, MILC, NAMD, SOPLEX, SPHINX3, LBM, CACTUS, LESLIE3D)
