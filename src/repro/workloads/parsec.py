"""PARSEC benchmark profiles (synthetic equivalents, single-thread regions).

Shapes targeted: ``dedup`` gating the VPU > 90 % of cycles, ``streamcluster``
spending > 40 % of cycles with a 1-way MLC, ``blackscholes`` as the densely
vectorised small-footprint kernel, and ``canneal`` as the noisy-branch,
huge-random-working-set outlier where neither a big BPU nor (much of) the
MLC pays for itself.
"""

from repro.workloads.generator import MemoryBehavior
from repro.workloads.mixes import (
    IRREGULAR,
    LOCAL_HEAVY,
    NOISY,
    PREDICTABLE,
)
from repro.workloads.profiles import BenchmarkProfile, PhaseDecl, RegionSpec

SUITE = "PARSEC"


def _p(name, region, memory, blocks=64000):
    return PhaseDecl(name=name, region=region, memory=memory, blocks=blocks)


BLACKSCHOLES = BenchmarkProfile(
    name="blackscholes",
    suite=SUITE,
    description="Option pricing: dense SIMD arithmetic over a tiny working "
    "set — VPU critical, MLC not.",
    phases=(
        _p(
            "price",
            RegionSpec(
                n_blocks=24,
                branch_mix=PREDICTABLE,
                bias=0.99,
                mem_frac=0.22,
                vector_frac=0.30,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=8, pattern="loop"),
            blocks=112000,
        ),
        _p(
            "io",
            RegionSpec(n_blocks=24, branch_mix=PREDICTABLE, mem_frac=0.35),
            MemoryBehavior(working_set_kb=2048, pattern="stream"),
            blocks=24000,
        ),
    ),
    schedule=("price", "io", "price"),
    seed=301,
)

BODYTRACK = BenchmarkProfile(
    name="bodytrack",
    suite=SUITE,
    description="Vision pipeline: moderately vectorised particle filtering "
    "with irregular control flow and a mid-size working set.",
    phases=(
        _p(
            "particle_filter",
            RegionSpec(
                n_blocks=48,
                branch_mix=IRREGULAR,
                vector_frac=0.08,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=256, pattern="loop", random_frac=0.2),
            blocks=72000,
        ),
        _p(
            "edge_detect",
            RegionSpec(
                n_blocks=32,
                branch_mix=LOCAL_HEAVY,
                mem_frac=0.36,
                vector_frac=0.12,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=512, pattern="loop"),
            blocks=48000,
        ),
    ),
    schedule=("particle_filter", "edge_detect", "particle_filter"),
    seed=302,
)

CANNEAL = BenchmarkProfile(
    name="canneal",
    suite=SUITE,
    description="Simulated annealing over a huge netlist: random pointer "
    "chasing, data-dependent (unpredictable) branches, no vector work.",
    phases=(
        _p(
            "anneal",
            RegionSpec(n_blocks=40, branch_mix=NOISY, mem_frac=0.42),
            MemoryBehavior(working_set_kb=24576, pattern="random"),
            blocks=80000,
        ),
        _p(
            "routing_cost",
            RegionSpec(n_blocks=32, branch_mix=IRREGULAR, mem_frac=0.38),
            MemoryBehavior(working_set_kb=512, pattern="loop", random_frac=0.5),
            blocks=40000,
        ),
    ),
    schedule=("anneal", "routing_cost", "anneal"),
    seed=303,
)

DEDUP = BenchmarkProfile(
    name="dedup",
    suite=SUITE,
    description="Deduplication pipeline: hashing streams with only sparse "
    "vector work — VPU gated > 90 % of cycles under PowerChop.",
    phases=(
        _p(
            "chunk_hash",
            RegionSpec(
                n_blocks=40,
                branch_mix=LOCAL_HEAVY,
                mem_frac=0.36,
                vector_style="sparse",
            ),
            MemoryBehavior(working_set_kb=4096, pattern="stream"),
            blocks=72000,
        ),
        _p(
            "dedup_lookup",
            RegionSpec(n_blocks=40, branch_mix=IRREGULAR, mem_frac=0.40),
            MemoryBehavior(working_set_kb=800, pattern="random"),
            blocks=48000,
        ),
        _p(
            "compress",
            RegionSpec(n_blocks=32, branch_mix=LOCAL_HEAVY, vector_style="sparse"),
            MemoryBehavior(working_set_kb=128, pattern="loop"),
            blocks=40000,
        ),
    ),
    schedule=("chunk_hash", "dedup_lookup", "compress", "chunk_hash"),
    seed=304,
)

FLUIDANIMATE = BenchmarkProfile(
    name="fluidanimate",
    suite=SUITE,
    description="SPH fluid simulation: vectorised neighbour-force kernels "
    "over an MLC-resident grid.",
    phases=(
        _p(
            "forces",
            RegionSpec(
                n_blocks=40,
                branch_mix=PREDICTABLE,
                mem_frac=0.36,
                vector_frac=0.12,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=512, pattern="loop", random_frac=0.30),
            blocks=80000,
        ),
        _p(
            "rebin",
            RegionSpec(n_blocks=32, branch_mix=LOCAL_HEAVY, mem_frac=0.40),
            MemoryBehavior(working_set_kb=768, pattern="random"),
            blocks=40000,
        ),
    ),
    schedule=("forces", "rebin", "forces"),
    seed=305,
)

STREAMCLUSTER = BenchmarkProfile(
    name="streamcluster",
    suite=SUITE,
    description="Online clustering: distance computations streaming through "
    "points — MLC in its 1-way state > 40 % of cycles.",
    phases=(
        _p(
            "dist",
            RegionSpec(
                n_blocks=24,
                branch_mix=PREDICTABLE,
                bias=0.99,
                mem_frac=0.42,
                vector_frac=0.10,
                vector_style="dense",
            ),
            MemoryBehavior(working_set_kb=8192, pattern="stream"),
            blocks=96000,
        ),
        _p(
            "center_update",
            RegionSpec(n_blocks=32, branch_mix=LOCAL_HEAVY, mem_frac=0.34),
            MemoryBehavior(working_set_kb=96, pattern="loop"),
            blocks=32000,
        ),
    ),
    schedule=("dist", "center_update", "dist"),
    seed=306,
)

PROFILES = (BLACKSCHOLES, BODYTRACK, CANNEAL, DEDUP, FLUIDANIMATE, STREAMCLUSTER)
