"""Shared branch-behaviour mixes used by the benchmark profile definitions.

Each mix characterises how predictable a region's control flow is, and —
crucially for PowerChop — *which predictor class* the predictability is
visible to:

- ``PREDICTABLE`` — strongly biased branches and regular loops; a small
  local predictor does nearly as well as the tournament (large BPU
  non-critical).
- ``LOCAL_HEAVY`` — loop/pattern behaviour a two-level local predictor
  captures; again little benefit from the tournament.
- ``GLOBAL_HEAVY`` — globally-correlated branches only the tournament's
  global side can learn (large BPU critical).
- ``IRREGULAR`` — a blend with some global correlation and some noise.
- ``NOISY`` — data-dependent, effectively random branches; *no* predictor
  helps, so the large BPU is again non-critical.
"""

from types import MappingProxyType

PREDICTABLE = MappingProxyType({"biased": 0.80, "loop": 0.20})
LOCAL_HEAVY = MappingProxyType({"biased": 0.40, "loop": 0.35, "pattern": 0.25})
GLOBAL_HEAVY = MappingProxyType(
    {"biased": 0.25, "loop": 0.15, "pattern": 0.10, "global": 0.50}
)
IRREGULAR = MappingProxyType(
    {"biased": 0.30, "loop": 0.15, "pattern": 0.10, "global": 0.25, "random": 0.20}
)
NOISY = MappingProxyType({"biased": 0.25, "loop": 0.10, "random": 0.65})

ALL_MIXES = {
    "predictable": PREDICTABLE,
    "local_heavy": LOCAL_HEAVY,
    "global_heavy": GLOBAL_HEAVY,
    "irregular": IRREGULAR,
    "noisy": NOISY,
}
