"""Trace generation: address streams, phases, and synthetic workloads."""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.isa.blocks import BasicBlock, BlockExec, CodeRegion
from repro.isa.branches import (
    BiasedBranch,
    GlobalCorrelatedBranch,
    GlobalHistory,
    LoopBranch,
    PatternBranch,
    RandomBranch,
    StaticBranch,
)
from repro.isa.instructions import InstructionMix

CACHE_LINE = 64
#: Address-space slot reserved per phase so distinct phases never alias.
_PHASE_SLOT = 1 << 30


@dataclass(frozen=True)
class MemoryBehavior:
    """Per-phase data-access behaviour.

    ``pattern`` selects the generator:

    - ``"loop"``   — repeatedly sweep a working set of ``working_set_kb``;
      hits in whatever cache level the working set fits in once warm.
    - ``"stream"`` — monotonically advancing addresses (no reuse beyond the
      cache line); the classic MLC-defeating access pattern.
    - ``"random"`` — uniform accesses within the working set.

    ``random_frac`` mixes uniform working-set accesses into the base pattern.
    """

    working_set_kb: float = 32.0
    pattern: str = "loop"
    stride: int = 8
    random_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.pattern not in ("loop", "stream", "random"):
            raise ValueError(f"unknown memory pattern {self.pattern!r}")
        if self.working_set_kb <= 0:
            raise ValueError("working set must be positive")
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        if not 0.0 <= self.random_frac <= 1.0:
            raise ValueError("random_frac must be in [0, 1]")


class AddressStream:
    """Stateful address generator implementing a :class:`MemoryBehavior`."""

    __slots__ = (
        "behavior",
        "base",
        "_cursor",
        "_ws_bytes",
        "_rng",
        "_random",
        "_randrange",
        "_stream_limit",
    )

    def __init__(self, behavior: MemoryBehavior, base: int, seed: int = 0) -> None:
        self.behavior = behavior
        self.base = base
        self._cursor = 0
        self._ws_bytes = max(int(behavior.working_set_kb * 1024), behavior.stride)
        self._rng = random.Random(seed)
        # Hoisted bound methods: ``next()`` sits on the simulator's hottest
        # path, where the two attribute walks per RNG call are measurable.
        self._random = self._rng.random
        self._randrange = self._rng.randrange
        # Streams wrap within a large private region so addresses stay bounded
        # while never re-touching lines soon enough to hit in the MLC.
        self._stream_limit = _PHASE_SLOT // 2

    def next(self) -> int:
        behavior = self.behavior
        if behavior.random_frac and self._random() < behavior.random_frac:
            return self.base + self._randrange(self._ws_bytes)
        if behavior.pattern == "loop":
            addr = self.base + self._cursor
            self._cursor = (self._cursor + behavior.stride) % self._ws_bytes
            return addr
        if behavior.pattern == "stream":
            addr = self.base + self._cursor
            self._cursor = (self._cursor + behavior.stride) % self._stream_limit
            return addr
        return self.base + self._randrange(self._ws_bytes)

    def take(self, n: int) -> List[int]:
        """Generate ``n`` addresses (hot path: avoids per-call dispatch)."""
        behavior = self.behavior
        random_frac = behavior.random_frac
        if behavior.pattern == "random" or random_frac:
            next_addr = self.next
            return [next_addr() for _ in range(n)]
        base = self.base
        cursor = self._cursor
        stride = behavior.stride
        limit = self._ws_bytes if behavior.pattern == "loop" else self._stream_limit
        out = []
        append = out.append
        for _ in range(n):
            append(base + cursor)
            cursor += stride
            if cursor >= limit:
                cursor -= limit
        self._cursor = cursor
        return out


@dataclass
class PhaseSpec:
    """A runnable phase: a code region plus the data behaviour it exhibits."""

    name: str
    region: CodeRegion
    memory: MemoryBehavior
    stream: Optional[AddressStream] = None

    def address_stream(self, phase_index: int, seed: int) -> AddressStream:
        """Lazily create (and persist) this phase's address stream.

        The stream survives across phase recurrences so that data reuse when
        a phase comes back — the thing that makes the MLC criticality of a
        recurring phase *stable* — is modelled.
        """
        if self.stream is None:
            base = (phase_index + 1) * _PHASE_SLOT
            self.stream = AddressStream(self.memory, base, seed)
        return self.stream


class RegionBuilder:
    """Builds the CFG for one code region from distribution parameters.

    The topology is a loop over ``n_blocks`` main-path blocks.  Each main
    block may be paired with a rarely-taken side block (guarded by a biased
    branch), which is where *sparse* vector work lives — the behaviour class
    that defeats timeout-based VPU gating (paper §V-E, namd).
    """

    def __init__(self, rng: random.Random, pc_base: int) -> None:
        self._rng = rng
        self._next_pc = pc_base

    def _alloc_pc(self, n_instr: int) -> int:
        pc = self._next_pc
        self._next_pc += n_instr * 4
        return pc

    def _make_branch_model(
        self,
        branch_mix: Dict[str, float],
        bias: float,
        loop_periods: Optional[Tuple[int, ...]] = None,
        pattern_lengths: Optional[Tuple[int, ...]] = None,
    ):
        kinds = list(branch_mix.keys())
        weights = list(branch_mix.values())
        kind = self._rng.choices(kinds, weights=weights)[0]
        seed = self._rng.randrange(1 << 30)
        if kind == "biased":
            # Jitter the bias so distinct static branches have distinct taken
            # probabilities.  Block visit frequencies are products of these,
            # so the jitter keeps expected frequencies generically untied —
            # which is what makes hottest-N phase signatures stable.
            b = min(0.995, max(0.70, bias + self._rng.uniform(-0.06, 0.06)))
            p = b if self._rng.random() < 0.5 else 1.0 - b
            return BiasedBranch(p, seed)
        if kind == "loop":
            # The default draw order (one randint) must stay exactly as it
            # was for existing profiles; the constrained form picks from the
            # caller's period set instead (deterministic kernels keep the
            # joint branch-phase orbit short so walk-trace memos recur).
            if loop_periods is None:
                return LoopBranch(self._rng.randint(8, 48))
            return LoopBranch(loop_periods[self._rng.randrange(len(loop_periods))])
        if kind == "pattern":
            if pattern_lengths is None:
                length = self._rng.randint(3, 8)
            else:
                length = pattern_lengths[self._rng.randrange(len(pattern_lengths))]
            pattern = [self._rng.random() < 0.5 for _ in range(length)]
            if all(pattern) or not any(pattern):
                pattern[0] = not pattern[0]
            return PatternBranch(pattern)
        if kind == "global":
            offsets = tuple(sorted(self._rng.sample(range(1, 8), k=2)))
            return GlobalCorrelatedBranch(offsets, noise=0.02, seed=seed)
        if kind == "random":
            return RandomBranch(seed)
        raise ValueError(f"unknown branch kind {kind!r}")

    def _make_mix(
        self,
        avg_block_size: int,
        mem_frac: float,
        store_frac: float,
        vector_instrs: int,
    ) -> InstructionMix:
        n = max(3, int(self._rng.gauss(avg_block_size, avg_block_size * 0.25)))
        body = max(n - 1, 2)  # one slot for the terminating branch
        mem = min(body - 1, max(0, round(body * mem_frac)))
        stores = round(mem * store_frac)
        loads = mem - stores
        vector = min(vector_instrs, body - mem)
        scalar = body - mem - vector
        return InstructionMix(
            scalar=scalar, vector=vector, loads=loads, stores=stores, has_branch=True
        )

    def build(
        self,
        region_id: int,
        n_blocks: int,
        avg_block_size: int,
        mem_frac: float,
        store_frac: float,
        vector_frac: float,
        vector_style: str,
        branch_mix: Dict[str, float],
        bias: float,
        side_block_prob: float = 0.25,
        loop_periods: Optional[Tuple[int, ...]] = None,
        pattern_lengths: Optional[Tuple[int, ...]] = None,
    ) -> CodeRegion:
        if vector_style not in ("none", "dense", "sparse"):
            raise ValueError(f"unknown vector_style {vector_style!r}")
        blocks: List[BasicBlock] = []
        main_indices: List[int] = []
        avg_vec_per_block = vector_frac * avg_block_size

        # First lay out main-path blocks, reserving slots; side blocks appended
        # afterwards so main-path indices are stable.
        plans = []
        for i in range(n_blocks):
            has_side = self._rng.random() < side_block_prob
            plans.append(has_side)

        side_plans: List[Tuple[int, int]] = []  # (main index, side index)
        for i, has_side in enumerate(plans):
            dense_vec = 0
            if vector_style == "dense":
                dense_vec = max(0, round(self._rng.gauss(avg_vec_per_block, 1.0)))
            mix = self._make_mix(avg_block_size, mem_frac, store_frac, dense_vec)
            pc = self._alloc_pc(mix.total)
            model = self._make_branch_model(
                branch_mix, bias, loop_periods, pattern_lengths
            )
            branch = StaticBranch(pc=pc + (mix.total - 1) * 4, model=model)
            block = BasicBlock(pc, mix, branch)
            main_indices.append(len(blocks))
            blocks.append(block)
            if has_side:
                side_plans.append((i, -1))

        # Side blocks: small, unconditional, fall back into the main loop.
        for k, (main_i, _) in enumerate(side_plans):
            sparse_vec = 0
            if vector_style == "sparse":
                sparse_vec = self._rng.randint(1, 4)
            mix = self._make_mix(
                max(4, avg_block_size // 2), mem_frac, store_frac, sparse_vec
            )
            mix = InstructionMix(
                scalar=mix.scalar + 1,  # reclaim the branch slot
                vector=mix.vector,
                loads=mix.loads,
                stores=mix.stores,
                has_branch=False,
            )
            pc = self._alloc_pc(mix.total)
            side_index = len(blocks)
            blocks.append(BasicBlock(pc, mix, None))
            side_plans[k] = (main_i, side_index)

        # Wire successors.  Real code executes with heavily *skewed* block
        # frequencies (inner loops dominate), and PowerChop's hottest-N phase
        # signatures rely on that skew being stable.  The topology therefore
        # is: main block i falls through to i+1 (wrapping at the end); a
        # taken branch either (a) detours through the block's side block,
        # (b) closes an inner loop by jumping back 1-3 blocks when the
        # branch is a loop backedge, or (c) skips the next main block.
        side_of = dict(side_plans)
        for i, main_idx in enumerate(main_indices):
            block = blocks[main_idx]
            nxt = main_indices[(i + 1) % n_blocks]
            block.fall_succ = nxt
            if i in side_of:
                block.taken_succ = side_of[i]
                if vector_style == "sparse":
                    # Sparse vector work must be *rare but recurring*: guard
                    # the detour with a weakly-taken biased branch regardless
                    # of the region's nominal branch mix.
                    seed = self._rng.randrange(1 << 30)
                    assert block.branch is not None
                    block.branch.model = BiasedBranch(0.03, seed)
            elif isinstance(block.branch.model, LoopBranch) and i >= 1:
                back = self._rng.randint(1, min(4, i))
                block.taken_succ = main_indices[i - back]
            else:
                block.taken_succ = main_indices[(i + 2) % n_blocks]
        for main_i, side_idx in side_plans:
            rejoin = main_indices[(main_i + 1) % n_blocks]
            blocks[side_idx].fall_succ = rejoin
            blocks[side_idx].taken_succ = rejoin

        return CodeRegion(region_id, blocks, entry=main_indices[0])


class SyntheticWorkload:
    """A fully-instantiated synthetic benchmark ready to produce a trace.

    Instances are single-use per simulation run (branch models and address
    streams are stateful); build a fresh one per run via
    :func:`repro.workloads.profiles.build_workload` to replay the identical
    instruction stream under different processor configurations.
    """

    def __init__(
        self,
        name: str,
        suite: str,
        phases: Sequence[PhaseSpec],
        schedule: Sequence[Tuple[str, int]],
        seed: int,
    ) -> None:
        if not phases:
            raise ValueError("workload needs at least one phase")
        if not schedule:
            raise ValueError("workload needs a non-empty schedule")
        self.name = name
        self.suite = suite
        self.phases: Dict[str, PhaseSpec] = {p.name: p for p in phases}
        self._phase_order = {p.name: i for i, p in enumerate(phases)}
        for entry_name, n_blocks in schedule:
            if entry_name not in self.phases:
                raise ValueError(f"schedule references unknown phase {entry_name!r}")
            if n_blocks <= 0:
                raise ValueError("schedule entries must execute >= 1 block")
        self.schedule = list(schedule)
        self.seed = seed
        self.history = GlobalHistory()

    def trace(self, max_instructions: Optional[int] = None) -> Iterator[BlockExec]:
        """Yield dynamic block executions following the phase schedule.

        The schedule repeats from the start until ``max_instructions`` guest
        instructions have been produced (or runs once when unbounded).

        NOTE: :func:`repro.sim.backends.fastpath.run_fast` inlines this generator
        (schedule walk, per-phase stream seeding, cursor arithmetic,
        produced-count termination) so it can fuse address generation into
        the cache walk.  Any semantic change here must be mirrored there —
        the fast-path equivalence suite (``tests/test_fastpath.py``) will
        catch a divergence.
        """
        history = self.history
        produced = 0
        repeat = max_instructions is not None
        while True:
            for phase_name, n_blocks in self.schedule:
                phase = self.phases[phase_name]
                # crc32, not hash(): str hashing is salted per process
                # (PYTHONHASHSEED), and a hash-dependent seed would make
                # traces differ across processes — breaking the engine's
                # serial-vs-pool bit-identity and golden-trace fixtures.
                stream = phase.address_stream(
                    self._phase_order[phase_name],
                    self.seed ^ zlib.crc32(phase_name.encode()) & 0xFFFF,
                )
                region = phase.region
                region_blocks = region.blocks
                idx = region.entry
                take = stream.take
                for _ in range(n_blocks):
                    block = region_blocks[idx]
                    succ, taken = block.next_block(history)
                    n_mem = block.n_mem
                    addresses = take(n_mem) if n_mem else ()
                    yield BlockExec(block, taken, addresses, phase_name)
                    produced += block.n_instr
                    if max_instructions is not None and produced >= max_instructions:
                        return
                    idx = succ
            if not repeat:
                return
