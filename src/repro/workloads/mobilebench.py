"""MobileBench R-GWB (Realistic General Web Browsing) profiles.

The paper runs these inside the Android browser on a mobile core and finds
the *largest* PowerChop wins there: VPU gated ~90 %+, BPU gated ~40 % of
cycles on average, MLC gated in some fashion ~20 % of the time, with total
core power reductions up to 40 % (``amazon``).  Browsing workloads are
scalar (no/rare SIMD), alternate bursty layout/JS phases with idle-ish
scrolling phases, and swing between small DOM-resident working sets and
large streaming asset decodes — that is what these profiles encode.
``msn`` reproduces Fig. 2's alternation between windows where the large
tournament BPU matters and windows where it does not.
"""

from repro.workloads.generator import MemoryBehavior
from repro.workloads.mixes import (
    GLOBAL_HEAVY,
    IRREGULAR,
    LOCAL_HEAVY,
    NOISY,
    PREDICTABLE,
)
from repro.workloads.profiles import BenchmarkProfile, PhaseDecl, RegionSpec

SUITE = "MobileBench"


def _p(name, region, memory, blocks=384000):
    return PhaseDecl(name=name, region=region, memory=memory, blocks=blocks)


AMAZON = BenchmarkProfile(
    name="amazon",
    suite=SUITE,
    description="Product-page browsing: long predictable scroll/paint phases "
    "with small working sets — the showcase app (up to 40 % power saved).",
    phases=(
        _p(
            "scroll",
            RegionSpec(n_blocks=32, branch_mix=PREDICTABLE, bias=0.98),
            MemoryBehavior(working_set_kb=24, pattern="loop"),
            blocks=528000,
        ),
        _p(
            "layout",
            RegionSpec(n_blocks=48, branch_mix=LOCAL_HEAVY),
            MemoryBehavior(working_set_kb=96, pattern="loop", random_frac=0.2),
            blocks=240000,
        ),
        _p(
            "image_decode",
            RegionSpec(n_blocks=32, branch_mix=PREDICTABLE, mem_frac=0.38),
            MemoryBehavior(working_set_kb=4096, pattern="stream"),
            blocks=192000,
        ),
    ),
    schedule=("scroll", "layout", "scroll", "image_decode"),
    seed=401,
)

BBC = BenchmarkProfile(
    name="bbc",
    suite=SUITE,
    description="News front page: text-layout heavy with pattern-local "
    "branches, modest working sets, occasional streaming asset loads.",
    phases=(
        _p(
            "text_layout",
            RegionSpec(n_blocks=48, branch_mix=LOCAL_HEAVY),
            MemoryBehavior(working_set_kb=160, pattern="loop", random_frac=0.15),
            blocks=432000,
        ),
        _p(
            "style_resolve",
            RegionSpec(n_blocks=40, branch_mix=IRREGULAR),
            MemoryBehavior(working_set_kb=700, pattern="random"),
            blocks=240000,
        ),
        _p(
            "asset_load",
            RegionSpec(n_blocks=24, branch_mix=PREDICTABLE, mem_frac=0.40),
            MemoryBehavior(working_set_kb=3072, pattern="stream"),
            blocks=192000,
        ),
    ),
    schedule=("text_layout", "style_resolve", "text_layout", "asset_load"),
    seed=402,
)

CNN = BenchmarkProfile(
    name="cnn",
    suite=SUITE,
    description="Media-heavy news site: JS-dispatch phases with global "
    "branch correlation interleaved with predictable paint loops.",
    phases=(
        _p(
            "js_dispatch",
            RegionSpec(n_blocks=56, branch_mix=GLOBAL_HEAVY),
            MemoryBehavior(working_set_kb=900, pattern="loop", random_frac=0.3),
            blocks=288000,
        ),
        _p(
            "paint",
            RegionSpec(n_blocks=32, branch_mix=PREDICTABLE, bias=0.975),
            MemoryBehavior(working_set_kb=20, pattern="loop"),
            blocks=432000,
        ),
        _p(
            "ad_iframe",
            RegionSpec(n_blocks=40, branch_mix=NOISY),
            MemoryBehavior(working_set_kb=128, pattern="random"),
            blocks=192000,
        ),
    ),
    schedule=("js_dispatch", "paint", "ad_iframe", "paint"),
    seed=403,
)

GOOGLE = BenchmarkProfile(
    name="google",
    suite=SUITE,
    description="Search and results: short bursts of irregular JS between "
    "long highly-predictable render loops over a small footprint.",
    phases=(
        _p(
            "render",
            RegionSpec(n_blocks=32, branch_mix=PREDICTABLE, bias=0.985),
            MemoryBehavior(working_set_kb=16, pattern="loop"),
            blocks=576000,
        ),
        _p(
            "query_js",
            RegionSpec(n_blocks=48, branch_mix=IRREGULAR, vector_style="sparse"),
            MemoryBehavior(working_set_kb=192, pattern="loop", random_frac=0.25),
            blocks=192000,
        ),
    ),
    schedule=("render", "query_js", "render"),
    seed=404,
)

MSN = BenchmarkProfile(
    name="msn",
    suite=SUITE,
    description="Portal page (Fig. 2): phases where the tournament BPU "
    "clearly beats the small local predictor alternate with phases where "
    "it provides no benefit at all.",
    phases=(
        _p(
            "widget_js",
            RegionSpec(n_blocks=56, branch_mix=GLOBAL_HEAVY),
            MemoryBehavior(working_set_kb=600, pattern="loop", random_frac=0.25),
            blocks=288000,
        ),
        _p(
            "scroll",
            RegionSpec(n_blocks=32, branch_mix=PREDICTABLE, bias=0.98),
            MemoryBehavior(working_set_kb=24, pattern="loop"),
            blocks=432000,
        ),
        _p(
            "feed_parse",
            RegionSpec(n_blocks=40, branch_mix=NOISY),
            MemoryBehavior(working_set_kb=96, pattern="random"),
            blocks=240000,
        ),
    ),
    schedule=("widget_js", "scroll", "feed_parse", "scroll"),
    seed=405,
)

PROFILES = (AMAZON, BBC, CNN, GOOGLE, MSN)
