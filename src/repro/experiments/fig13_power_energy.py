"""Figure 13: total core power and energy reduction under PowerChop.

Paper result: total core power falls 10 % for SPEC-INT, 6 % for SPEC-FP,
8 % for PARSEC and 19 % for MobileBench; 13/29 apps exceed 10 % power
reduction with peaks near 40 % (lbm, milc, amazon).  Energy reductions are
slightly smaller than power reductions (PowerChop permits ~2 % slowdown),
averaging 9 % with peaks of 37 %.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import mean, suite_means
from repro.experiments.common import ExperimentResult, run_cached
from repro.sim.results import energy_reduction, power_reduction
from repro.sim.simulator import GatingMode
from repro.workloads.suites import ALL_BENCHMARKS


def run(benchmarks: List[str] | None = None) -> ExperimentResult:
    names = benchmarks or [p.name for p in ALL_BENCHMARKS]
    rows = []
    records = []
    for name in names:
        full, _ = run_cached(name, GatingMode.FULL)
        chopped, _ = run_cached(name, GatingMode.POWERCHOP)
        power_red = power_reduction(full, chopped)
        energy_red = energy_reduction(full, chopped)
        records.append((full.suite, power_red, energy_red))
        rows.append((name, full.suite, f"{power_red:.2%}", f"{energy_red:.2%}"))
    power_by_suite = suite_means(records, lambda r: r[0], lambda r: r[1])
    summary = {
        "mean_power_reduction": mean(r[1] for r in records),
        "mean_energy_reduction": mean(r[2] for r in records),
        "apps_over_10pct_power": float(sum(1 for r in records if r[1] > 0.10)),
        "max_power_reduction": max(r[1] for r in records),
    }
    summary.update({f"power_{k}": v for k, v in power_by_suite.items()})
    return ExperimentResult(
        experiment_id="fig13",
        title="Total core power and energy reduction (PowerChop vs full power)",
        headers=("benchmark", "suite", "power_reduction", "energy_reduction"),
        rows=rows,
        summary=summary,
        notes=[
            "Paper: power -10% SPEC-INT, -6% SPEC-FP, -8% PARSEC, -19% "
            "MobileBench; energy -9% average, up to -37%.",
        ],
    )
