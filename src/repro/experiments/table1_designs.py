"""Table I: the two architectural design points used in the evaluation."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.uarch.config import MOBILE, SERVER, DesignPoint


def _describe(design: DesignPoint) -> dict:
    one, half, full = design.mlc_way_states
    return {
        "design": design.name,
        "mlc": f"{design.mlc_kb:.0f}KB {design.mlc_assoc}-way "
        f"({design.mlc_area_frac:.0%} of core)",
        "mlc_gated": f"{design.mlc_kb * half / full:.0f}KB {half}-way or "
        f"{design.mlc_kb * one / full:.0f}KB {one}-way",
        "vpu": f"{design.vpu_width}-wide SIMD ({design.vpu_area_frac:.0%} of core)",
        "bpu": f"loc/glob tourney, {design.bpu.large_btb_entries // 1024}K-ent BTB, "
        f"{design.bpu.large_chooser_entries // 1024}K-ent chooser "
        f"({design.bpu_area_frac:.0%} of core)",
        "bpu_gated": f"local only, {design.bpu.small_btb_entries}-entry BTB",
        "switch": f"MLC {design.mlc_switch_cycles}c, VPU {design.vpu_switch_cycles}c "
        f"(+{design.vpu_save_restore_cycles}c save/restore), "
        f"BPU {design.bpu_switch_cycles}c",
    }


def run() -> ExperimentResult:
    server = _describe(SERVER)
    mobile = _describe(MOBILE)
    rows = [(key, server[key], mobile[key]) for key in server]
    return ExperimentResult(
        experiment_id="table1",
        title="Architectural design points (paper Table I)",
        headers=("field", "server (Nehalem-class)", "mobile (Cortex-A9-class)"),
        rows=rows,
        notes=[
            "Area fractions, gated configurations and switch overheads follow"
            " Table I; timing scalars are representative 32nm values.",
        ],
    )
