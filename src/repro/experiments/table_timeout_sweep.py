"""Timeout-period sweep for the HW-only baseline (paper §V-E).

The paper sweeps timeout periods from 100 to 100 K cycles and selects
20 K cycles: the period that saves the most power while staying under a 5 %
worst-case slowdown (comparable to PowerChop's own degradation budget).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.metrics import mean
from repro.experiments.common import ExperimentResult, run_cached
from repro.sim.results import slowdown
from repro.sim.simulator import GatingMode

#: Apps spanning the behaviour classes: no vector, sparse vector, dense.
_DEFAULT_APPS = ("hmmer", "namd", "h264ref", "milc", "gobmk")
_DEFAULT_PERIODS = (100.0, 1_000.0, 5_000.0, 20_000.0, 100_000.0)
_FRACTION = 0.5


def run(
    benchmarks: Sequence[str] = _DEFAULT_APPS,
    periods: Sequence[float] = _DEFAULT_PERIODS,
) -> ExperimentResult:
    rows = []
    per_period: Dict[float, Dict[str, List[float]]] = {}
    for period in periods:
        gated: List[float] = []
        slowdowns: List[float] = []
        for name in benchmarks:
            full, _ = run_cached(name, GatingMode.FULL, fraction=_FRACTION)
            timed, _ = run_cached(
                name, GatingMode.TIMEOUT, timeout_cycles=period, fraction=_FRACTION
            )
            gated.append(timed.energy.vpu_gated_frac)
            slowdowns.append(slowdown(full, timed))
        per_period[period] = {"gated": gated, "slowdowns": slowdowns}
        rows.append(
            (
                f"{period:g}",
                f"{mean(gated):.1%}",
                f"{mean(slowdowns):+.2%}",
                f"{max(slowdowns):+.2%}",
            )
        )
    chosen = per_period.get(20_000.0)
    summary = {}
    if chosen:
        summary = {
            "gated_at_20k": mean(chosen["gated"]),
            "worst_slowdown_at_20k": max(chosen["slowdowns"]),
        }
    return ExperimentResult(
        experiment_id="table_timeout_sweep",
        title="VPU timeout-period sweep (HW-only baseline, paper §V-E)",
        headers=("timeout_cycles", "mean_vpu_gated", "mean_slowdown", "worst_slowdown"),
        rows=rows,
        summary=summary,
        notes=[
            "Paper: 20K cycles chosen — most power saved within a 5% "
            "worst-case slowdown.",
        ],
    )
