"""Figure 15: vector-operation prevalence among 1000-instruction shards.

The paper bins execution shards by how many vector operations they contain
(V = 0, 0 < V <= 4, V > 4): many applications have phases whose shards
carry a *small but nonzero* number of vector ops — exactly the pattern a
timeout cannot gate (the unit never goes idle long enough) but PowerChop
can (the BT emulates the stragglers and keeps the VPU off).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import ExperimentResult
from repro.workloads.profiles import build_workload
from repro.workloads.suites import ALL_BENCHMARKS, get_profile


def shard_histogram(
    benchmark: str,
    shard_instructions: int = 1000,
    max_instructions: int = 1_000_000,
) -> Dict[str, float]:
    """Fractions of shards with V=0, 0<V<=4, V>4 vector operations."""
    workload = build_workload(get_profile(benchmark))
    zero = low = high = 0
    shard_instr = 0
    shard_vec = 0
    for block_exec in workload.trace(max_instructions):
        block = block_exec.block
        shard_instr += block.n_instr
        shard_vec += block.n_vec
        if shard_instr >= shard_instructions:
            if shard_vec == 0:
                zero += 1
            elif shard_vec <= 4:
                low += 1
            else:
                high += 1
            shard_instr = 0
            shard_vec = 0
    total = max(zero + low + high, 1)
    return {"zero": zero / total, "low": low / total, "high": high / total}


def run(benchmarks: List[str] | None = None) -> ExperimentResult:
    names = benchmarks or [p.name for p in ALL_BENCHMARKS]
    rows = []
    sparse_apps = 0
    for name in names:
        hist = shard_histogram(name)
        if hist["low"] > 0.10:
            sparse_apps += 1
        rows.append(
            (
                name,
                f"{hist['zero']:.1%}",
                f"{hist['low']:.1%}",
                f"{hist['high']:.1%}",
            )
        )
    return ExperimentResult(
        experiment_id="fig15",
        title="Vector-op prevalence per 1000-instruction shard (V=0 / 0<V<=4 / V>4)",
        headers=("benchmark", "V=0", "0<V<=4", "V>4"),
        rows=rows,
        summary={"apps_with_sparse_shards": float(sparse_apps)},
        notes=[
            "Paper shape: several applications have many shards with a small"
            " nonzero vector count — the timeout-defeating pattern.",
        ],
    )
