"""Software-side overhead of PowerChop (paper §IV-C3).

Paper result: across SPEC CPU2006 an average of 0.017 % of translations
cause PVT misses, costing less than 0.5 % additional performance over the
conventional BT.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import mean
from repro.experiments.common import ExperimentResult, run_cached
from repro.sim.simulator import GatingMode
from repro.workloads.suites import SPEC_FP, SPEC_INT


def run(benchmarks: List[str] | None = None) -> ExperimentResult:
    names = benchmarks or [p.name for p in SPEC_INT + SPEC_FP]
    rows = []
    miss_rates = []
    cde_fracs = []
    for name in names:
        result, _ = run_cached(name, GatingMode.POWERCHOP)
        miss_rate = result.pvt_miss_rate_per_translation
        cde_cycles = result.extra.get("nucleus_cycles", 0.0)
        cde_frac = cde_cycles / result.cycles if result.cycles else 0.0
        miss_rates.append(miss_rate)
        cde_fracs.append(cde_frac)
        rows.append(
            (
                name,
                result.pvt_misses,
                result.translation_executions,
                f"{miss_rate:.4%}",
                f"{cde_frac:.3%}",
            )
        )
    return ExperimentResult(
        experiment_id="table_sw_cost",
        title="PVT miss rate and CDE overhead on SPEC (paper §IV-C3)",
        headers=("benchmark", "pvt_misses", "translations", "miss_rate", "cde_cycles"),
        rows=rows,
        summary={
            "mean_miss_rate": mean(miss_rates) if miss_rates else 0.0,
            "mean_cde_overhead": mean(cde_fracs) if cde_fracs else 0.0,
        },
        notes=[
            "Paper: 0.017% of translations miss the PVT; < 0.5% performance"
            " overhead.  Our compressed phases raise the miss rate "
            "proportionally (phases recur ~100x less often).",
        ],
    )
