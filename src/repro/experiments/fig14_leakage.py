"""Figure 14: core leakage power reduction under PowerChop.

Paper result: leakage falls 23 % for SPEC-INT, 10 % for SPEC-FP, 12 % for
PARSEC and 32 % for MobileBench, with per-app peaks up to 52 % — at a
performance cost of just 2.2 %.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import mean, suite_means
from repro.experiments.common import ExperimentResult, run_cached
from repro.sim.results import leakage_reduction
from repro.sim.simulator import GatingMode
from repro.workloads.suites import ALL_BENCHMARKS


def run(benchmarks: List[str] | None = None) -> ExperimentResult:
    names = benchmarks or [p.name for p in ALL_BENCHMARKS]
    rows = []
    records = []
    for name in names:
        full, _ = run_cached(name, GatingMode.FULL)
        chopped, _ = run_cached(name, GatingMode.POWERCHOP)
        leak_red = leakage_reduction(full, chopped)
        records.append((full.suite, leak_red))
        rows.append((name, full.suite, f"{leak_red:.2%}"))
    by_suite = suite_means(records, lambda r: r[0], lambda r: r[1])
    summary = {
        "mean_leakage_reduction": mean(r[1] for r in records),
        "max_leakage_reduction": max(r[1] for r in records),
        "apps_over_20pct": float(sum(1 for r in records if r[1] > 0.20)),
    }
    summary.update({f"leakage_{k}": v for k, v in by_suite.items()})
    return ExperimentResult(
        experiment_id="fig14",
        title="Leakage power reduction (PowerChop vs full power)",
        headers=("benchmark", "suite", "leakage_reduction"),
        rows=rows,
        summary=summary,
        notes=[
            "Paper: -23% SPEC-INT, -10% SPEC-FP, -12% PARSEC, -32% "
            "MobileBench; up to -52% per app.",
        ],
    )
