"""Figure 3: 128 KB 1-way vs 1024 KB 8-way MLC IPC over time (GemsFDTD).

The paper shows phases where the full MLC provides substantial IPC benefit
(working set fits the 8-way MLC but not 1 way) alternating with phases
where it does not (working set streams past any MLC).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.common import ExperimentResult, timeseries_ipc
from repro.sim.simulator import HybridSimulator
from repro.uarch.config import SERVER
from repro.workloads.suites import get_profile


def ipc_series(
    benchmark: str = "gems",
    max_instructions: int = 6_000_000,
    sample_instructions: int = 100_000,
) -> Tuple[List[float], List[float]]:
    """Returns (1-way MLC IPC series, 8-way MLC IPC series)."""
    profile = get_profile(benchmark)

    def one_way(simulator: HybridSimulator) -> None:
        simulator.core.apply_mlc_state(1)

    def all_ways(simulator: HybridSimulator) -> None:
        pass

    small = timeseries_ipc(
        SERVER, profile, one_way, max_instructions, sample_instructions
    )
    large = timeseries_ipc(
        SERVER, profile, all_ways, max_instructions, sample_instructions
    )
    return small, large


def run(max_instructions: int = 6_000_000) -> ExperimentResult:
    small, large = ipc_series(max_instructions=max_instructions)
    n = min(len(small), len(large))
    small, large = small[:n], large[:n]
    gains = [(l - s) / s if s else 0.0 for s, l in zip(small, large)]
    helped = sum(1 for g in gains if g > 0.10)
    flat = sum(1 for g in gains if abs(g) <= 0.03)
    rows = [
        (f"t{i:03d}", round(small[i], 3), round(large[i], 3), f"{gains[i]:+.1%}")
        for i in range(0, n, max(1, n // 24))
    ]
    return ExperimentResult(
        experiment_id="fig03",
        title="128KB 1-way vs 1024KB 8-way MLC IPC over time (gems, server core)",
        headers=("sample", "ipc_1way", "ipc_8way", "gain"),
        rows=rows,
        summary={
            "samples": n,
            "mean_gain": sum(gains) / n if n else 0.0,
            "helped_frac": helped / n if n else 0.0,
            "flat_frac": flat / n if n else 0.0,
        },
        notes=[
            "Paper shape: the full MLC helps only when the phase working set"
            " fits it; streaming phases see little benefit.",
        ],
    )
