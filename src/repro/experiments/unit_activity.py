"""Figures 9 and 10: per-unit gating activity under PowerChop.

Per the paper's §V-C methodology, each unit is evaluated *in isolation*:
PowerChop manages one unit while the other two remain gated on throughout
execution.  The figures report the fraction of cycles each unit spends in a
gated (non-full-power) state, per benchmark, for the mobile (Fig. 9) and
server (Fig. 10) designs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import mean
from repro.experiments.common import ExperimentResult, run_cached
from repro.sim.simulator import GatingMode
from repro.uarch.config import design_for_suite
from repro.workloads.suites import mobile_benchmarks, server_benchmarks

#: Per-unit runs use a reduced budget: three extra simulations per app.
_FRACTION = 0.5


def unit_gated_fractions(benchmark: str) -> Dict[str, float]:
    """Fraction of cycles each unit is gated, one managed unit at a time."""
    design = design_for_suite(
        next(
            p.suite
            for p in (server_benchmarks() + mobile_benchmarks())
            if p.name == benchmark
        )
    )
    fractions: Dict[str, float] = {}
    for unit in ("vpu", "bpu", "mlc"):
        result, _log = run_cached(
            benchmark, GatingMode.POWERCHOP, managed_units=(unit,), fraction=_FRACTION
        )
        energy = result.energy
        if unit == "vpu":
            fractions[unit] = energy.vpu_gated_frac
        elif unit == "bpu":
            fractions[unit] = energy.bpu_gated_frac
        else:
            fractions[unit] = energy.mlc_gated_frac(design.mlc_assoc)
    return fractions


def _run(profiles, experiment_id: str, title: str, paper_note: str) -> ExperimentResult:
    rows = []
    per_unit: Dict[str, List[float]] = {"vpu": [], "bpu": [], "mlc": []}
    for profile in profiles:
        fractions = unit_gated_fractions(profile.name)
        rows.append(
            (
                profile.name,
                f"{fractions['vpu']:.1%}",
                f"{fractions['bpu']:.1%}",
                f"{fractions['mlc']:.1%}",
            )
        )
        for unit, value in fractions.items():
            per_unit[unit].append(value)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=("benchmark", "vpu_gated", "bpu_gated", "mlc_gated"),
        rows=rows,
        summary={f"mean_{u}_gated": mean(v) for u, v in per_unit.items() if v},
        notes=[paper_note],
    )


def run_mobile() -> ExperimentResult:
    return _run(
        mobile_benchmarks(),
        "fig09",
        "Unit activity, mobile core (fraction of cycles gated; per-unit isolation)",
        "Paper: VPU gated ~90%+ on all mobile apps; BPU ~40% average; MLC "
        "gated in some fashion ~20% of the time.",
    )


def run_server() -> ExperimentResult:
    return _run(
        server_benchmarks(),
        "fig10",
        "Unit activity, server core (fraction of cycles gated; per-unit isolation)",
        "Paper: VPU gated ~90% for most SPEC-INT; MLC 1-way >40% of cycles "
        "for gems/milc/gcc/libquantum/streamcluster; BPU usually needed, "
        "with exceptions like lbm and hmmer.",
    )
