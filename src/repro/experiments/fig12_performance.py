"""Figure 12: performance of full-power vs PowerChop vs minimal-power.

Paper result: the minimally-powered configuration loses ~84 % performance
on average, while PowerChop loses only ~2.2 % — it recovers nearly all the
performance of an always-fully-powered core.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import mean, suite_means
from repro.experiments.common import ExperimentResult, run_cached
from repro.sim.results import slowdown
from repro.sim.simulator import GatingMode
from repro.workloads.suites import ALL_BENCHMARKS


def run(benchmarks: List[str] | None = None) -> ExperimentResult:
    names = benchmarks or [p.name for p in ALL_BENCHMARKS]
    rows = []
    records = []
    for name in names:
        full, _ = run_cached(name, GatingMode.FULL)
        chopped, _ = run_cached(name, GatingMode.POWERCHOP)
        minimal, _ = run_cached(name, GatingMode.MINIMAL)
        pc_slow = slowdown(full, chopped)
        min_slow = slowdown(full, minimal)
        records.append((full.suite, pc_slow, min_slow))
        rows.append(
            (
                name,
                full.suite,
                round(full.ipc, 3),
                f"{pc_slow:+.2%}",
                f"{min_slow:+.2%}",
            )
        )
    pc_by_suite = suite_means(records, lambda r: r[0], lambda r: r[1])
    summary = {
        "mean_powerchop_slowdown": mean(r[1] for r in records),
        "mean_minimal_slowdown": mean(r[2] for r in records),
    }
    summary.update({f"pc_slowdown_{k}": v for k, v in pc_by_suite.items()})
    return ExperimentResult(
        experiment_id="fig12",
        title="Performance: PowerChop vs full-power and minimal-power",
        headers=("benchmark", "suite", "ipc_full", "powerchop", "minimal"),
        rows=rows,
        summary=summary,
        notes=[
            "Paper: minimal-power loses ~84% on average; PowerChop ~2.2%.",
            "Slowdowns here are inflated by compressed phase durations "
            "(see EXPERIMENTS.md, fidelity notes).",
        ],
    )
