"""The abstract's headline numbers.

"PowerChop significantly decreases power consumption, reducing the power of
a hybrid server core by 9% on average (up to 33%) and a hybrid mobile core
by 19% (up to 40%) while introducing just 2% slowdown."
"""

from __future__ import annotations

from repro.analysis.metrics import mean
from repro.experiments.common import ExperimentResult, run_cached
from repro.sim.results import power_reduction, slowdown
from repro.sim.simulator import GatingMode
from repro.workloads.suites import mobile_benchmarks, server_benchmarks


def run() -> ExperimentResult:
    rows = []
    summary = {}
    slowdowns = []
    for label, profiles in (
        ("server", server_benchmarks()),
        ("mobile", mobile_benchmarks()),
    ):
        reductions = []
        for profile in profiles:
            full, _ = run_cached(profile.name, GatingMode.FULL)
            chopped, _ = run_cached(profile.name, GatingMode.POWERCHOP)
            reductions.append(power_reduction(full, chopped))
            slowdowns.append(slowdown(full, chopped))
        rows.append(
            (
                label,
                len(profiles),
                f"{mean(reductions):.1%}",
                f"{max(reductions):.1%}",
            )
        )
        summary[f"{label}_mean_power_reduction"] = mean(reductions)
        summary[f"{label}_max_power_reduction"] = max(reductions)
    summary["mean_slowdown"] = mean(slowdowns)
    return ExperimentResult(
        experiment_id="headline",
        title="Abstract headline: core power reduction and slowdown",
        headers=("core", "apps", "mean_power_reduction", "max_power_reduction"),
        rows=rows,
        summary=summary,
        notes=[
            "Paper: server -9% avg (to -33%), mobile -19% avg (to -40%), "
            "~2% slowdown.",
        ],
    )
