"""Experiment harness: one module per table/figure in the paper's evaluation.

Every module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.common.ExperimentResult` whose ``render()``
produces the table or ASCII-bar figure.  The benchmark suite under
``benchmarks/`` drives these, and ``scripts/generate_experiments_md.py``
collects them all into EXPERIMENTS.md.

Instruction budgets scale with the ``REPRO_SCALE`` environment variable
(default 1.0); CI-style smoke runs can set e.g. ``REPRO_SCALE=0.1``.
"""

from repro.experiments.common import (
    ExperimentResult,
    instructions_for,
    run_cached,
    scale,
)

#: The paper's claim for each experiment id — used by EXPERIMENTS.md
#: generation (scripts/generate_experiments_md.py and the benchmark
#: suite's session report).
PAPER_CLAIMS = {
    "headline": "server core power -9% avg (to -33%); mobile -19% avg "
                "(to -40%); ~2% slowdown",
    "fig01": "gobmk vector intensity varies across phases, with long "
             "low-but-nonzero stretches",
    "fig02": "large BPU improves msn IPC overall but not in many phases",
    "fig03": "full MLC helps gems only in MLC-resident phases",
    "fig08": "phase detection: mean 2.8% Manhattan distance "
             "(97.8% identical), max 6.8%",
    "fig09": "mobile: VPU gated ~90%+, BPU ~40% avg, MLC ~20%",
    "fig10": "server: VPU ~90% SPEC-INT; MLC 1-way >40% for streaming "
             "apps; BPU usually needed",
    "fig11": "switches/Mcycle: BPU<50, VPU<10, MLC<5",
    "fig12": "minimal-power loses ~84%; PowerChop ~2.2%",
    "fig13": "power: -10/-6/-8/-19% per suite; energy -9% avg, to -37%",
    "fig14": "leakage: -23/-10/-12/-32% per suite; to -52%",
    "fig15": "many shards carry 0<V<=4 vector ops",
    "fig16": "PowerChop gates the VPU at least as much as a 20K timeout; "
             "huge wins on namd/perlbench/h264",
    "table1": "architectural design points",
    "table_hwcost": "HTB 1KB ~0.027W ~0.008mm2; PVT 264B",
    "table_sw_cost": "0.017% of translations miss the PVT; <0.5% overhead",
    "table_sensitivity": "window=1000 / N=4 chosen by sensitivity analysis",
    "table_timeout_sweep": "20K-cycle timeout best within 5% worst-case "
                           "slowdown",
    "table_thresholds": "ablation: §V-A's aggressive energy-minimising "
                        "thresholds trade slowdown for power",
    "table_drowsy": "related work §VI: drowsy MLC saves leakage but is "
                    "bounded by its retention floor and cache-only scope",
}

__all__ = [
    "ExperimentResult",
    "run_cached",
    "instructions_for",
    "scale",
    "PAPER_CLAIMS",
]
