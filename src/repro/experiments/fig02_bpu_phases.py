"""Figure 2: small (local) vs large (tournament) BPU IPC over time (msn).

The paper shows the mobile browser workload alternating between phases
where the large tournament predictor clearly improves IPC and phases where
it provides no benefit — the opportunity PowerChop's BPU gating exploits.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.common import ExperimentResult, timeseries_ipc
from repro.sim.simulator import HybridSimulator
from repro.uarch.config import MOBILE
from repro.workloads.suites import get_profile


def ipc_series(
    benchmark: str = "msn",
    max_instructions: int = 6_000_000,
    sample_instructions: int = 100_000,
) -> Tuple[List[float], List[float]]:
    """Returns (small-BPU IPC series, large-BPU IPC series)."""
    profile = get_profile(benchmark)

    def force_small(simulator: HybridSimulator) -> None:
        simulator.core.apply_bpu_state(False)
        # Recreate the accountant snapshot consistently (not used here).

    def keep_large(simulator: HybridSimulator) -> None:
        pass

    small = timeseries_ipc(
        MOBILE, profile, force_small, max_instructions, sample_instructions
    )
    large = timeseries_ipc(
        MOBILE, profile, keep_large, max_instructions, sample_instructions
    )
    return small, large


def run(max_instructions: int = 6_000_000) -> ExperimentResult:
    small, large = ipc_series(max_instructions=max_instructions)
    n = min(len(small), len(large))
    small, large = small[:n], large[:n]
    gains = [(l - s) / s if s else 0.0 for s, l in zip(small, large)]
    helped = sum(1 for g in gains if g > 0.03)
    flat = sum(1 for g in gains if abs(g) <= 0.02)
    rows = [
        (f"t{i:03d}", round(small[i], 3), round(large[i], 3), f"{gains[i]:+.1%}")
        for i in range(0, n, max(1, n // 24))
    ]
    return ExperimentResult(
        experiment_id="fig02",
        title="Small vs large BPU IPC over time (msn, mobile core)",
        headers=("sample", "ipc_small", "ipc_large", "gain"),
        rows=rows,
        summary={
            "samples": n,
            "mean_gain": sum(gains) / n if n else 0.0,
            "helped_frac": helped / n if n else 0.0,
            "flat_frac": flat / n if n else 0.0,
        },
        notes=[
            "Paper shape: the large BPU improves IPC overall, but its benefit"
            " is negligible during many phases of execution.",
        ],
    )
