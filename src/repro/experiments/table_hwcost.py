"""Hardware cost of PowerChop's added structures (paper §IV-B4).

Paper numbers (CACTI, 32 nm): the 16-entry PVT totals 264 bytes; the
128-entry HTB is 1 KB, needing ~0.027 W and ~0.008 mm² — negligible against
any contemporary core's budget.
"""

from __future__ import annotations

from repro.core.htb import HotTranslationBuffer
from repro.core.pvt import PolicyVectorTable
from repro.experiments.common import ExperimentResult
from repro.power.cacti import htb_cost, pvt_cost


def run() -> ExperimentResult:
    htb = HotTranslationBuffer()
    pvt = PolicyVectorTable()
    htb_est = htb_cost()
    pvt_est = pvt_cost()
    rows = [
        (
            "HTB",
            f"{htb.n_entries} entries",
            f"{htb.storage_bytes} B",
            f"{htb_est.area_mm2:.4f} mm2",
            f"{htb_est.total_power_w:.4f} W",
        ),
        (
            "PVT",
            f"{pvt.n_entries} entries",
            f"{pvt.storage_bytes:.0f} B",
            f"{pvt_est.area_mm2:.4f} mm2",
            f"{pvt_est.total_power_w:.4f} W",
        ),
    ]
    return ExperimentResult(
        experiment_id="table_hwcost",
        title="PowerChop hardware structure costs (CACTI-lite, 32nm)",
        headers=("structure", "entries", "storage", "area", "power"),
        rows=rows,
        summary={
            "htb_power_w": htb_est.total_power_w,
            "htb_area_mm2": htb_est.area_mm2,
            "pvt_storage_bytes": float(pvt.storage_bytes),
        },
        notes=["Paper: HTB 1KB, ~0.027W, ~0.008mm2; PVT 264B."],
    )
