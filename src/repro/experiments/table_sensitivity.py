"""Sensitivity of PowerChop to window size and signature length (§IV-B1).

The paper reports choosing a signature length of 4 and a window of 1000
translations after a sensitivity analysis: longer signatures admit
insignificant translations, shorter ones merge distinct phases; larger
windows miss short phases, smaller ones chase transients.  This ablation
regenerates that analysis on a representative benchmark.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, instructions_for
from repro.sim.sweep import sweep_signature_lengths, sweep_window_sizes
from repro.uarch.config import SERVER
from repro.workloads.suites import get_profile


def run(
    benchmark: str = "hmmer",
    window_sizes=(250, 500, 1000, 2000, 4000),
    signature_lengths=(1, 2, 4, 8, 16),
) -> ExperimentResult:
    profile = get_profile(benchmark)
    budget = instructions_for(SERVER, fraction=0.5)
    window_records = sweep_window_sizes(
        SERVER, profile, window_sizes, max_instructions=budget
    )
    signature_records = sweep_signature_lengths(
        SERVER, profile, signature_lengths, max_instructions=budget
    )
    rows = []
    for record in window_records + signature_records:
        rows.append(
            (
                record["label"],
                f"{record['slowdown']:+.2%}",
                f"{record['power_reduction']:.2%}",
                f"{record['vpu_gated_frac']:.1%}",
                f"{record['bpu_gated_frac']:.1%}",
            )
        )
    default_window = next(
        r for r in window_records if r["label"] == "window=1000"
    )
    return ExperimentResult(
        experiment_id="table_sensitivity",
        title=f"Window-size and signature-length sensitivity ({benchmark})",
        headers=("config", "slowdown", "power_reduction", "vpu_gated", "bpu_gated"),
        rows=rows,
        summary={
            "default_window_power_reduction": default_window["power_reduction"],
            "default_window_slowdown": default_window["slowdown"],
        },
        notes=[
            "Paper: signature length 4 with a 1000-translation window proves"
            " effective across a wide range of workloads.",
        ],
    )
