"""Figure 11: frequency of unit gating-state changes under PowerChop.

Paper result: on average the BPU policy changes fewer than 50 times per
million cycles, the VPU fewer than 10, and the MLC fewer than 5 — gating
is phase-grained, so switch overheads stay amortised.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import mean
from repro.experiments.common import ExperimentResult, run_cached
from repro.sim.simulator import GatingMode
from repro.workloads.suites import ALL_BENCHMARKS


def run(benchmarks: List[str] | None = None) -> ExperimentResult:
    names = benchmarks or [p.name for p in ALL_BENCHMARKS]
    rows = []
    per_unit: Dict[str, List[float]] = {"vpu": [], "bpu": [], "mlc": []}
    for name in names:
        result, _log = run_cached(name, GatingMode.POWERCHOP)
        rates = {u: result.switches_per_million_cycles(u) for u in per_unit}
        rows.append(
            (name, f"{rates['vpu']:.2f}", f"{rates['bpu']:.2f}", f"{rates['mlc']:.2f}")
        )
        for unit, value in rates.items():
            per_unit[unit].append(value)
    return ExperimentResult(
        experiment_id="fig11",
        title="Gating state changes per million cycles (multi-unit PowerChop)",
        headers=("benchmark", "vpu/Mcyc", "bpu/Mcyc", "mlc/Mcyc"),
        rows=rows,
        summary={f"mean_{u}": mean(v) for u, v in per_unit.items() if v},
        notes=[
            "Paper: BPU < 50, VPU < 10, MLC < 5 switches per million cycles"
            " on average.",
        ],
    )
