"""Related-work comparison: drowsy MLC vs PowerChop way-gating (§VI).

The paper's related work cites Flautner et al.'s drowsy cache as the
per-line leakage alternative for caches.  This experiment quantifies the
comparison on our substrate: a periodically-drowsed MLC retains state (no
rewarm, tiny wake penalty) and cuts *MLC leakage only* toward the drowsy
floor, while PowerChop's way gating reaches the deeper power-gated floor
(5 % vs 25 % retention leakage), additionally saves MLC *dynamic* energy in
gated states, and extends to non-cache units (VPU, BPU) a drowsy scheme
cannot cover.

The drowsy model is driven by the workload's MLC-demand stream (addresses
filtered through a private L1 of the same geometry) with time approximated
at one instruction per cycle — adequate for a leakage-residency bound, as
noted in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, instructions_for, run_cached
from repro.sim.simulator import GatingMode
from repro.uarch.cache.cache import SetAssocCache
from repro.uarch.cache.drowsy import DrowsyMLCController, DrowsySetAssocCache
from repro.uarch.config import design_for_suite
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile

_DEFAULT_APPS = ("gems", "libquantum", "hmmer", "amazon")


def drowsy_mlc_stats(
    benchmark: str, interval_cycles: float = 4000.0, fraction: float = 0.25
):
    """Replay a workload's MLC-demand stream through a drowsy MLC."""
    profile = get_profile(benchmark)
    design = design_for_suite(profile.suite)
    budget = instructions_for(design, fraction)
    workload = build_workload(profile)
    l1 = SetAssocCache(design.l1_kb, design.l1_assoc, design.line_size, "L1")
    mlc = DrowsySetAssocCache(
        design.mlc_kb, design.mlc_assoc, design.line_size, "drowsyMLC"
    )
    controller = DrowsyMLCController(mlc, interval_cycles)
    cycles = 0.0
    for block_exec in workload.trace(budget):
        cycles += block_exec.block.n_instr  # ~1 IPC time approximation
        controller.tick(cycles)
        addresses = block_exec.addresses
        if addresses:
            loads = block_exec.block.n_loads
            for i, addr in enumerate(addresses):
                if not l1.access(addr, i >= loads):
                    mlc.access_timed(addr, cycles, i >= loads)
    leak_factor = controller.mlc_leakage_factor(cycles)
    # Overhead relative to realistic cycle counts: rescale the 1-IPC time
    # approximation by the benchmark's measured full-power CPI.
    full, _ = run_cached(benchmark, GatingMode.FULL)
    cpi = full.cycles / full.instructions if full.instructions else 1.0
    wake_overhead = (
        controller.wake_stall_cycles() / (cycles * cpi) if cycles else 0.0
    )
    return leak_factor, wake_overhead, controller.drowse_events


def powerchop_mlc_leak_factor(benchmark: str) -> float:
    """Effective MLC leakage multiplier under PowerChop way-gating."""
    profile = get_profile(benchmark)
    design = design_for_suite(profile.suite)
    result, _ = run_cached(benchmark, GatingMode.POWERCHOP)
    gated = design.gated_leakage_frac
    factor = 0.0
    for ways, residency in result.energy.mlc_way_residency.items():
        active = ways / design.mlc_assoc
        factor += residency * (active + (1.0 - active) * gated)
    return factor


def run(benchmarks: Sequence[str] = _DEFAULT_APPS) -> ExperimentResult:
    rows = []
    chop_better = 0
    for name in benchmarks:
        drowsy_factor, wake_overhead, events = drowsy_mlc_stats(name)
        chop_factor = powerchop_mlc_leak_factor(name)
        if chop_factor < drowsy_factor:
            chop_better += 1
        rows.append(
            (
                name,
                f"{1 - drowsy_factor:.1%}",
                f"{wake_overhead:.3%}",
                f"{1 - chop_factor:.1%}",
            )
        )
    return ExperimentResult(
        experiment_id="table_drowsy",
        title="MLC leakage reduction: drowsy cache vs PowerChop way gating",
        headers=(
            "benchmark",
            "drowsy_mlc_leak_saved",
            "drowsy_wake_overhead",
            "powerchop_mlc_leak_saved",
        ),
        rows=rows,
        summary={"apps_where_powerchop_saves_more": float(chop_better)},
        notes=[
            "Drowsy mode saves MLC leakage on every app (bounded by the 25% "
            "retention floor) but cannot save MLC dynamic energy and does "
            "not generalise to the VPU/BPU; PowerChop reaches the 5% "
            "power-gated floor on apps with non-critical MLC phases.",
        ],
    )
