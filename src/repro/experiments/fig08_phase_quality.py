"""Figure 8: code similarity between same-signature execution windows.

Paper result: across applications the mean Manhattan distance between
translation vectors of same-signature windows is 2.8 % (28/1000
translations) and never exceeds 6.8 % — i.e. 97.8 % of translations are
identical on average, validating the hottest-4 signature scheme.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import mean
from repro.analysis.phases import phase_quality
from repro.experiments.common import ExperimentResult, run_cached
from repro.sim.simulator import GatingMode
from repro.workloads.suites import ALL_BENCHMARKS


def run(benchmarks: List[str] | None = None) -> ExperimentResult:
    names = benchmarks or [p.name for p in ALL_BENCHMARKS]
    rows = []
    normalised: List[float] = []
    for name in names:
        _result, phase_log = run_cached(name, GatingMode.POWERCHOP)
        quality = phase_quality(phase_log)
        rows.append(
            (
                name,
                quality.windows,
                quality.recurring_signatures,
                f"{quality.mean_normalised:.2%}",
                f"{quality.identical_fraction:.2%}",
            )
        )
        normalised.append(quality.mean_normalised)
    return ExperimentResult(
        experiment_id="fig08",
        title="Phase identification quality (Manhattan distance, same-signature windows)",
        headers=("benchmark", "windows", "recurring_sigs", "mean_dist", "identical"),
        rows=rows,
        summary={
            "mean_distance_frac": mean(normalised) if normalised else 0.0,
            "max_distance_frac": max(normalised) if normalised else 0.0,
        },
        notes=[
            "Paper: mean 2.8% distance (97.8% of translations identical), max 6.8%.",
        ],
    )
