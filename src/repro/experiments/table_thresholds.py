"""Ablation: criticality-threshold policy presets (paper §V-A).

The paper chooses thresholds that "enable significant power draw reductions
while minimizing the performance impact" and notes more aggressive
energy-minimising policies are possible.  This ablation compares three
presets — conservative, default (the paper's operating point), aggressive —
across a behaviourally-diverse subset of benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.metrics import mean
from repro.core.config import PowerChopConfig
from repro.core.criticality import CriticalityThresholds
from repro.experiments.common import (
    ExperimentResult,
    instructions_for,
    run_cached,
)
from repro.sim.results import power_reduction, slowdown
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import design_for_suite
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile

_DEFAULT_APPS = ("hmmer", "gobmk", "soplex", "gems")

PRESETS = {
    "conservative": CriticalityThresholds.conservative(),
    "default": CriticalityThresholds(),
    "aggressive": CriticalityThresholds.aggressive(),
}


def _run_with_thresholds(
    benchmark: str, thresholds: CriticalityThresholds, fraction: float
):
    profile = get_profile(benchmark)
    design = design_for_suite(profile.suite)
    budget = instructions_for(design, fraction)
    config = PowerChopConfig(thresholds=thresholds)
    workload = build_workload(profile)
    simulator = HybridSimulator(
        design, workload, GatingMode.POWERCHOP, powerchop_config=config
    )
    return simulator.run(budget)


def run(
    benchmarks: Sequence[str] = _DEFAULT_APPS, fraction: float = 0.5
) -> ExperimentResult:
    rows = []
    per_preset: Dict[str, Dict[str, List[float]]] = {
        name: {"slowdown": [], "power": []} for name in PRESETS
    }
    for name in benchmarks:
        full, _ = run_cached(name, GatingMode.FULL, fraction=fraction)
        for preset_name, thresholds in PRESETS.items():
            managed = _run_with_thresholds(name, thresholds, fraction)
            slow = slowdown(full, managed)
            power = power_reduction(full, managed)
            per_preset[preset_name]["slowdown"].append(slow)
            per_preset[preset_name]["power"].append(power)
            rows.append((name, preset_name, f"{slow:+.2%}", f"{power:.2%}"))
    summary = {}
    for preset_name, metrics in per_preset.items():
        summary[f"{preset_name}_slowdown"] = mean(metrics["slowdown"])
        summary[f"{preset_name}_power_reduction"] = mean(metrics["power"])
    return ExperimentResult(
        experiment_id="table_thresholds",
        title="Criticality-threshold presets: performance vs power frontier",
        headers=("benchmark", "preset", "slowdown", "power_reduction"),
        rows=rows,
        summary=summary,
        notes=[
            "Paper §V-A: chosen thresholds minimise performance impact; "
            "higher thresholds trade slowdown for energy.",
        ],
    )
