"""Figure 1: vector-operation intensity over time for ``gobmk``.

The paper plots vector-op intensity across 200 K instructions of gobmk,
showing that VPU criticality varies sharply across execution — including
low-but-nonzero stretches that timeout-based gating cannot exploit.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile


def vector_intensity_series(
    benchmark: str = "gobmk",
    shard_instructions: int = 10_000,
    max_instructions: int = 2_000_000,
    seed: int | None = None,
) -> List[float]:
    """Fraction of instructions that are vector ops, per shard."""
    workload = build_workload(get_profile(benchmark), seed)
    series: List[float] = []
    shard_instr = 0
    shard_vec = 0
    for block_exec in workload.trace(max_instructions):
        block = block_exec.block
        shard_instr += block.n_instr
        shard_vec += block.n_vec
        if shard_instr >= shard_instructions:
            series.append(shard_vec / shard_instr)
            shard_instr = 0
            shard_vec = 0
    return series


def run(max_instructions: int = 2_000_000) -> ExperimentResult:
    series = vector_intensity_series(max_instructions=max_instructions)
    n = len(series)
    quiet = sum(1 for v in series if v < 0.01)
    busy = sum(1 for v in series if v >= 0.05)
    # Downsample the series into a compact bar figure.
    step = max(1, n // 40)
    labels = [f"t{i * step:04d}" for i in range(0, n // step)]
    values = [
        sum(series[i * step : (i + 1) * step]) / step for i in range(0, n // step)
    ]
    result = ExperimentResult(
        experiment_id="fig01",
        title="Vector operation intensity over gobmk execution",
        bars=(labels, values, " vec/instr"),
        summary={
            "shards": n,
            "quiet_frac": quiet / n if n else 0.0,
            "busy_frac": busy / n if n else 0.0,
            "peak_intensity": max(series) if series else 0.0,
        },
        notes=[
            "Paper shape: intensity varies across phases, with long low-but-"
            "nonzero stretches (the timeout-defeating pattern).",
        ],
    )
    return result
