"""Figure 16: VPU gating activity — PowerChop vs a 20K-cycle timeout.

Paper result: PowerChop keeps the VPU gated off at least as long as the
best timeout on every application, with dramatic wins on applications whose
sparse vector ops are spread uniformly through execution (namd, perlbench,
h264ref): the timeout never sees a long-enough idle period, while PowerChop
identifies the phase as non-critical and emulates the stragglers.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import mean
from repro.experiments.common import ExperimentResult, run_cached
from repro.sim.simulator import GatingMode
from repro.workloads.suites import ALL_BENCHMARKS

_FRACTION = 0.5


def run(
    benchmarks: List[str] | None = None, timeout_cycles: float = 20_000.0
) -> ExperimentResult:
    names = benchmarks or [p.name for p in ALL_BENCHMARKS]
    rows = []
    chop_fracs = []
    timeout_fracs = []
    wins = 0
    for name in names:
        chopped, _ = run_cached(
            name, GatingMode.POWERCHOP, managed_units=("vpu",), fraction=_FRACTION
        )
        timed, _ = run_cached(
            name,
            GatingMode.TIMEOUT,
            timeout_cycles=timeout_cycles,
            fraction=_FRACTION,
        )
        chop_frac = chopped.energy.vpu_gated_frac
        timeout_frac = timed.energy.vpu_gated_frac
        chop_fracs.append(chop_frac)
        timeout_fracs.append(timeout_frac)
        if chop_frac > timeout_frac + 0.10:
            wins += 1
        rows.append(
            (
                name,
                f"{chop_frac:.1%}",
                f"{timeout_frac:.1%}",
                f"{chop_frac - timeout_frac:+.1%}",
            )
        )
    return ExperimentResult(
        experiment_id="fig16",
        title=f"VPU gated-off fraction: PowerChop vs {timeout_cycles:g}-cycle timeout",
        headers=("benchmark", "powerchop", "timeout", "delta"),
        rows=rows,
        summary={
            "mean_powerchop_gated": mean(chop_fracs),
            "mean_timeout_gated": mean(timeout_fracs),
            "big_wins": float(wins),
        },
        notes=[
            "Paper: PowerChop gates at least as much as timeout everywhere;"
            " large wins on namd/perlbench/h264ref (uniform sparse vectors).",
        ],
    )
