"""Shared infrastructure for the per-figure experiment modules."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_bars, format_table
from repro.core.config import PowerChopConfig
from repro.sim.results import SimulationResult
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import MOBILE, SERVER, DesignPoint, design_for_suite
from repro.workloads.profiles import BenchmarkProfile, build_workload
from repro.workloads.suites import get_profile

#: Baseline per-run instruction budgets (multiplied by REPRO_SCALE).
_SERVER_INSTRUCTIONS = 4_000_000
_MOBILE_INSTRUCTIONS = 12_000_000


def scale() -> float:
    """Budget multiplier from the REPRO_SCALE environment variable."""
    try:
        value = float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError as exc:
        raise ValueError("REPRO_SCALE must be a float") from exc
    if value <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return value


def instructions_for(design: DesignPoint, fraction: float = 1.0) -> int:
    """Instruction budget for one run on ``design``.

    Mobile runs are longer: the mobile core has no LLC, so phase-edge
    rewarm effects need more amortisation for stable measurements.
    """
    base = _MOBILE_INSTRUCTIONS if design.kind == "mobile" else _SERVER_INSTRUCTIONS
    return max(200_000, int(base * fraction * scale()))


@dataclass
class ExperimentResult:
    """Rendered output plus raw records for one experiment."""

    experiment_id: str
    title: str
    headers: Sequence[str] = ()
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    bars: Optional[Tuple[Sequence[str], Sequence[float], str]] = None
    summary: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.bars is not None:
            labels, values, unit = self.bars
            parts.append(format_bars(labels, values, unit=unit))
        if self.summary:
            parts.append(
                "summary: "
                + ", ".join(f"{k}={v:.4g}" for k, v in sorted(self.summary.items()))
            )
        parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)


# --------------------------------------------------------------- run cache

#: (benchmark, mode, managed_units, timeout, budget) -> (result, phase_log)
_CACHE: Dict[tuple, Tuple[SimulationResult, list]] = {}


def clear_cache() -> None:
    _CACHE.clear()


def run_cached(
    benchmark: str,
    mode: GatingMode,
    managed_units: Tuple[str, ...] = ("vpu", "bpu", "mlc"),
    timeout_cycles: float = 20_000.0,
    fraction: float = 1.0,
    configure: Optional[Callable[[HybridSimulator], None]] = None,
    cache_tag: str = "",
) -> Tuple[SimulationResult, list]:
    """Run (or reuse) one simulation; returns (result, phase log).

    Results are memoised per process so the many figures that share the
    same full-power / PowerChop / minimal runs only pay for them once.
    PowerChop runs always collect phase vectors so the Fig. 8 analysis can
    reuse them.
    """
    profile = get_profile(benchmark)
    design = design_for_suite(profile.suite)
    budget = instructions_for(design, fraction)
    key = (benchmark, mode.value, managed_units, timeout_cycles, budget, cache_tag)
    if key in _CACHE:
        return _CACHE[key]

    config = None
    if mode is GatingMode.POWERCHOP:
        config = PowerChopConfig(
            managed_units=managed_units, collect_phase_vectors=True
        )
    workload = build_workload(profile)
    simulator = HybridSimulator(
        design,
        workload,
        mode=mode,
        powerchop_config=config,
        timeout_cycles=timeout_cycles,
    )
    if configure is not None:
        configure(simulator)
    result = simulator.run(budget)
    phase_log = (
        list(simulator.controller.phase_log) if simulator.controller else []
    )
    _CACHE[key] = (result, phase_log)
    return _CACHE[key]


def server_and_mobile_benchmarks() -> List[Tuple[str, DesignPoint]]:
    """All 29 benchmarks paired with their design point."""
    from repro.workloads.suites import ALL_BENCHMARKS

    return [(p.name, design_for_suite(p.suite)) for p in ALL_BENCHMARKS]


def timeseries_ipc(
    design: DesignPoint,
    profile: BenchmarkProfile,
    configure: Callable[[HybridSimulator], None],
    max_instructions: int,
    sample_instructions: int,
) -> List[float]:
    """IPC sampled every ``sample_instructions`` (for Figs. 2 and 3).

    Runs a full-power simulation with ``configure`` applied first (e.g.
    forcing the small BPU or a 1-way MLC) and records windowed IPC.
    """
    from repro.bt.runtime import ExecMode

    workload = build_workload(profile)
    simulator = HybridSimulator(design, workload, GatingMode.FULL)
    configure(simulator)
    core, bt = simulator.core, simulator.bt
    series: List[float] = []
    cycles = 0.0
    last_cycles = 0.0
    last_instr = 0
    boundary = sample_instructions
    for block_exec in workload.trace(max_instructions):
        exec_mode, bt_cycles, _entered = bt.on_block(block_exec.block)
        cycles += bt_cycles
        cycles += core.execute_block(block_exec, exec_mode is ExecMode.INTERPRETED)
        instructions = core.counters.instructions
        if instructions >= boundary:
            delta_c = cycles - last_cycles
            delta_i = instructions - last_instr
            series.append(delta_i / delta_c if delta_c else 0.0)
            last_cycles, last_instr = cycles, instructions
            boundary += sample_instructions
    return series
