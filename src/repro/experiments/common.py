"""Shared infrastructure for the per-figure experiment modules."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_bars, format_table
from repro.sim import engine
from repro.sim.probes import IPCSeriesProbe
from repro.sim.results import SimulationResult
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import DesignPoint, design_for_suite
from repro.workloads.profiles import BenchmarkProfile, build_workload
from repro.workloads.suites import get_profile

#: Baseline per-run instruction budgets (multiplied by REPRO_SCALE).
_SERVER_INSTRUCTIONS = 4_000_000
_MOBILE_INSTRUCTIONS = 12_000_000


def scale() -> float:
    """Budget multiplier from the REPRO_SCALE environment variable."""
    try:
        value = float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError as exc:
        raise ValueError("REPRO_SCALE must be a float") from exc
    if value <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return value


def instructions_for(design: DesignPoint, fraction: float = 1.0) -> int:
    """Instruction budget for one run on ``design``.

    Mobile runs are longer: the mobile core has no LLC, so phase-edge
    rewarm effects need more amortisation for stable measurements.
    """
    base = _MOBILE_INSTRUCTIONS if design.kind == "mobile" else _SERVER_INSTRUCTIONS
    return max(200_000, int(base * fraction * scale()))


@dataclass
class ExperimentResult:
    """Rendered output plus raw records for one experiment."""

    experiment_id: str
    title: str
    headers: Sequence[str] = ()
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    bars: Optional[Tuple[Sequence[str], Sequence[float], str]] = None
    summary: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.bars is not None:
            labels, values, unit = self.bars
            parts.append(format_bars(labels, values, unit=unit))
        if self.summary:
            parts.append(
                "summary: "
                + ", ".join(f"{k}={v:.4g}" for k, v in sorted(self.summary.items()))
            )
        parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)


# --------------------------------------------------------------- run cache


def clear_cache() -> None:
    """Drop the engine's per-process memo (the disk cache is unaffected)."""
    engine.clear_memo()


def run_cached(
    benchmark: str,
    mode: GatingMode,
    managed_units: Tuple[str, ...] = ("vpu", "bpu", "mlc"),
    timeout_cycles: float = 20_000.0,
    fraction: float = 1.0,
    configure: Optional[Callable[[HybridSimulator], None]] = None,
    cache_tag: str = "",
) -> Tuple[SimulationResult, list]:
    """Run (or reuse) one simulation; returns (result, phase log).

    A thin shim over :func:`repro.sim.engine.run_job`: the many figures
    that share the same full-power / PowerChop / minimal runs pay for them
    once per process (and once per machine, via the engine's on-disk
    cache).  PowerChop runs always collect phase vectors so the Fig. 8
    analysis can reuse them.

    ``configure`` callbacks are invisible to the cache key, so passing one
    without a distinguishing ``cache_tag`` raises ``ValueError``.
    """
    profile = get_profile(benchmark)
    design = design_for_suite(profile.suite)
    budget = instructions_for(design, fraction)
    job = engine.SimJob(
        benchmark=benchmark,
        mode=mode,
        managed_units=managed_units,
        timeout_cycles=timeout_cycles,
        max_instructions=budget,
        collect_phase_log=mode is GatingMode.POWERCHOP,
        configure=configure,
        cache_tag=cache_tag,
    )
    record = engine.run_job(job)
    return record.result, record.phase_log


def server_and_mobile_benchmarks() -> List[Tuple[str, DesignPoint]]:
    """All 29 benchmarks paired with their design point."""
    from repro.workloads.suites import ALL_BENCHMARKS

    return [(p.name, design_for_suite(p.suite)) for p in ALL_BENCHMARKS]


def timeseries_ipc(
    design: DesignPoint,
    profile: BenchmarkProfile,
    configure: Callable[[HybridSimulator], None],
    max_instructions: int,
    sample_instructions: int,
) -> List[float]:
    """IPC sampled every ``sample_instructions`` (for Figs. 2 and 3).

    Runs a full-power simulation with ``configure`` applied first (e.g.
    forcing the small BPU or a 1-way MLC) and records windowed IPC through
    an :class:`~repro.sim.probes.IPCSeriesProbe` — including the trailing
    partial window when it covers at least half a sample.
    """
    workload = build_workload(profile)
    simulator = HybridSimulator(design, workload, GatingMode.FULL)
    configure(simulator)
    probe = IPCSeriesProbe(sample_instructions=sample_instructions).build()
    simulator.run(max_instructions, probes=(probe,))
    return probe.value()
