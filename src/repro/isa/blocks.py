"""Basic blocks and code regions for synthetic guest programs."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.isa.branches import GlobalHistory, StaticBranch
from repro.isa.instructions import InstructionMix

#: Bytes per guest instruction (fixed-width guest encoding assumed).
INSTR_BYTES = 4


class BasicBlock:
    """A static basic block: straight-line code ending in (at most) a branch.

    ``taken_succ`` / ``fall_succ`` are indices into the owning region's block
    list.  Unconditional blocks carry no :class:`StaticBranch` and always fall
    through to ``fall_succ``.
    """

    __slots__ = (
        "pc",
        "mix",
        "branch",
        "taken_succ",
        "fall_succ",
        "region_id",
        "n_instr",
        "n_mem",
        "n_loads",
        "n_vec",
    )

    def __init__(
        self,
        pc: int,
        mix: InstructionMix,
        branch: Optional[StaticBranch] = None,
        taken_succ: int = 0,
        fall_succ: int = 0,
    ) -> None:
        mix.validate()
        if mix.has_branch != (branch is not None):
            raise ValueError("mix.has_branch must match presence of a branch model")
        self.pc = pc
        self.mix = mix
        self.branch = branch
        self.taken_succ = taken_succ
        self.fall_succ = fall_succ
        self.region_id = -1
        # Cached mix-derived counts: this object sits on the simulator's
        # hottest path, where property indirection is measurable.
        self.n_instr = mix.total
        self.n_mem = mix.memory_ops
        self.n_loads = mix.loads
        self.n_vec = mix.vector

    @property
    def size_bytes(self) -> int:
        return self.n_instr * INSTR_BYTES

    def next_block(self, history: GlobalHistory) -> tuple[int, bool]:
        """Resolve control flow; returns (successor index, branch taken)."""
        if self.branch is None:
            return self.fall_succ, False
        taken = self.branch.resolve(history)
        return (self.taken_succ if taken else self.fall_succ), taken

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BasicBlock(pc={self.pc:#x}, n_instr={self.n_instr})"


class CodeRegion:
    """A small CFG of basic blocks — the unit of code a phase executes from.

    Regions are what the binary translator's region cache ultimately carves
    translations out of; a phase in a synthetic program is (roughly) a stretch
    of execution confined to one region.
    """

    def __init__(self, region_id: int, blocks: Sequence[BasicBlock], entry: int = 0) -> None:
        if not blocks:
            raise ValueError("a code region needs at least one block")
        if not 0 <= entry < len(blocks):
            raise ValueError("entry index out of range")
        for block in blocks:
            for succ in (block.taken_succ, block.fall_succ):
                if not 0 <= succ < len(blocks):
                    raise ValueError(f"successor index {succ} out of range")
            block.region_id = region_id
        self.region_id = region_id
        self.blocks: List[BasicBlock] = list(blocks)
        self.entry = entry
        self._attr_arrays = None

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def attr_arrays(self):
        """Per-block attribute columns as int64 numpy arrays (memoized).

        Returns ``(n_instr, n_mem, n_loads, n_vec)`` indexed by block
        position — the gather tables the vectorized execution backend uses
        to evaluate a recorded burst of block indices in one shot.  Regions
        are immutable after construction, so the arrays are built once.
        numpy is imported lazily: the ISA layer itself has no hard
        dependency on it.
        """
        arrays = self._attr_arrays
        if arrays is None:
            import numpy as np

            blocks = self.blocks
            arrays = (
                np.array([b.n_instr for b in blocks], dtype=np.int64),
                np.array([b.n_mem for b in blocks], dtype=np.int64),
                np.array([b.n_loads for b in blocks], dtype=np.int64),
                np.array([b.n_vec for b in blocks], dtype=np.int64),
            )
            self._attr_arrays = arrays
        return arrays

    @property
    def total_static_instructions(self) -> int:
        return sum(b.n_instr for b in self.blocks)

    def block_pcs(self) -> List[int]:
        return [b.pc for b in self.blocks]


class BlockExec:
    """One dynamic execution of a basic block, as seen by the simulator.

    Carries everything the timing model needs: the static block, the resolved
    branch outcome, and the memory addresses this execution touches.
    """

    __slots__ = ("block", "taken", "addresses", "phase_name")

    def __init__(
        self,
        block: BasicBlock,
        taken: bool,
        addresses: Sequence[int],
        phase_name: str = "",
    ) -> None:
        self.block = block
        self.taken = taken
        self.addresses = addresses
        self.phase_name = phase_name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BlockExec(pc={self.block.pc:#x}, taken={self.taken})"
