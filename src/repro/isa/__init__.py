"""Guest ISA abstractions for the hybrid-processor simulator.

The simulator does not decode a real ISA.  Instead, guest programs are
described at the granularity the PowerChop mechanism actually observes:
basic blocks carrying an instruction-class mix (scalar, vector, memory,
branch), organised into code regions (small CFGs).  Branch *behaviour* is
attached to static branches through pluggable outcome models so that real
branch-predictor hardware models can be exercised faithfully.
"""

from repro.isa.instructions import InstrClass, InstructionMix
from repro.isa.branches import (
    BiasedBranch,
    BranchModel,
    GlobalCorrelatedBranch,
    GlobalHistory,
    LoopBranch,
    PatternBranch,
    RandomBranch,
    StaticBranch,
)
from repro.isa.blocks import BasicBlock, BlockExec, CodeRegion

__all__ = [
    "InstrClass",
    "InstructionMix",
    "BranchModel",
    "BiasedBranch",
    "LoopBranch",
    "PatternBranch",
    "GlobalCorrelatedBranch",
    "RandomBranch",
    "StaticBranch",
    "GlobalHistory",
    "BasicBlock",
    "BlockExec",
    "CodeRegion",
]
