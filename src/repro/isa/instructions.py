"""Instruction classes and per-block instruction mixes."""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class InstrClass(IntEnum):
    """Coarse guest instruction classes the timing model distinguishes."""

    SCALAR = 0
    VECTOR = 1
    BRANCH = 2
    LOAD = 3
    STORE = 4


@dataclass(frozen=True)
class InstructionMix:
    """Counts of each instruction class within one basic block.

    ``scalar`` covers integer/FP ALU work that executes on the always-on
    scalar datapath.  ``vector`` instructions execute on the VPU when it is
    gated on; when it is gated off the binary translator emits a scalar
    emulation sequence instead (see :mod:`repro.bt.translator`).
    """

    scalar: int = 0
    vector: int = 0
    loads: int = 0
    stores: int = 0
    has_branch: bool = True

    @property
    def memory_ops(self) -> int:
        return self.loads + self.stores

    @property
    def total(self) -> int:
        """Total guest instructions in the block (branch included)."""
        branch = 1 if self.has_branch else 0
        return self.scalar + self.vector + self.loads + self.stores + branch

    def validate(self) -> None:
        if min(self.scalar, self.vector, self.loads, self.stores) < 0:
            raise ValueError("instruction counts must be non-negative")
        if self.total <= 0:
            raise ValueError("a basic block must contain at least one instruction")
