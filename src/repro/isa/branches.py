"""Branch outcome models.

Each *static* branch in a synthetic program owns a :class:`BranchModel`
instance that produces its dynamic outcome stream.  The models span the
behaviour classes that differentiate a small local predictor from a large
tournament predictor (the distinction PowerChop's BPU criticality metric is
built on):

- :class:`BiasedBranch` — Bernoulli outcomes; trivially predictable when the
  bias is strong, irreducibly noisy when it is weak.
- :class:`LoopBranch` — classic loop backedge, taken ``period - 1`` times and
  then not taken.
- :class:`PatternBranch` — short repeating pattern; captured by a two-level
  local predictor with sufficient history.
- :class:`GlobalCorrelatedBranch` — outcome is a parity function of recent
  *global* branch outcomes, the canonical case where a global/tournament
  predictor wins and a purely local predictor cannot.
- :class:`RandomBranch` — alias of a 50/50 biased branch; unpredictable for
  every predictor, so a larger BPU provides no benefit.

Outcome generation is deterministic given the model's seed, which keeps every
experiment in the repository reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence


class GlobalHistory:
    """Shift register of recent dynamic branch outcomes program-wide.

    The workload generator owns one instance and feeds every resolved branch
    outcome into it; :class:`GlobalCorrelatedBranch` models read it.  This is
    *program behaviour*, distinct from the predictor's own history registers.
    """

    __slots__ = ("bits", "_mask")

    def __init__(self, depth: int = 16) -> None:
        self.bits = 0
        self._mask = (1 << depth) - 1

    def push(self, taken: bool) -> None:
        self.bits = ((self.bits << 1) | int(taken)) & self._mask

    def bit(self, offset: int) -> int:
        """Outcome of the branch ``offset`` places back (0 = most recent)."""
        return (self.bits >> offset) & 1


class BranchModel:
    """Interface for dynamic branch outcome generation."""

    def next_outcome(self, history: GlobalHistory) -> bool:
        raise NotImplementedError

    def clone(self) -> "BranchModel":
        """Fresh instance with identical parameters and reset state."""
        raise NotImplementedError


class BiasedBranch(BranchModel):
    """Branch taken with fixed probability ``p_taken``."""

    __slots__ = ("p_taken", "seed", "_rng")

    def __init__(self, p_taken: float, seed: int = 0) -> None:
        if not 0.0 <= p_taken <= 1.0:
            raise ValueError(f"p_taken must be in [0, 1], got {p_taken}")
        self.p_taken = p_taken
        self.seed = seed
        self._rng = random.Random(seed)

    def next_outcome(self, history: GlobalHistory) -> bool:
        return self._rng.random() < self.p_taken

    def clone(self) -> "BiasedBranch":
        return BiasedBranch(self.p_taken, self.seed)


class RandomBranch(BiasedBranch):
    """Fully unpredictable branch (50/50)."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__(0.5, seed)

    def clone(self) -> "RandomBranch":
        return RandomBranch(self.seed)


class LoopBranch(BranchModel):
    """Loop backedge: taken ``period - 1`` consecutive times, then not taken."""

    __slots__ = ("period", "_count")

    def __init__(self, period: int) -> None:
        if period < 2:
            raise ValueError("loop period must be >= 2")
        self.period = period
        self._count = 0

    def next_outcome(self, history: GlobalHistory) -> bool:
        self._count += 1
        if self._count >= self.period:
            self._count = 0
            return False
        return True

    def clone(self) -> "LoopBranch":
        return LoopBranch(self.period)


class PatternBranch(BranchModel):
    """Deterministic repeating outcome pattern (e.g. T T N T)."""

    __slots__ = ("pattern", "_pos")

    def __init__(self, pattern: Sequence[bool]) -> None:
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern = tuple(bool(b) for b in pattern)
        self._pos = 0

    def next_outcome(self, history: GlobalHistory) -> bool:
        outcome = self.pattern[self._pos]
        self._pos = (self._pos + 1) % len(self.pattern)
        return outcome

    def clone(self) -> "PatternBranch":
        return PatternBranch(self.pattern)


class GlobalCorrelatedBranch(BranchModel):
    """Outcome is the parity of selected recent global outcomes, plus noise.

    ``offsets`` selects which global-history bits participate.  With zero
    ``noise`` a global predictor with enough history predicts this branch
    perfectly while a local predictor sees an apparently random stream.
    """

    __slots__ = ("offsets", "noise", "invert", "seed", "_rng")

    def __init__(
        self,
        offsets: Sequence[int] = (1, 2),
        noise: float = 0.02,
        invert: bool = False,
        seed: int = 0,
    ) -> None:
        if not offsets:
            raise ValueError("offsets must be non-empty")
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be in [0, 1]")
        self.offsets = tuple(int(o) for o in offsets)
        self.noise = noise
        self.invert = invert
        self.seed = seed
        self._rng = random.Random(seed)

    def next_outcome(self, history: GlobalHistory) -> bool:
        parity = 0
        for offset in self.offsets:
            parity ^= history.bit(offset)
        outcome = bool(parity) ^ self.invert
        if self.noise and self._rng.random() < self.noise:
            outcome = not outcome
        return outcome

    def clone(self) -> "GlobalCorrelatedBranch":
        return GlobalCorrelatedBranch(self.offsets, self.noise, self.invert, self.seed)


@dataclass
class StaticBranch:
    """A static conditional branch instruction inside a basic block."""

    pc: int
    model: BranchModel
    taken_target: int = 0
    fallthrough_target: int = 0
    executions: int = field(default=0, compare=False)

    def resolve(self, history: GlobalHistory) -> bool:
        """Produce the next dynamic outcome and record it in global history."""
        outcome = self.model.next_outcome(history)
        history.push(outcome)
        self.executions += 1
        return outcome
