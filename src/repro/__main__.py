"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list``     — list the 29 benchmark profiles and their suites.
- ``run``      — simulate one benchmark under one gating mode.
- ``compare``  — full-power vs PowerChop vs minimal on one benchmark.
- ``designs``  — print the two Table I design points.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import format_table
from repro.sim.results import (
    energy_reduction,
    leakage_reduction,
    power_reduction,
    slowdown,
)
from repro.sim.simulator import GatingMode, run_simulation
from repro.uarch.config import design_by_name, design_for_suite
from repro.workloads.suites import ALL_BENCHMARKS, get_profile


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("benchmark", help="benchmark name (see `list`)")
    parser.add_argument(
        "-n",
        "--instructions",
        type=int,
        default=2_000_000,
        help="guest instructions to simulate (default 2M)",
    )
    parser.add_argument(
        "-d",
        "--design",
        default="",
        help="design point: server | mobile (default: paper pairing)",
    )


def _resolve_design(args):
    profile = get_profile(args.benchmark)
    if args.design:
        return profile, design_by_name(args.design)
    return profile, design_for_suite(profile.suite)


def cmd_list(_args) -> int:
    rows = [
        (p.name, p.suite, len(p.phases), p.description[:60])
        for p in ALL_BENCHMARKS
    ]
    print(format_table(("benchmark", "suite", "phases", "description"), rows))
    return 0


def cmd_run(args) -> int:
    profile, design = _resolve_design(args)
    mode = GatingMode(args.mode)
    result = run_simulation(
        design, profile, mode, max_instructions=args.instructions
    )
    energy = result.energy
    print(f"{profile.name} on {design.name} [{mode.value}]")
    print(f"  instructions : {result.instructions:,}")
    print(f"  cycles       : {result.cycles:,.0f}  (IPC {result.ipc:.3f})")
    print(f"  power        : {energy.avg_power_w:.3f} W "
          f"(leakage {energy.avg_leakage_w:.3f} W)")
    print(f"  mispredicts  : {result.mispredict_rate:.2%} of branches")
    print(f"  vpu gated    : {energy.vpu_gated_frac:.1%} of cycles")
    print(f"  bpu gated    : {energy.bpu_gated_frac:.1%} of cycles")
    print(f"  mlc ways     : {dict(sorted(energy.mlc_way_residency.items()))}")
    if mode is GatingMode.POWERCHOP:
        print(f"  phases       : {result.new_phases} characterised; "
              f"PVT {result.pvt_hits}/{result.pvt_lookups} hits")
    return 0


def cmd_compare(args) -> int:
    profile, design = _resolve_design(args)
    results = {}
    for mode in (GatingMode.FULL, GatingMode.POWERCHOP, GatingMode.MINIMAL):
        results[mode] = run_simulation(
            design, profile, mode, max_instructions=args.instructions
        )
    full = results[GatingMode.FULL]
    rows = []
    for mode, result in results.items():
        rows.append(
            (
                mode.value,
                f"{result.ipc:.3f}",
                f"{slowdown(full, result):+.2%}",
                f"{result.energy.avg_power_w:.3f}",
                f"{power_reduction(full, result):.2%}",
                f"{leakage_reduction(full, result):.2%}",
                f"{energy_reduction(full, result):.2%}",
            )
        )
    print(f"{profile.name} on {design.name} ({args.instructions:,} instructions)")
    print(
        format_table(
            ("mode", "ipc", "slowdown", "power_w", "power_red", "leak_red", "energy_red"),
            rows,
        )
    )
    return 0


def cmd_designs(_args) -> int:
    from repro.experiments.table1_designs import run

    print(run().render())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="PowerChop (ISCA 2016) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark profiles").set_defaults(
        func=cmd_list
    )

    run_parser = sub.add_parser("run", help="run one simulation")
    _add_run_args(run_parser)
    run_parser.add_argument(
        "-m",
        "--mode",
        choices=[m.value for m in GatingMode],
        default="powerchop",
    )
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser(
        "compare", help="full vs powerchop vs minimal"
    )
    _add_run_args(compare_parser)
    compare_parser.set_defaults(func=cmd_compare)

    sub.add_parser("designs", help="print Table I design points").set_defaults(
        func=cmd_designs
    )

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
