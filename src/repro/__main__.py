"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list``        — list the 29 benchmark profiles and their suites.
- ``run``         — simulate one benchmark under one gating mode.
- ``compare``     — full-power vs PowerChop vs minimal on one benchmark.
- ``sweep``       — run a benchmark x mode batch through the parallel engine.
- ``designs``     — print the two Table I design points.
- ``staticcheck`` — static-analysis report (CFG verification + dataflow
  summaries) over workload profiles; exits non-zero on errors (or, with
  ``--strict``, warnings).  ``--prove`` adds the proof pass: every profile
  either certifies (region determinism, stream slot-disjointness, idle
  window safety) or reports exactly why each region does not.
- ``trace``       — run one benchmark with full observability and write a
  Chrome ``trace_event`` JSON (load it at https://ui.perfetto.dev), plus
  an optional per-unit gating timeline (``--timeline``).
- ``fabric``      — the fault-tolerant job service (``repro.sim.fabric``):
  ``submit`` runs a batch with retries/timeouts/crash isolation and
  streams per-job status, ``status`` reports result-cache occupancy, and
  ``gc`` evicts least-recently-used cache entries down to a size budget.

``run``, ``compare`` and ``sweep`` accept ``--json`` for machine-readable
output; ``sweep`` accepts ``--jobs N`` (default: ``REPRO_JOBS``) to fan the
batch across a process pool, with results cached on disk (see
``REPRO_CACHE_DIR``), and ``--fabric`` to route the batch through the
fault-tolerant scheduler instead of the plain ``SweepRunner``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.report import format_table
from repro.sim.backends import available_backends
from repro.sim.engine import SimJob, SweepRunner, default_workers
from repro.sim.results import (
    energy_reduction,
    leakage_reduction,
    power_reduction,
    slowdown,
)
from repro.sim.simulator import GatingMode, run_simulation
from repro.uarch.config import design_by_name, design_for_suite
from repro.workloads.suites import ALL_BENCHMARKS, KERNEL_BENCHMARKS, get_profile

#: Version of the ``staticcheck --json`` payload shape.  Bump when keys
#: move or change meaning; additive keys (like ``proofs``) don't require a
#: bump, and consumers should pin on this rather than sniffing keys.
STATICCHECK_JSON_SCHEMA = 1


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("benchmark", help="benchmark name (see `list`)")
    parser.add_argument(
        "-n",
        "--instructions",
        type=int,
        default=2_000_000,
        help="guest instructions to simulate (default 2M)",
    )
    parser.add_argument(
        "-d",
        "--design",
        default="",
        help="design point: server | mobile (default: paper pairing)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the human summary",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="execution backend (default: fastpath); all backends are "
        "bit-identical, this only changes simulation speed",
    )
    parser.add_argument(
        "--proofs",
        action="store_true",
        help="attach a proof certificate (cached in the proof store); "
        "inert — results are bit-identical — but unlocks walk-trace "
        "memoization on certified-deterministic regions",
    )


def _proofs_for(profile):
    from repro.staticcheck.proofs import ProofStore

    return ProofStore().get_or_certify(profile)


def _resolve_design(args):
    profile = get_profile(args.benchmark)
    if args.design:
        return profile, design_by_name(args.design)
    return profile, design_for_suite(profile.suite)


def cmd_list(_args) -> int:
    rows = [
        (p.name, p.suite, len(p.phases), p.description[:60])
        for p in ALL_BENCHMARKS
    ]
    print(format_table(("benchmark", "suite", "phases", "description"), rows))
    return 0


def cmd_run(args) -> int:
    profile, design = _resolve_design(args)
    mode = GatingMode(args.mode)
    result = run_simulation(
        design, profile, mode, max_instructions=args.instructions,
        backend=args.backend,
        proofs=_proofs_for(profile) if args.proofs else None,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    energy = result.energy
    print(f"{profile.name} on {design.name} [{mode.value}]")
    print(f"  instructions : {result.instructions:,}")
    print(f"  cycles       : {result.cycles:,.0f}  (IPC {result.ipc:.3f})")
    print(f"  power        : {energy.avg_power_w:.3f} W "
          f"(leakage {energy.avg_leakage_w:.3f} W)")
    print(f"  mispredicts  : {result.mispredict_rate:.2%} of branches")
    print(f"  vpu gated    : {energy.vpu_gated_frac:.1%} of cycles")
    print(f"  bpu gated    : {energy.bpu_gated_frac:.1%} of cycles")
    print(f"  mlc ways     : {dict(sorted(energy.mlc_way_residency.items()))}")
    if mode is GatingMode.POWERCHOP:
        print(f"  phases       : {result.new_phases} characterised; "
              f"PVT {result.pvt_hits}/{result.pvt_lookups} hits")
    return 0


def cmd_compare(args) -> int:
    profile, design = _resolve_design(args)
    results = {}
    proofs = _proofs_for(profile) if args.proofs else None
    for mode in (GatingMode.FULL, GatingMode.POWERCHOP, GatingMode.MINIMAL):
        results[mode] = run_simulation(
            design, profile, mode, max_instructions=args.instructions,
            backend=args.backend, proofs=proofs,
        )
    full = results[GatingMode.FULL]
    if args.json:
        payload = {
            "benchmark": profile.name,
            "design": design.name,
            "instructions": args.instructions,
            "results": {m.value: r.to_dict() for m, r in results.items()},
            "comparison": {
                m.value: {
                    "slowdown": slowdown(full, r),
                    "power_reduction": power_reduction(full, r),
                    "leakage_reduction": leakage_reduction(full, r),
                    "energy_reduction": energy_reduction(full, r),
                }
                for m, r in results.items()
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = []
    for mode, result in results.items():
        rows.append(
            (
                mode.value,
                f"{result.ipc:.3f}",
                f"{slowdown(full, result):+.2%}",
                f"{result.energy.avg_power_w:.3f}",
                f"{power_reduction(full, result):.2%}",
                f"{leakage_reduction(full, result):.2%}",
                f"{energy_reduction(full, result):.2%}",
            )
        )
    print(f"{profile.name} on {design.name} ({args.instructions:,} instructions)")
    print(
        format_table(
            ("mode", "ipc", "slowdown", "power_w", "power_red", "leak_red", "energy_red"),
            rows,
        )
    )
    return 0


def cmd_sweep(args) -> int:
    modes = [GatingMode(mode.strip()) for mode in args.modes.split(",") if mode.strip()]
    if not modes:
        raise SystemExit("sweep: --modes must name at least one gating mode")
    names = args.benchmarks or [p.name for p in ALL_BENCHMARKS]
    design = design_by_name(args.design) if args.design else None

    jobs = []
    for name in names:
        profile = get_profile(name)  # fail fast on unknown names
        job_design = design or design_for_suite(profile.suite)
        for mode in modes:
            jobs.append(
                SimJob(
                    benchmark=name,
                    design=job_design,
                    mode=mode,
                    max_instructions=args.instructions,
                    backend=args.backend,
                    use_proofs=args.proofs,
                )
            )
    if args.fabric:
        from repro.sim.fabric import FabricScheduler

        records = FabricScheduler(workers=args.jobs).run(jobs)
    else:
        records = SweepRunner(workers=args.jobs).run(jobs)

    by_key = {(job.benchmark, job.mode): record for job, record in zip(jobs, records)}
    if args.json:
        payload = [
            {
                "job_key": record.job_key,
                "from_cache": record.from_cache,
                "result": record.result.to_dict() if record.ok else None,
                "error": record.error,
            }
            for record in records
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    rows = []
    for job, record in zip(jobs, records):
        if not record.ok:
            rows.append(
                (job.benchmark, job.mode.value, "-", "-", "-", "failed")
            )
            continue
        result = record.result
        full = by_key.get((job.benchmark, GatingMode.FULL))
        versus_full = (
            f"{slowdown(full.result, result):+.2%}/{power_reduction(full.result, result):.2%}"
            if full is not None and full.ok
            else "-"
        )
        rows.append(
            (
                job.benchmark,
                job.mode.value,
                f"{result.ipc:.3f}",
                f"{result.energy.avg_power_w:.3f}",
                versus_full,
                "hit" if record.from_cache else "run",
            )
        )
    failures = sum(1 for r in records if not r.ok)
    print(
        f"{len(jobs)} jobs ({len(names)} benchmarks x {len(modes)} modes), "
        f"{args.jobs or default_workers()} worker(s), "
        f"{sum(1 for r in records if r.from_cache)} cache hits"
        + (f", {failures} failed" if failures else "")
    )
    print(
        format_table(
            ("benchmark", "mode", "ipc", "power_w", "slowdown/power_red", "cache"),
            rows,
        )
    )
    return 1 if failures else 0


def cmd_designs(_args) -> int:
    from repro.experiments.table1_designs import run

    print(run().render())
    return 0


def _fabric_jobs(args):
    """Benchmark x mode SimJob batch shared by fabric submit."""
    modes = [GatingMode(mode.strip()) for mode in args.modes.split(",") if mode.strip()]
    if not modes:
        raise SystemExit("fabric submit: --modes must name at least one gating mode")
    names = args.benchmarks or [p.name for p in ALL_BENCHMARKS]
    design = design_by_name(args.design) if args.design else None
    jobs = []
    for name in names:
        profile = get_profile(name)  # fail fast on unknown names
        job_design = design or design_for_suite(profile.suite)
        for mode in modes:
            jobs.append(
                SimJob(
                    benchmark=name,
                    design=job_design,
                    mode=mode,
                    max_instructions=args.instructions,
                    backend=args.backend,
                )
            )
    return jobs


def cmd_fabric_submit(args) -> int:
    from repro.sim.fabric import FabricScheduler, JobStatus, RetryPolicy

    jobs = _fabric_jobs(args)
    scheduler = FabricScheduler(
        workers=args.jobs,
        retry=RetryPolicy(max_attempts=args.retries, base_delay=args.backoff),
        job_timeout=args.timeout,
        shard_size=args.shard_size,
    )
    progress = (
        (lambda event: print(f"  {event.status.value:>7} {event.key[:12]}"
                             + (f" (attempt {event.attempt})" if event.attempt else "")))
        if args.progress
        else None
    )
    scheduler.on_event = progress
    records = scheduler.run(jobs)
    snapshot = scheduler.registry.snapshot()

    if args.json:
        payload = {
            "jobs": [
                {
                    "benchmark": job.benchmark,
                    "mode": job.mode.value,
                    "job_key": record.job_key,
                    "status": (
                        JobStatus.FAILED.value
                        if not record.ok
                        else (
                            JobStatus.CACHED.value
                            if record.from_cache
                            else JobStatus.DONE.value
                        )
                    ),
                    "from_cache": record.from_cache,
                    "error": record.error,
                    "result": record.result.to_dict() if record.ok else None,
                }
                for job, record in zip(jobs, records)
            ],
            "metrics": snapshot,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if any(not r.ok for r in records) else 0

    rows = []
    for job, record in zip(jobs, records):
        if record.ok:
            status = "cached" if record.from_cache else "done"
            detail = f"ipc {record.result.ipc:.3f}"
        else:
            status, detail = "failed", record.error[:48]
        rows.append((job.benchmark, job.mode.value, status, detail))
    counters = snapshot["counters"]
    print(
        f"{len(jobs)} job(s): "
        f"{counters.get('fabric_jobs{status=done}', 0)} run, "
        f"{counters.get('fabric_jobs{status=cached}', 0)} cached, "
        f"{counters.get('fabric_jobs{status=failed}', 0)} failed; "
        f"{counters.get('fabric_retries', 0)} retries, "
        f"{counters.get('fabric_timeouts', 0)} timeouts, "
        f"{counters.get('fabric_pool_restarts', 0)} pool restarts"
    )
    print(format_table(("benchmark", "mode", "status", "detail"), rows))
    return 1 if any(not r.ok for r in records) else 0


def cmd_fabric_status(args) -> int:
    from repro.sim.fabric import cache_stats

    stats = cache_stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    budget = stats["budget_bytes"]
    print(f"result cache at {stats['root']}")
    print(f"  enabled : {stats['enabled']}")
    print(f"  entries : {stats['entries']}")
    print(f"  bytes   : {stats['bytes']:,}")
    print(f"  budget  : {budget:,}" if budget else "  budget  : unbounded")
    if stats["over_budget"]:
        print("  WARNING : over budget — run `python -m repro fabric gc`")
    return 0


def cmd_fabric_gc(args) -> int:
    from repro.sim.engine import ResultCache
    from repro.sim.fabric import gc_cache

    cache = ResultCache()
    if args.clear:
        removed = cache.clear()
        report = {"evicted": removed, "entries": 0, "bytes": 0,
                  "budget_bytes": cache.budget_bytes}
    else:
        report = gc_cache(cache, budget_bytes=args.budget)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(
        f"evicted {report['evicted']} entr{'y' if report['evicted'] == 1 else 'ies'}; "
        f"{report['entries']} left ({report['bytes']:,} bytes, "
        f"budget {report['budget_bytes']:,} bytes)"
    )
    return 0


def cmd_staticcheck(args) -> int:
    from repro.staticcheck import Severity, analyze_profile

    # The kernel profiles sit outside the paper's 29-app study set but
    # must stay staticcheck-clean (and are the profiles whose regions
    # actually certify deterministic under --prove).
    names = args.workload or [
        p.name for p in ALL_BENCHMARKS + KERNEL_BENCHMARKS
    ]
    analyses = [analyze_profile(get_profile(name)) for name in names]
    n_errors = sum(a.n_errors for a in analyses)
    n_warnings = sum(a.n_warnings for a in analyses)
    failed = n_errors > 0 or (args.strict and n_warnings > 0)

    reports = []
    if args.prove:
        from repro.staticcheck import certify_workload

        # The proof pass never *fails* a healthy profile: a certificate
        # always materializes, and a region that cannot be proved
        # deterministic carries the precise reasons instead.  An exception
        # here means the profile is structurally broken — that is an error
        # even without --strict.
        for name in names:
            try:
                reports.append(certify_workload(get_profile(name)).report())
            except Exception as exc:  # pragma: no cover - defensive
                n_errors += 1
                failed = True
                reports.append({"benchmark": name, "error": str(exc)})

    if args.json:
        payload = {
            "schema_version": STATICCHECK_JSON_SCHEMA,
            "profiles": [a.to_dict() for a in analyses],
            "errors": n_errors,
            "warnings": n_warnings,
            "ok": not failed,
        }
        if args.prove:
            payload["proofs"] = reports
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if failed else 0

    for analysis in analyses:
        print(analysis.render(verbose=args.verbose))
    vpu_dead = sum(len(a.vpu_dead_regions) for a in analyses)
    regions = sum(len(a.regions) for a in analyses)
    infos = sum(a.count(Severity.INFO) for a in analyses)
    print(
        f"{len(analyses)} profile(s), {regions} region(s): "
        f"{n_errors} error(s), {n_warnings} warning(s), {infos} note(s); "
        f"{vpu_dead} region(s) statically VPU-dead"
    )
    if args.prove:
        for rep in reports:
            if "error" in rep:
                print(f"  proof {rep['benchmark']}: FAILED ({rep['error']})")
                continue
            det = rep["deterministic_regions"]
            why = rep["non_deterministic_reasons"]
            detail = (
                f"deterministic phases: {', '.join(rep['deterministic_phases'])}"
                if det
                else "no deterministic region ("
                + "; ".join(
                    f"{phase}: {len(rs)} non-closed-form branch(es)"
                    for phase, rs in sorted(why.items())
                )
                + "; full reasons in --json)"
            )
            print(
                f"  proof {rep['benchmark']}: {det}/{rep['regions']} region(s) "
                f"deterministic, stream "
                f"{'slotted' if rep['stream_slotted'] else 'unslotted'}, "
                f"window head bound {rep['window_head_bound']}; {detail}"
            )
    return 1 if failed else 0


def cmd_trace(args) -> int:
    from repro.obs.export import chrome_trace, gating_intervals, render_timeline
    from repro.sim.simulator import HybridSimulator
    from repro.workloads.profiles import build_workload

    profile, design = _resolve_design(args)
    mode = GatingMode(args.mode)
    simulator = HybridSimulator(
        design,
        build_workload(profile, args.seed),
        mode=mode,
        obs_level="full",
    )
    result = simulator.run(args.instructions)
    tracer = simulator.tracer

    trace = chrome_trace(
        tracer.events(),
        frequency_hz=design.frequency_hz,
        end_cycles=simulator.cycles,
        mlc_full_ways=design.mlc_assoc,
        benchmark=profile.name,
        design=design.name,
        dropped=tracer.dropped,
    )
    with open(args.out, "w") as handle:
        json.dump(trace, handle)

    if args.timeline:
        intervals = gating_intervals(tracer.events(), simulator.cycles)
        fmt = "csv" if args.timeline.endswith(".csv") else "text"
        rendered = render_timeline(intervals, fmt=fmt)
        if args.timeline == "-":
            print(rendered)
        else:
            with open(args.timeline, "w") as handle:
                handle.write(rendered)
                if not rendered.endswith("\n"):
                    handle.write("\n")

    print(
        f"{profile.name} on {design.name} [{mode.value}]: "
        f"{tracer.emitted:,} events ({tracer.dropped:,} dropped), "
        f"{len(trace['traceEvents']):,} trace records -> {args.out}"
    )
    print(f"  instructions : {result.instructions:,}")
    print(f"  cycles       : {result.cycles:,.0f}  (IPC {result.ipc:.3f})")
    print("  load the trace at https://ui.perfetto.dev or chrome://tracing")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="PowerChop (ISCA 2016) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark profiles").set_defaults(
        func=cmd_list
    )

    run_parser = sub.add_parser("run", help="run one simulation")
    _add_run_args(run_parser)
    run_parser.add_argument(
        "-m",
        "--mode",
        choices=[m.value for m in GatingMode],
        default="powerchop",
    )
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser(
        "compare", help="full vs powerchop vs minimal"
    )
    _add_run_args(compare_parser)
    compare_parser.set_defaults(func=cmd_compare)

    sweep_parser = sub.add_parser(
        "sweep", help="run a benchmark x mode batch through the engine"
    )
    sweep_parser.add_argument(
        "benchmarks",
        nargs="*",
        help="benchmark names (default: all 29 profiles)",
    )
    sweep_parser.add_argument(
        "-m",
        "--modes",
        default="full,powerchop",
        help="comma-separated gating modes (default: full,powerchop)",
    )
    sweep_parser.add_argument(
        "-n",
        "--instructions",
        type=int,
        default=2_000_000,
        help="guest instructions per job (default 2M)",
    )
    sweep_parser.add_argument(
        "-d",
        "--design",
        default="",
        help="design point: server | mobile (default: paper pairing)",
    )
    sweep_parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="process-pool workers (default: REPRO_JOBS, else 1)",
    )
    sweep_parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the summary table",
    )
    sweep_parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="execution backend for every job (default: fastpath); "
        "results and cache keys are backend-independent",
    )
    sweep_parser.add_argument(
        "--proofs",
        action="store_true",
        help="attach proof certificates to every job (inert; results and "
        "cache keys are unchanged)",
    )
    sweep_parser.add_argument(
        "--fabric",
        action="store_true",
        help="route the batch through the fault-tolerant fabric scheduler "
        "(retries, crash isolation) instead of the plain SweepRunner; "
        "results are bit-identical",
    )
    sweep_parser.set_defaults(func=cmd_sweep)

    fabric_parser = sub.add_parser(
        "fabric",
        help="fault-tolerant job service: submit batches, inspect / gc the cache",
    )
    fabric_sub = fabric_parser.add_subparsers(dest="fabric_command", required=True)

    submit_parser = fabric_sub.add_parser(
        "submit", help="run a benchmark x mode batch with retries and timeouts"
    )
    submit_parser.add_argument(
        "benchmarks",
        nargs="*",
        help="benchmark names (default: all 29 profiles)",
    )
    submit_parser.add_argument(
        "-m",
        "--modes",
        default="full,powerchop",
        help="comma-separated gating modes (default: full,powerchop)",
    )
    submit_parser.add_argument(
        "-n",
        "--instructions",
        type=int,
        default=2_000_000,
        help="guest instructions per job (default 2M)",
    )
    submit_parser.add_argument(
        "-d",
        "--design",
        default="",
        help="design point: server | mobile (default: paper pairing)",
    )
    submit_parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="process-pool workers (default: REPRO_JOBS, else 1)",
    )
    submit_parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="execution backend for every job (default: fastpath)",
    )
    submit_parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="max attempts per job including the first (default 3)",
    )
    submit_parser.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="base retry backoff in seconds, doubled per attempt (default 0.05)",
    )
    submit_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock timeout in seconds (default: none)",
    )
    submit_parser.add_argument(
        "--shard-size",
        type=int,
        default=32,
        help="jobs dispatched concurrently per shard (default 32; 1 "
        "fully serialises dispatch)",
    )
    submit_parser.add_argument(
        "--progress",
        action="store_true",
        help="stream per-job status transitions as they happen",
    )
    submit_parser.add_argument(
        "--json",
        action="store_true",
        help="emit per-job records plus the fabric metrics snapshot",
    )
    submit_parser.set_defaults(func=cmd_fabric_submit)

    status_parser = fabric_sub.add_parser(
        "status", help="result-cache occupancy, budget and counters"
    )
    status_parser.add_argument("--json", action="store_true")
    status_parser.set_defaults(func=cmd_fabric_status)

    gc_parser = fabric_sub.add_parser(
        "gc", help="evict least-recently-used cache entries to a size budget"
    )
    gc_parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="target size in bytes (default: REPRO_CACHE_BUDGET)",
    )
    gc_parser.add_argument(
        "--clear",
        action="store_true",
        help="delete every cache entry instead of evicting to budget",
    )
    gc_parser.add_argument("--json", action="store_true")
    gc_parser.set_defaults(func=cmd_fabric_gc)

    sub.add_parser("designs", help="print Table I design points").set_defaults(
        func=cmd_designs
    )

    static_parser = sub.add_parser(
        "staticcheck",
        help="CFG verification + static dataflow report over workload profiles",
    )
    static_parser.add_argument(
        "-w",
        "--workload",
        action="append",
        default=None,
        metavar="NAME",
        help="benchmark profile to analyze (repeatable; default: all 29)",
    )
    static_parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors (non-zero exit)",
    )
    static_parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="include per-region dataflow summaries and informational notes",
    )
    static_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full machine-readable report",
    )
    static_parser.add_argument(
        "--prove",
        action="store_true",
        help="also run the proof pass: each profile certifies (region "
        "determinism, stream slot-disjointness, window safety) or reports "
        "why each region is not deterministic",
    )
    static_parser.set_defaults(func=cmd_staticcheck)

    trace_parser = sub.add_parser(
        "trace", help="export a Chrome trace_event JSON of one run"
    )
    trace_parser.add_argument("benchmark", help="benchmark name (see `list`)")
    trace_parser.add_argument(
        "-n",
        "--instructions",
        type=int,
        default=2_000_000,
        help="guest instructions to simulate (default 2M)",
    )
    trace_parser.add_argument(
        "-m",
        "--mode",
        choices=[m.value for m in GatingMode],
        default="powerchop",
    )
    trace_parser.add_argument(
        "-d",
        "--design",
        default="",
        help="design point: server | mobile (default: paper pairing)",
    )
    trace_parser.add_argument(
        "-s",
        "--seed",
        type=int,
        default=None,
        help="workload generation seed (default: profile default)",
    )
    trace_parser.add_argument(
        "--out",
        default="trace.json",
        help="Chrome trace output path (default trace.json)",
    )
    trace_parser.add_argument(
        "--timeline",
        default="",
        metavar="PATH",
        help="also write the per-unit gating timeline "
        "(CSV if PATH ends in .csv, else text; '-' prints to stdout)",
    )
    trace_parser.set_defaults(func=cmd_trace)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
