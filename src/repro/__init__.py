"""PowerChop reproduction (ISCA 2016).

A from-scratch Python implementation of "PowerChop: Identifying and
Managing Non-critical Units in Hybrid Processor Architectures" — the
PowerChop mechanism (HTB + PVT + CDE), the hybrid-processor substrate it
runs on (binary translation layer, branch predictors, gateable cache
hierarchy, VPU, power models), 29 synthetic SPEC/PARSEC/MobileBench-class
workloads, and a benchmark harness regenerating every table and figure in
the paper's evaluation.

Quick start::

    from repro import (
        SERVER, GatingMode, get_profile, run_simulation, slowdown,
    )

    full = run_simulation(SERVER, get_profile("gobmk"), GatingMode.FULL,
                          max_instructions=200_000)
    chopped = run_simulation(SERVER, get_profile("gobmk"),
                             GatingMode.POWERCHOP,
                             max_instructions=200_000)
    print(f"slowdown: {slowdown(full, chopped):.1%}, "
          f"power saved: {1 - chopped.energy.avg_power_w / full.energy.avg_power_w:.1%}")
"""

from repro.core import (
    CriticalityThresholds,
    PolicyVector,
    PowerChopConfig,
)
from repro.sim import (
    GatingMode,
    HybridSimulator,
    IPCSeriesProbe,
    JobRecord,
    PhaseLogProbe,
    ResultCache,
    SimJob,
    SimulationResult,
    StaticHintsProbe,
    SweepRunner,
    UnitActivityProbe,
    energy_reduction,
    leakage_reduction,
    power_reduction,
    run_job,
    run_jobs,
    run_simulation,
    slowdown,
)
from repro.staticcheck import StaticHints, analyze_profile, build_hints
from repro.uarch import MOBILE, SERVER, DesignPoint, design_by_name
from repro.uarch.config import design_for_suite
from repro.workloads import (
    ALL_BENCHMARKS,
    SUITES,
    BenchmarkProfile,
    build_workload,
    get_profile,
    mobile_benchmarks,
    server_benchmarks,
)

__version__ = "1.0.0"

__all__ = [
    "PowerChopConfig",
    "CriticalityThresholds",
    "PolicyVector",
    "GatingMode",
    "HybridSimulator",
    "run_simulation",
    "SimulationResult",
    "SimJob",
    "JobRecord",
    "ResultCache",
    "SweepRunner",
    "run_job",
    "run_jobs",
    "IPCSeriesProbe",
    "PhaseLogProbe",
    "StaticHintsProbe",
    "UnitActivityProbe",
    "StaticHints",
    "build_hints",
    "analyze_profile",
    "slowdown",
    "power_reduction",
    "energy_reduction",
    "leakage_reduction",
    "DesignPoint",
    "SERVER",
    "MOBILE",
    "design_by_name",
    "design_for_suite",
    "BenchmarkProfile",
    "ALL_BENCHMARKS",
    "SUITES",
    "get_profile",
    "build_workload",
    "server_benchmarks",
    "mobile_benchmarks",
    "__version__",
]
