"""McPAT-lite: per-unit leakage and per-event dynamic energy budgets.

Unit leakage is apportioned from the design point's total core leakage by
the Table I area fractions (leakage tracks area to first order at a fixed
node).  Per-event dynamic energies are derived from each unit's share of
the core's peak dynamic power at a nominal peak activity rate, so that the
relative dynamic contributions of the units are sensible even though the
absolute Joules are synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.config import DesignPoint

#: Nominal peak event rates (events per cycle) used to convert a unit's
#: peak-power share into a per-event energy.
_MLC_PEAK_ACCESS_RATE = 1.0 / 8.0
_BPU_PEAK_LOOKUP_RATE = 1.0 / 2.0
_VPU_PEAK_OP_RATE = 1.0 / 2.0
#: Energy of a small-BPU lookup relative to the full tournament lookup.
_SMALL_BPU_ENERGY_FRAC = 0.15
#: Way-gated MLC accesses still drive tag logic: fixed + per-way components.
_MLC_FIXED_ENERGY_FRAC = 0.25


@dataclass(frozen=True)
class UnitPower:
    """Leakage and per-event dynamic energy for one gateable unit."""

    name: str
    leakage_w: float
    event_energy_j: float


class CorePowerModel:
    """Per-unit power budgets for one design point."""

    def __init__(self, design: DesignPoint) -> None:
        self.design = design
        freq = design.frequency_hz
        leak = design.core_leakage_w
        peak = design.core_peak_dynamic_w

        managed_frac = design.mlc_area_frac + design.vpu_area_frac + design.bpu_area_frac
        if managed_frac >= 1.0:
            raise ValueError("unit area fractions exceed the core")

        self.mlc = UnitPower(
            "mlc",
            leakage_w=design.mlc_area_frac * leak,
            event_energy_j=design.mlc_area_frac * peak / (freq * _MLC_PEAK_ACCESS_RATE),
        )
        self.vpu = UnitPower(
            "vpu",
            leakage_w=design.vpu_area_frac * leak,
            event_energy_j=design.vpu_area_frac * peak / (freq * _VPU_PEAK_OP_RATE),
        )
        self.bpu = UnitPower(
            "bpu",
            leakage_w=design.bpu_area_frac * leak,
            event_energy_j=design.bpu_area_frac * peak / (freq * _BPU_PEAK_LOOKUP_RATE),
        )
        self.other_leakage_w = (1.0 - managed_frac) * leak
        # Everything not in a managed unit: issue/execute/L1/etc., charged
        # per micro-op at peak issue rate.
        self.base_uop_energy_j = (
            (1.0 - managed_frac) * peak / (freq * design.issue_width)
        )

    # ------------------------------------------------------ leakage states

    def mlc_leakage_w(self, active_ways: int) -> float:
        """MLC leakage with way gating: gated ways leak at 5 % (§IV-D)."""
        design = self.design
        frac_active = active_ways / design.mlc_assoc
        gated = design.gated_leakage_frac
        return self.mlc.leakage_w * (frac_active + (1.0 - frac_active) * gated)

    def vpu_leakage_w(self, powered_on: bool) -> float:
        if powered_on:
            return self.vpu.leakage_w
        return self.vpu.leakage_w * self.design.gated_leakage_frac

    def bpu_leakage_w(self, large_on: bool) -> float:
        """Leakage of the gateable large side (the small side is in 'other')."""
        if large_on:
            return self.bpu.leakage_w
        return self.bpu.leakage_w * self.design.gated_leakage_frac

    # ------------------------------------------------------ dynamic events

    def mlc_access_energy_j(self, active_ways: int) -> float:
        frac = active_ways / self.design.mlc_assoc
        scale = _MLC_FIXED_ENERGY_FRAC + (1.0 - _MLC_FIXED_ENERGY_FRAC) * frac
        return self.mlc.event_energy_j * scale

    def bpu_lookup_energy_j(self, large_on: bool) -> float:
        if large_on:
            return self.bpu.event_energy_j
        return self.bpu.event_energy_j * _SMALL_BPU_ENERGY_FRAC

    def vpu_op_energy_j(self) -> float:
        return self.vpu.event_energy_j

    def unit_peak_dynamic_w(self, unit: str) -> float:
        """Peak dynamic power of a unit (input to the gating-energy model)."""
        fractions = {
            "mlc": self.design.mlc_area_frac,
            "vpu": self.design.vpu_area_frac,
            "bpu": self.design.bpu_area_frac,
        }
        try:
            return fractions[unit] * self.design.core_peak_dynamic_w
        except KeyError:
            raise KeyError(f"unknown unit {unit!r}") from None
