"""Power-gating energy overhead (Hu et al., paper Eq. 1).

``E_overhead = 2 * W_H * E_cyc^S * switching_factor`` — the energy cost of
asserting and de-asserting the sleep signal on a unit's header/footer
transistor.  ``E_cyc^S`` is the unit's average switching energy for one
cycle, derived (as in the paper) from the McPAT estimate of the unit's peak
dynamic power; ``W_H`` is the sleep-transistor to unit area ratio, taken at
0.20 — the top of the literature's 0.05-0.20 range, i.e. the conservative
(largest-overhead) choice the paper makes.

The paper's sentence fixing the switching factor is truncated in the
available text; 0.5 is used and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.power.mcpat import CorePowerModel
from repro.uarch.config import DesignPoint


class GatingOverheadModel:
    """Energy and latency overheads of power-gating transitions."""

    def __init__(self, design: DesignPoint, power_model: CorePowerModel) -> None:
        self.design = design
        self.power_model = power_model

    def cycle_energy_j(self, unit: str) -> float:
        """E_cyc^S: average switching energy of the unit for one cycle."""
        peak_w = self.power_model.unit_peak_dynamic_w(unit)
        return peak_w / self.design.frequency_hz

    def switch_energy_j(self, unit: str) -> float:
        """Eq. 1: energy overhead of one gate-on or gate-off transition."""
        return (
            2.0
            * self.design.sleep_transistor_ratio
            * self.cycle_energy_j(unit)
            * self.design.switching_factor
        )

    def switch_latency_cycles(self, unit: str) -> int:
        """Pipeline-stall cycles while the sleep signal propagates (§IV-D)."""
        latencies = {
            "mlc": self.design.mlc_switch_cycles,
            "vpu": self.design.vpu_switch_cycles,
            "bpu": self.design.bpu_switch_cycles,
        }
        try:
            return latencies[unit]
        except KeyError:
            raise KeyError(f"unknown unit {unit!r}") from None
