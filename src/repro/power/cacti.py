"""CACTI-lite: area/power estimates for small SRAM/CAM structures.

The paper uses CACTI to cost PowerChop's two added hardware structures,
reporting that the HTB (128 entries, 1 KB) needs ~0.027 W and ~0.008 mm²
(§IV-B4).  This module provides an analytical estimate at the 32 nm node
with constants calibrated to land in that regime; it is used by the
hardware-cost experiment and by the McPAT-lite unit budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

# 32 nm SRAM cell + periphery constants (effective, per bit).
_AREA_MM2_PER_BIT = 0.16e-6
_AREA_PERIPHERY_FACTOR = 5.0
_LEAKAGE_W_PER_BIT = 1.1e-6
_READ_ENERGY_PJ_PER_BIT_LINE = 0.012  # scales with sqrt(bits) wordline/bitline
#: Fully-associative (CAM) structures pay a tag-match premium.
_CAM_FACTOR = 2.2


@dataclass(frozen=True)
class SramEstimate:
    """Estimated cost of one SRAM/CAM structure."""

    bits: int
    area_mm2: float
    leakage_w: float
    read_energy_pj: float

    @property
    def dynamic_power_w(self) -> float:
        """Dynamic power assuming one access per ns (upper-bound activity)."""
        return self.read_energy_pj * 1e-12 * 1e9

    @property
    def total_power_w(self) -> float:
        return self.leakage_w + self.dynamic_power_w


def estimate_sram(
    size_bytes: int, fully_associative: bool = False
) -> SramEstimate:
    """Estimate area/power of a small SRAM (or CAM) at 32 nm."""
    if size_bytes <= 0:
        raise ValueError("size must be positive")
    bits = size_bytes * 8
    factor = _CAM_FACTOR if fully_associative else 1.0
    area = bits * _AREA_MM2_PER_BIT * _AREA_PERIPHERY_FACTOR * factor
    leakage = bits * _LEAKAGE_W_PER_BIT * factor
    # Read energy grows sub-linearly (roughly with array edge length).
    read_energy = _READ_ENERGY_PJ_PER_BIT_LINE * (bits ** 0.5) * factor
    return SramEstimate(
        bits=bits, area_mm2=area, leakage_w=leakage, read_energy_pj=read_energy
    )


def htb_cost() -> SramEstimate:
    """The paper's HTB: 128 entries x (32-bit ID + 32-bit counter) = 1 KB."""
    return estimate_sram(1024, fully_associative=True)


def pvt_cost() -> SramEstimate:
    """The paper's PVT: 16 entries x (4 x 32-bit PCs + 4 bits) = 264 bytes."""
    return estimate_sram(264, fully_associative=True)
