"""Power modelling: McPAT-lite unit budgets, CACTI-lite SRAM estimates,
the Hu et al. gating-overhead model (paper Eq. 1), and energy accounting.

Absolute Watts are representative 32 nm values, not authoritative; the
paper's claims are all *relative* (percent power/energy/leakage reduction),
which is what the accounting layer reports.
"""

from repro.power.cacti import SramEstimate, estimate_sram
from repro.power.gating import GatingOverheadModel
from repro.power.mcpat import CorePowerModel, UnitPower
from repro.power.accounting import EnergyAccounting, EnergyReport

__all__ = [
    "SramEstimate",
    "estimate_sram",
    "GatingOverheadModel",
    "CorePowerModel",
    "UnitPower",
    "EnergyAccounting",
    "EnergyReport",
]
