"""Energy accounting: integrates leakage and dynamic energy over a run.

The accountant segments time by unit power state (VPU on/off, BPU large
side on/off, MLC active ways) so that state-dependent leakage and
per-access energy are integrated exactly, and it charges the Eq. 1 switch
overhead for every gating transition.  Figures 9/10 (unit activity) come
straight from the state residencies it records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.power.gating import GatingOverheadModel
from repro.power.mcpat import CorePowerModel
from repro.uarch.config import DesignPoint
from repro.uarch.core import CoreModel


@dataclass
class EnergyReport:
    """Final energy/power breakdown for one simulation run."""

    cycles: float
    seconds: float
    leakage_j: float
    dynamic_j: float
    switch_overhead_j: float
    unit_leakage_j: Dict[str, float]
    unit_dynamic_j: Dict[str, float]
    vpu_on_frac: float
    bpu_on_frac: float
    mlc_way_residency: Dict[int, float]
    switch_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total_j(self) -> float:
        return self.leakage_j + self.dynamic_j + self.switch_overhead_j

    @property
    def avg_power_w(self) -> float:
        return self.total_j / self.seconds if self.seconds else 0.0

    @property
    def avg_leakage_w(self) -> float:
        return self.leakage_j / self.seconds if self.seconds else 0.0

    @property
    def vpu_gated_frac(self) -> float:
        return 1.0 - self.vpu_on_frac

    @property
    def bpu_gated_frac(self) -> float:
        return 1.0 - self.bpu_on_frac

    def mlc_gated_frac(self, full_ways: int) -> float:
        """Fraction of cycles the MLC ran with fewer than all ways."""
        return sum(
            frac for ways, frac in self.mlc_way_residency.items() if ways < full_ways
        )

    def to_dict(self) -> Dict:
        """JSON-serialisable form; inverse of :meth:`from_dict`."""
        return {
            "cycles": self.cycles,
            "seconds": self.seconds,
            "leakage_j": self.leakage_j,
            "dynamic_j": self.dynamic_j,
            "switch_overhead_j": self.switch_overhead_j,
            "unit_leakage_j": dict(self.unit_leakage_j),
            "unit_dynamic_j": dict(self.unit_dynamic_j),
            "vpu_on_frac": self.vpu_on_frac,
            "bpu_on_frac": self.bpu_on_frac,
            "mlc_way_residency": {
                str(ways): frac for ways, frac in self.mlc_way_residency.items()
            },
            "switch_counts": dict(self.switch_counts),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "EnergyReport":
        """Rebuild a report from :meth:`to_dict` output (or parsed JSON)."""
        return cls(
            cycles=data["cycles"],
            seconds=data["seconds"],
            leakage_j=data["leakage_j"],
            dynamic_j=data["dynamic_j"],
            switch_overhead_j=data["switch_overhead_j"],
            unit_leakage_j=dict(data["unit_leakage_j"]),
            unit_dynamic_j=dict(data["unit_dynamic_j"]),
            vpu_on_frac=data["vpu_on_frac"],
            bpu_on_frac=data["bpu_on_frac"],
            mlc_way_residency={
                int(ways): frac for ways, frac in data["mlc_way_residency"].items()
            },
            switch_counts=dict(data["switch_counts"]),
        )


class EnergyAccounting:
    """Streaming energy integrator; one instance per simulation run.

    Create it *after* the run's initial gating states have been applied to
    the core; call :meth:`on_switch` at every gating transition and
    :meth:`finalize` once at the end of the run.
    """

    def __init__(
        self,
        design: DesignPoint,
        core: CoreModel,
        power_model: CorePowerModel | None = None,
    ) -> None:
        self.design = design
        self.core = core
        self.power = power_model or CorePowerModel(design)
        self.gating = GatingOverheadModel(design, self.power)

        states = core.states
        self._seg_start = {"vpu": 0.0, "bpu": 0.0, "mlc": 0.0}
        self._vpu_state = states.vpu_on
        self._bpu_state = states.bpu_large_on
        self._mlc_state = states.mlc_ways

        self._vpu_cycles: Dict[bool, float] = {True: 0.0, False: 0.0}
        self._bpu_cycles: Dict[bool, float] = {True: 0.0, False: 0.0}
        self._mlc_cycles: Dict[int, float] = {}

        self._bpu_lookup_snapshot = core.bpu.lookups
        self._mlc_access_snapshot = core.hierarchy.mlc.accesses
        self._bpu_dynamic_j = 0.0
        self._mlc_dynamic_j = 0.0
        self.switch_overhead_j = 0.0
        self.switch_counts: Dict[str, int] = {"vpu": 0, "bpu": 0, "mlc": 0}
        self._finalized = False

    # --------------------------------------------------------- transitions

    def on_switch(self, unit: str, new_state, now_cycles: float) -> None:
        """Record a gating transition at simulation time ``now_cycles``."""
        if unit == "vpu":
            self._close_vpu(now_cycles)
            self._vpu_state = bool(new_state)
        elif unit == "bpu":
            self._close_bpu(now_cycles)
            self._bpu_state = bool(new_state)
        elif unit == "mlc":
            self._close_mlc(now_cycles)
            self._mlc_state = int(new_state)
        else:
            raise KeyError(f"unknown unit {unit!r}")
        self.switch_counts[unit] += 1
        self.switch_overhead_j += self.gating.switch_energy_j(unit)

    def _close_vpu(self, now: float) -> None:
        self._vpu_cycles[self._vpu_state] += now - self._seg_start["vpu"]
        self._seg_start["vpu"] = now

    def _close_bpu(self, now: float) -> None:
        self._bpu_cycles[self._bpu_state] += now - self._seg_start["bpu"]
        self._seg_start["bpu"] = now
        lookups = self.core.bpu.lookups
        delta = lookups - self._bpu_lookup_snapshot
        self._bpu_lookup_snapshot = lookups
        self._bpu_dynamic_j += delta * self.power.bpu_lookup_energy_j(self._bpu_state)

    def _close_mlc(self, now: float) -> None:
        ways = self._mlc_state
        self._mlc_cycles[ways] = (
            self._mlc_cycles.get(ways, 0.0) + now - self._seg_start["mlc"]
        )
        self._seg_start["mlc"] = now
        accesses = self.core.hierarchy.mlc.accesses
        delta = accesses - self._mlc_access_snapshot
        self._mlc_access_snapshot = accesses
        self._mlc_dynamic_j += delta * self.power.mlc_access_energy_j(ways)

    # ------------------------------------------------------------ finalize

    def finalize(self, now_cycles: float) -> EnergyReport:
        if self._finalized:
            raise RuntimeError("EnergyAccounting.finalize called twice")
        self._finalized = True
        self._close_vpu(now_cycles)
        self._close_bpu(now_cycles)
        self._close_mlc(now_cycles)

        freq = self.design.frequency_hz
        seconds = now_cycles / freq
        power = self.power

        unit_leakage = {
            "vpu": sum(
                cycles / freq * power.vpu_leakage_w(state)
                for state, cycles in self._vpu_cycles.items()
            ),
            "bpu": sum(
                cycles / freq * power.bpu_leakage_w(state)
                for state, cycles in self._bpu_cycles.items()
            ),
            "mlc": sum(
                cycles / freq * power.mlc_leakage_w(ways)
                for ways, cycles in self._mlc_cycles.items()
            ),
            "other": seconds * power.other_leakage_w,
        }

        core = self.core
        unit_dynamic = {
            "vpu": core.vpu.native_ops * power.vpu_op_energy_j(),
            "bpu": self._bpu_dynamic_j,
            "mlc": self._mlc_dynamic_j,
            "other": core.counters.micro_ops * power.base_uop_energy_j,
        }

        total = max(now_cycles, 1.0)
        return EnergyReport(
            cycles=now_cycles,
            seconds=seconds,
            leakage_j=sum(unit_leakage.values()),
            dynamic_j=sum(unit_dynamic.values()),
            switch_overhead_j=self.switch_overhead_j,
            unit_leakage_j=unit_leakage,
            unit_dynamic_j=unit_dynamic,
            vpu_on_frac=self._vpu_cycles[True] / total,
            bpu_on_frac=self._bpu_cycles[True] / total,
            mlc_way_residency={
                ways: cycles / total for ways, cycles in self._mlc_cycles.items()
            },
            switch_counts=dict(self.switch_counts),
        )
