"""Golden-trace regression fixtures: specs, capture, and comparison.

A golden spec pins one fully deterministic run — ``(profile, seed,
config)`` — and captures the sequence of *decision* events it produces:
``POLICY_DECISION`` plus ``UNIT_GATE``/``UNIT_REGATE``.  Those are the
events that encode PowerChop's behaviour; cycle-accounting noise (cache
hits, instant markers) is deliberately excluded so goldens only move when
the mechanism's decisions change.

The checked-in fixtures live in ``tests/goldens/<name>.json``; regenerate
them with ``python scripts/update_goldens.py`` after an *intentional*
behaviour change, and inspect the diff before committing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.config import PowerChopConfig
from repro.obs.events import OBS_SCHEMA_VERSION, EventKind, event_to_jsonable
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile

__all__ = ["GOLDEN_SPECS", "GoldenSpec", "capture_golden", "diff_goldens"]

#: Event kinds a golden records (the mechanism's decision stream).
GOLDEN_KINDS = (
    EventKind.POLICY_DECISION,
    EventKind.UNIT_GATE,
    EventKind.UNIT_REGATE,
)


@dataclass(frozen=True)
class GoldenSpec:
    """One pinned (profile, seed, config) regression run."""

    name: str
    benchmark: str
    seed: int
    max_instructions: int
    config: PowerChopConfig

    def run(self) -> HybridSimulator:
        """Execute the pinned run at full observability."""
        profile = get_profile(self.benchmark)
        from repro.uarch.config import design_for_suite

        simulator = HybridSimulator(
            design_for_suite(profile.suite),
            build_workload(profile, self.seed),
            mode=GatingMode.POWERCHOP,
            powerchop_config=self.config,
            obs_level="full",
        )
        simulator.run(self.max_instructions)
        return simulator


#: Small windows + short warmup so a few hundred thousand instructions
#: produce a rich decision stream; seeds pin the generated workloads.
#: The three benchmarks were chosen for decision density: all produce
#: policy decisions AND gate/regate activity at this budget.
_QUICK = PowerChopConfig(window_size=100, warmup_windows=1)

GOLDEN_SPECS: Tuple[GoldenSpec, ...] = (
    GoldenSpec("bzip2_s7", "bzip2", seed=7, max_instructions=300_000, config=_QUICK),
    GoldenSpec(
        "libquantum_s5",
        "libquantum",
        seed=5,
        max_instructions=400_000,
        config=_QUICK,
    ),
    GoldenSpec("lbm_s5", "lbm", seed=5, max_instructions=400_000, config=_QUICK),
)


def capture_golden(spec: GoldenSpec) -> Dict:
    """Run the spec and return its JSON-ready golden fixture."""
    simulator = spec.run()
    events = [
        event_to_jsonable(event)
        for event in simulator.tracer.events()
        if event.kind in GOLDEN_KINDS
    ]
    return {
        "schema": OBS_SCHEMA_VERSION,
        "name": spec.name,
        "benchmark": spec.benchmark,
        "seed": spec.seed,
        "max_instructions": spec.max_instructions,
        "events": events,
    }


def diff_goldens(expected: Dict, actual: Dict) -> List[str]:
    """Event-for-event comparison; returns human-readable mismatch lines.

    An empty list means the traces agree.  The first divergent event is
    reported with both sides, then length/count summaries — enough to see
    *what* changed without dumping both streams.
    """
    problems: List[str] = []
    if expected.get("schema") != actual.get("schema"):
        problems.append(
            f"schema: expected {expected.get('schema')}, got {actual.get('schema')}"
        )
    exp_events = expected.get("events", [])
    act_events = actual.get("events", [])
    for index, (exp, act) in enumerate(zip(exp_events, act_events)):
        if exp != act:
            problems.append(
                f"event {index} diverges:\n  expected: {exp}\n  actual:   {act}"
            )
            break
    if len(exp_events) != len(act_events):
        problems.append(
            f"event count: expected {len(exp_events)}, got {len(act_events)}"
        )
    return problems
