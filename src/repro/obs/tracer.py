"""The ring-buffered event tracer threaded through the simulator.

One :class:`Tracer` instance exists per :class:`HybridSimulator`; every
instrumented component (HTB, PVT, CDE, controller, core, BT runtime)
holds a reference and guards each emission site with ``if tracer.active``
— a single attribute load and branch when tracing is off, so the
``obs_level="off"`` hot path is indistinguishable from uninstrumented
code (verified by ``benchmarks/test_obs_overhead.py``).

Buffering is a bounded ring: when ``capacity`` events are held, the
oldest event is overwritten and ``dropped`` is incremented, so tracing a
long run costs bounded memory and the consumer can see exactly how much
history was lost.  ``now`` is the tracer's clock — the simulator (and the
controller, at window boundaries) writes the current cycle count into it
so components without a cycle argument in scope can still timestamp
events; emission order is guaranteed monotonically non-decreasing in
``ts``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.events import EventKind, TraceEvent

#: Recognised observability levels, in increasing cost order:
#: ``off`` (no tracing, no metrics snapshot), ``metrics`` (registry
#: snapshot on the result, no event buffer), ``full`` (both).
OBS_LEVELS = ("off", "metrics", "full")

#: Default ring capacity (events); ~64 K events comfortably covers the
#: managed-unit activity of multi-million-instruction runs.
DEFAULT_CAPACITY = 65_536


class Tracer:
    """Typed-event ring buffer with a drop counter and a cycle clock."""

    __slots__ = (
        "level",
        "active",
        "metrics_on",
        "capacity",
        "now",
        "emitted",
        "dropped",
        "_buf",
        "_start",
    )

    def __init__(self, level: str = "off", capacity: int = DEFAULT_CAPACITY) -> None:
        if level not in OBS_LEVELS:
            raise ValueError(
                f"obs_level must be one of {OBS_LEVELS}, got {level!r}"
            )
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.level = level
        #: True only at ``full``: event emission sites fire.
        self.active = level == "full"
        #: True at ``metrics`` and ``full``: the registry is snapshotted.
        self.metrics_on = level != "off"
        self.capacity = capacity
        #: The tracer's clock, in cycles; written by the simulation loop.
        self.now = 0.0
        self.emitted = 0
        self.dropped = 0
        self._buf: List[TraceEvent] = []
        self._start = 0

    def emit(self, kind: EventKind, ts: float, payload: Dict[str, Any]) -> None:
        """Append one event, overwriting the oldest when the ring is full."""
        self.emitted += 1
        buf = self._buf
        if len(buf) < self.capacity:
            buf.append(TraceEvent(ts, kind, payload))
        else:
            buf[self._start] = TraceEvent(ts, kind, payload)
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1

    def events(self) -> List[TraceEvent]:
        """Buffered events, oldest first."""
        if not self._start:
            return list(self._buf)
        return self._buf[self._start:] + self._buf[: self._start]

    def __len__(self) -> int:
        return len(self._buf)


#: Shared inert tracer: components default to it so constructing them
#: without observability changes nothing.
NULL_TRACER = Tracer("off")
