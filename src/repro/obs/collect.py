"""End-of-run metrics collection from the authoritative counters.

The registry is populated once, at result-build time, straight from the
component counters the legacy ``SimulationResult`` fields are built from
— so registry totals are equal to the legacy counters *by construction*
(the A/B parity invariant tests assert it).  Collecting at the end keeps
the hot path free of incremental metric updates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.results import SimulationResult
    from repro.sim.simulator import HybridSimulator


def collect_metrics(
    simulator: "HybridSimulator",
    result: "SimulationResult",
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Fill ``registry`` from one finished simulation run."""
    registry = registry if registry is not None else MetricsRegistry()
    core = simulator.core
    counters = core.counters

    # Core execution.
    registry.counter("instructions").inc(counters.instructions)
    registry.counter("micro_ops").inc(counters.micro_ops)
    registry.counter("simd_instructions").inc(counters.simd_instructions)
    registry.counter("branches").inc(counters.branches)
    registry.counter("mispredicts").inc(counters.mispredicts)
    registry.counter("btb_redirects").inc(counters.btb_redirects)
    registry.counter("memory_ops").inc(counters.memory_ops)
    registry.gauge("cycles").set(result.cycles)

    # Cache hierarchy, labelled by level.
    hierarchy = core.hierarchy
    for label, cache in (("l1", hierarchy.l1), ("mlc", hierarchy.mlc)) + (
        (("llc", hierarchy.llc),) if hierarchy.llc is not None else ()
    ):
        registry.counter("cache_hits", cache=label).inc(cache.hits)
        registry.counter("cache_misses", cache=label).inc(cache.misses)
        registry.counter("cache_writebacks", cache=label).inc(cache.writebacks)
    registry.counter("cache_flushed_dirty", cache="mlc").inc(
        hierarchy.mlc.flushed_dirty
    )
    registry.counter("prefetch_covered").inc(hierarchy.prefetch_covered)

    # Vector unit.
    registry.counter("vpu_native_ops").inc(core.vpu.native_ops)
    registry.counter("vpu_emulated_ops").inc(core.vpu.emulated_ops)

    # BT runtime.
    bt = simulator.bt
    registry.counter("bt_interpreted_instructions").inc(
        bt.interpreter.interpreted_instructions
    )
    registry.counter("bt_translations_built").inc(bt.translator.translations_built)
    registry.counter("bt_translated_blocks").inc(bt.translated_blocks)
    registry.gauge("bt_translation_cycles").set(bt.translation_cycles)
    registry.gauge("nucleus_cycles").set(bt.nucleus.cycles)
    for kind, count in bt.nucleus.counts.items():
        registry.counter("nucleus_interrupts", kind=kind).inc(count)

    # PowerChop controller stack (POWERCHOP mode only).
    controller = simulator.controller
    if controller is not None:
        registry.counter("windows").inc(controller.windows_seen)
        registry.counter("translation_executions").inc(
            controller.translation_executions
        )
        registry.counter("htb_overflowed").inc(controller.htb.overflowed)
        registry.counter("htb_windows_completed").inc(
            controller.htb.windows_completed
        )
        pvt = controller.pvt
        registry.counter("pvt_lookups").inc(pvt.lookups)
        registry.counter("pvt_hits").inc(pvt.hits)
        registry.counter("pvt_misses").inc(pvt.misses)
        registry.counter("pvt_evictions").inc(pvt.evictions)
        cde = controller.cde
        registry.counter("cde_invocations").inc(cde.invocations)
        registry.counter("cde_new_phases").inc(cde.new_phases)
        registry.counter("cde_reregistrations").inc(cde.reregistrations)
        registry.counter("cde_profile_windows").inc(cde.profile_windows)
        registry.counter("cde_policies_assigned").inc(cde.policies_assigned)
        registry.counter("cde_inherited_policies").inc(cde.inherited_policies)
        registry.counter("cde_unprofileable_phases").inc(cde.unprofileable_phases)
        registry.counter("cde_static_vpu_phases").inc(cde.static_vpu_phases)
        registry.counter("cde_static_vpu_windows_skipped").inc(
            cde.static_vpu_windows_skipped
        )

    timeout = simulator.timeout_controller
    if timeout is not None:
        registry.counter("timeout_gate_offs").inc(timeout.gate_offs)
        registry.counter("timeout_gate_ons").inc(timeout.gate_ons)

    # Energy breakdown.
    energy = result.energy
    if energy is not None:
        registry.gauge("energy_leakage_j").set(energy.leakage_j)
        registry.gauge("energy_dynamic_j").set(energy.dynamic_j)
        registry.gauge("energy_switch_overhead_j").set(energy.switch_overhead_j)
        for unit, joules in energy.unit_leakage_j.items():
            registry.gauge("unit_leakage_j", unit=unit).set(joules)
        for unit, joules in energy.unit_dynamic_j.items():
            registry.gauge("unit_dynamic_j", unit=unit).set(joules)
        for unit, count in energy.switch_counts.items():
            registry.counter("unit_switches", unit=unit).inc(count)
        registry.gauge("vpu_on_frac").set(energy.vpu_on_frac)
        registry.gauge("bpu_on_frac").set(energy.bpu_on_frac)
        for ways, frac in energy.mlc_way_residency.items():
            registry.gauge("mlc_way_residency", ways=str(ways)).set(frac)

    # The tracer observing itself: buffer pressure and loss.
    tracer = simulator.tracer
    registry.counter("obs_events_emitted").inc(tracer.emitted)
    registry.counter("obs_events_dropped").inc(tracer.dropped)
    registry.gauge("obs_buffer_len").set(float(len(tracer)))

    return registry
