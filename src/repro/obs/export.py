"""Trace exporters: Chrome ``trace_event`` JSON and gating timelines.

:func:`chrome_trace` converts a tracer's event list into the Chrome
trace-event JSON-object format (``{"traceEvents": [...]}``), loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

- phases and unit-gated intervals become ``B``/``E`` duration slices on
  per-concern tracks (one ``tid`` per track, all under ``pid`` 1);
- MLC way counts additionally render as a ``C`` counter track;
- PVT hits/misses, HTB promotions/evictions, policy decisions and
  writeback bursts are thread-scoped instants (``ph: "i"``);
- timestamps convert from cycles to microseconds via the design clock.

Every ``B`` is closed: slices still open when the trace ends get an ``E``
at the final timestamp, and an ``E`` whose ``B`` predates the ring buffer
(dropped under pressure) is suppressed — so the output is structurally
valid regardless of buffer truncation.

:func:`gating_intervals` reconstructs per-unit state residency intervals
from gate/regate events, and :func:`render_timeline` renders them as an
aligned text table or CSV — the ReGate-style per-unit activity timeline.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.events import EventKind, TraceEvent, event_to_jsonable

#: One Chrome ``tid`` per concern, so Perfetto shows each as its own track.
TRACKS: Dict[str, int] = {
    "phases": 1,
    "vpu": 2,
    "bpu": 3,
    "mlc": 4,
    "bt": 5,
    "policy": 6,
    "htb": 7,
    "pvt": 8,
}

_INSTANT_TRACKS = {
    EventKind.PVT_HIT: "pvt",
    EventKind.PVT_MISS: "pvt",
    EventKind.HTB_PROMOTE: "htb",
    EventKind.HTB_EVICT: "htb",
    EventKind.POLICY_DECISION: "policy",
    EventKind.WAYBACK_WRITEBACK: "mlc",
}


def _sig_name(signature) -> str:
    return "phase " + "/".join(str(tid) for tid in signature)


def chrome_trace(
    events: Sequence[TraceEvent],
    *,
    frequency_hz: float,
    end_cycles: float,
    mlc_full_ways: int,
    benchmark: str = "",
    design: str = "",
    dropped: int = 0,
) -> Dict:
    """Events → Chrome trace-event JSON object (Perfetto-loadable)."""
    scale = 1e6 / frequency_hz  # cycles -> microseconds
    trace_events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": f"repro {benchmark or 'run'} [{design or 'design'}]"},
        }
    ]
    for track, tid in TRACKS.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
        trace_events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )

    #: Per-track stack of open B slice names, to keep B/E matched.
    open_slices: Dict[int, List[str]] = {tid: [] for tid in TRACKS.values()}

    def begin(track: str, name: str, ts: float, args: Dict) -> None:
        tid = TRACKS[track]
        open_slices[tid].append(name)
        trace_events.append(
            {"name": name, "cat": track, "ph": "B", "pid": 1, "tid": tid,
             "ts": ts * scale, "args": args}
        )

    def end(track: str, ts: float) -> bool:
        tid = TRACKS[track]
        if not open_slices[tid]:
            return False  # B predates the ring buffer; drop the E too.
        name = open_slices[tid].pop()
        trace_events.append(
            {"name": name, "cat": track, "ph": "E", "pid": 1, "tid": tid,
             "ts": ts * scale}
        )
        return True

    def instant(track: str, name: str, ts: float, args: Dict) -> None:
        trace_events.append(
            {"name": name, "cat": track, "ph": "i", "s": "t", "pid": 1,
             "tid": TRACKS[track], "ts": ts * scale, "args": args}
        )

    def counter(name: str, ts: float, series: Dict[str, float]) -> None:
        trace_events.append(
            {"name": name, "ph": "C", "pid": 1, "tid": TRACKS["mlc"],
             "ts": ts * scale, "args": series}
        )

    counter("mlc_ways", 0.0, {"ways": mlc_full_ways})
    for event in events:
        ts, kind, payload = event
        if kind is EventKind.PHASE_ENTER:
            begin("phases", _sig_name(payload["signature"]), ts,
                  {"window": payload.get("window")})
        elif kind is EventKind.PHASE_EXIT:
            end("phases", ts)
        elif kind in (EventKind.UNIT_GATE, EventKind.UNIT_REGATE):
            unit = payload["unit"]
            args = {k: v for k, v in payload.items() if not isinstance(v, tuple)}
            if unit == "mlc":
                counter("mlc_ways", ts, {"ways": payload["to"]})
                if kind is EventKind.UNIT_GATE and not open_slices[TRACKS["mlc"]]:
                    begin("mlc", "mlc ways gated", ts, args)
                elif kind is EventKind.UNIT_REGATE and payload["to"] >= mlc_full_ways:
                    end("mlc", ts)
            elif kind is EventKind.UNIT_GATE:
                begin(unit, f"{unit} gated", ts, args)
            else:
                end(unit, ts)
        elif kind is EventKind.TRANSLATION_START:
            begin("bt", f"translate pc={payload['pc']:#x}", ts, dict(payload))
        elif kind is EventKind.TRANSLATION_COMMIT:
            end("bt", ts)
        else:
            track = _INSTANT_TRACKS[kind]
            args = {
                k: list(v) if isinstance(v, tuple) else v
                for k, v in payload.items()
            }
            instant(track, kind.value, ts, args)

    # Close whatever is still open so every B has a matching E.
    for track in TRACKS:
        while end(track, end_cycles):
            pass

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "benchmark": benchmark,
            "design": design,
            "frequency_hz": frequency_hz,
            "end_cycles": end_cycles,
            "events_dropped": dropped,
        },
    }


# ------------------------------------------------------------- timelines


def gating_intervals(
    events: Iterable[TraceEvent],
    end_cycles: float,
    initial_states: Optional[Dict[str, str]] = None,
) -> List[Tuple[str, float, float, str, float]]:
    """Per-unit state residency: ``(unit, start, end, state, entry_cost)``.

    Reconstructed from ``UNIT_GATE``/``UNIT_REGATE`` events; the interval
    *before* a unit's first event carries its initial state (full power
    unless overridden via ``initial_states``).  ``entry_cost`` is the
    rewarm/transition cycle cost paid to enter the interval's state.
    """
    states: Dict[str, str] = {"vpu": "on", "bpu": "on", "mlc": "full"}
    if initial_states:
        states.update(initial_states)
    opened: Dict[str, Tuple[float, str, float]] = {
        unit: (0.0, state, 0.0) for unit, state in states.items()
    }
    intervals: List[Tuple[str, float, float, str, float]] = []

    for ts, kind, payload in events:
        if kind not in (EventKind.UNIT_GATE, EventKind.UNIT_REGATE):
            continue
        unit = payload["unit"]
        if unit == "mlc":
            new_state = f"ways={payload['to']}"
        else:
            new_state = "on" if kind is EventKind.UNIT_REGATE else "gated"
        start, state, cost = opened.get(unit, (0.0, "on", 0.0))
        if ts > start:
            intervals.append((unit, start, ts, state, cost))
        opened[unit] = (ts, new_state, float(payload.get("cost_cycles", 0.0)))

    for unit, (start, state, cost) in sorted(opened.items()):
        if end_cycles > start:
            intervals.append((unit, start, end_cycles, state, cost))
    intervals.sort(key=lambda row: (row[0], row[1]))
    return intervals


_TIMELINE_HEADER = ("unit", "start_cycles", "end_cycles", "state", "entry_cost_cycles")


def render_timeline(
    intervals: Sequence[Tuple[str, float, float, str, float]],
    fmt: str = "text",
) -> str:
    """Render gating intervals as an aligned text table or CSV."""
    if fmt == "csv":
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(_TIMELINE_HEADER)
        for unit, start, stop, state, cost in intervals:
            writer.writerow([unit, f"{start:.1f}", f"{stop:.1f}", state, f"{cost:.1f}"])
        return out.getvalue()
    if fmt != "text":
        raise ValueError(f"unknown timeline format {fmt!r} (use text or csv)")
    rows = [
        (unit, f"{start:,.0f}", f"{stop:,.0f}", state, f"{cost:,.0f}")
        for unit, start, stop, state, cost in intervals
    ]
    widths = [
        max(len(header), *(len(row[i]) for row in rows)) if rows else len(header)
        for i, header in enumerate(_TIMELINE_HEADER)
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(_TIMELINE_HEADER))
    ]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def trace_to_jsonable(events: Sequence[TraceEvent]) -> List[Dict]:
    """Raw event list as JSON-ready dicts (golden fixtures use this)."""
    return [event_to_jsonable(event) for event in events]
