"""The typed trace-event taxonomy.

Every event the simulator can emit is named here; payload fields are part
of the schema (:data:`PAYLOAD_FIELDS`) so exporters, golden fixtures and
invariant tests agree on shape.  Bump :data:`OBS_SCHEMA_VERSION` whenever
a kind is added/removed or a payload field changes meaning — golden
fixtures record the version they were captured under.

Payload conventions:

- ``ts`` is simulation time in *cycles* (float, monotonically
  non-decreasing in emission order);
- phase signatures appear as tuples of translation IDs;
- ``UNIT_GATE``/``UNIT_REGATE`` carry the transition cost in cycles
  (switch latency + save/restore + writeback stalls) — the "rewarm
  penalty" a gating decision pays;
- the VPU gate/regate payloads snapshot ``native_ops`` so trace consumers
  can prove gated intervals executed zero native vector operations.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Dict, NamedTuple

#: Version of the event taxonomy + payload schema below.
OBS_SCHEMA_VERSION = 1


class EventKind(str, Enum):
    """Every event kind the instrumented simulator can emit."""

    #: A window boundary observed a different phase signature than the
    #: previous window (emitted by the PowerChop controller).
    PHASE_ENTER = "phase_enter"
    PHASE_EXIT = "phase_exit"
    #: A translation was admitted into the Hot Translation Buffer for the
    #: current window.
    HTB_PROMOTE = "htb_promote"
    #: A translation was dropped because the HTB was full (the hardware's
    #: capacity-eviction behaviour: excess translations are ignored).
    HTB_EVICT = "htb_evict"
    PVT_HIT = "pvt_hit"
    PVT_MISS = "pvt_miss"
    #: The CDE bound a policy to a signature (profiled / reregistered /
    #: inherited) or declared it unprofileable.
    POLICY_DECISION = "policy_decision"
    #: A unit powered down (VPU/BPU) or shed MLC ways.
    UNIT_GATE = "unit_gate"
    #: A unit powered back up (VPU/BPU) or restored MLC ways.
    UNIT_REGATE = "unit_regate"
    #: The BT began building a superblock translation.
    TRANSLATION_START = "translation_start"
    #: The translation was committed to the region cache.
    TRANSLATION_COMMIT = "translation_commit"
    #: Way-gating the MLC flushed dirty lines back to the next level.
    WAYBACK_WRITEBACK = "wayback_writeback"


class TraceEvent(NamedTuple):
    """One emitted event: (cycles, kind, payload dict)."""

    ts: float
    kind: EventKind
    payload: Dict[str, Any]


#: Documented payload fields per kind (tests validate emitted events
#: against this map; optional fields are suffixed with ``?``).
PAYLOAD_FIELDS: Dict[EventKind, tuple] = {
    EventKind.PHASE_ENTER: ("signature", "window"),
    EventKind.PHASE_EXIT: ("signature", "window"),
    EventKind.HTB_PROMOTE: ("tid", "occupancy"),
    EventKind.HTB_EVICT: ("tid",),
    EventKind.PVT_HIT: ("signature",),
    EventKind.PVT_MISS: ("signature",),
    EventKind.POLICY_DECISION: ("signature", "source", "policy", "scores?"),
    EventKind.UNIT_GATE: (
        "unit",
        "from",
        "to",
        "cost_cycles",
        "native_ops?",
        "lookups?",
        "writebacks?",
        "arm?",
    ),
    EventKind.UNIT_REGATE: (
        "unit",
        "from",
        "to",
        "cost_cycles",
        "native_ops?",
        "lookups?",
        "writebacks?",
        "arm?",
    ),
    EventKind.TRANSLATION_START: ("pc", "region"),
    EventKind.TRANSLATION_COMMIT: ("tid", "n_instr", "cost_cycles"),
    EventKind.WAYBACK_WRITEBACK: ("cache", "dirty_lines", "ways"),
}


def event_to_jsonable(event: TraceEvent) -> Dict[str, Any]:
    """One event as a plain JSON-ready dict (tuples become lists)."""
    payload = {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in event.payload.items()
    }
    return {"ts": event.ts, "kind": event.kind.value, "payload": payload}
