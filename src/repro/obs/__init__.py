"""Structured observability: event tracing, metrics, exporters.

``repro.obs`` is the single instrumentation surface for the simulator:

- :mod:`repro.obs.events` — the typed event taxonomy (schema-versioned);
- :mod:`repro.obs.tracer` — the ring-buffered :class:`Tracer` handle the
  simulator threads through every instrumented component (one branch per
  site when tracing is off);
- :mod:`repro.obs.metrics` — the named counter/gauge/histogram registry
  whose snapshot lands in :attr:`SimulationResult.metrics`;
- :mod:`repro.obs.collect` — end-of-run collection of the registry from
  the authoritative component counters;
- :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto) and
  per-unit gating-timeline renderers;
- :mod:`repro.obs.goldens` — the golden-trace regression specs shared by
  the test suite and ``scripts/update_goldens.py``.

See DESIGN.md §"Observability" for the event taxonomy and buffer/drop
semantics.
"""

from repro.obs.events import OBS_SCHEMA_VERSION, EventKind, TraceEvent
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, OBS_LEVELS, Tracer
from repro.obs.collect import collect_metrics
from repro.obs.export import chrome_trace, gating_intervals, render_timeline

__all__ = [
    "OBS_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
    "EventKind",
    "TraceEvent",
    "Tracer",
    "NULL_TRACER",
    "OBS_LEVELS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect_metrics",
    "chrome_trace",
    "gating_intervals",
    "render_timeline",
]
