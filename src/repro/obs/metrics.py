"""Named metrics: counters, gauges and histograms with label support.

The registry is the structured replacement for ad-hoc ``result.extra``
dict-poking: every quantity a run produces gets a *named* instrument,
optionally distinguished by labels (``cache_hits{cache=l1}``), and the
whole registry snapshots to a stable, schema-versioned dict stored in
:attr:`SimulationResult.metrics`.

Snapshot schema (version :data:`METRICS_SCHEMA_VERSION`)::

    {
      "schema": 1,
      "counters":   {"<name>{label=value,...}": int_or_float, ...},
      "gauges":     {"<key>": float, ...},
      "histograms": {"<key>": {"count": int, "sum": float,
                               "min": float|None, "max": float|None}, ...},
    }

Keys are ``name`` alone for unlabelled instruments, else
``name{k=v,...}`` with labels sorted by key — stable across runs and
processes.  Bump :data:`METRICS_SCHEMA_VERSION` when instrument names
change meaning or the snapshot layout changes (mirrors
``CACHE_SCHEMA_VERSION`` in :mod:`repro.sim.engine`, which salts cached
results with it indirectly via the result schema).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

#: Version of the snapshot layout and instrument-naming contract above.
METRICS_SCHEMA_VERSION = 1

Number = Union[int, float]


def metric_key(name: str, labels: Dict[str, str]) -> str:
    """Canonical snapshot key: ``name`` or ``name{k=v,...}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A point-in-time value (may go up or down)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values (count/sum/min/max)."""

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict:
        return {"count": self.count, "sum": self.sum, "min": self.min, "max": self.max}


class MetricsRegistry:
    """Instrument factory + holder; one per simulation run.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated calls
    with the same name and labels return the same instrument, so call
    sites need no registration ceremony.  A name may only be used for one
    instrument type.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._kinds: Dict[str, str] = {}

    def _claim(self, key: str, kind: str) -> None:
        held = self._kinds.setdefault(key, kind)
        if held != kind:
            raise ValueError(f"metric {key!r} already registered as a {held}")

    def counter(self, name: str, **labels: str) -> Counter:
        key = metric_key(name, labels)
        self._claim(key, "counter")
        return self._counters.setdefault(key, Counter())

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = metric_key(name, labels)
        self._claim(key, "gauge")
        return self._gauges.setdefault(key, Gauge())

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = metric_key(name, labels)
        self._claim(key, "histogram")
        return self._histograms.setdefault(key, Histogram())

    def snapshot(self) -> Dict:
        """Stable JSON-ready view of every instrument (keys sorted)."""
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": {
                key: self._counters[key].value for key in sorted(self._counters)
            },
            "gauges": {key: self._gauges[key].value for key in sorted(self._gauges)},
            "histograms": {
                key: self._histograms[key].to_dict()
                for key in sorted(self._histograms)
            },
        }
