"""Translations and the region cache that stores them."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Translation:
    """An optimised host-ISA trace covering a hot guest code path (§II-A).

    ``tid`` is the unit PowerChop identifies phases with: the lower 32 bits
    of the translation head's PC (§IV-B2 — the region cache is far smaller
    than 32 bits of address space, so these are unique).

    ``n_vector`` records how many guest vector instructions the trace
    contains; the translator also emits alternate scalar code paths for
    them, which is what executes when the VPU is gated off.
    """

    head_pc: int
    block_pcs: Tuple[int, ...]
    n_instr: int
    n_vector: int
    region_id: int

    @property
    def tid(self) -> int:
        return self.head_pc & 0xFFFFFFFF

    @property
    def n_blocks(self) -> int:
        return len(self.block_pcs)


@dataclass
class RegionCacheStats:
    insertions: int = 0
    lookups: int = 0
    hits: int = 0


class RegionCache:
    """Software code cache mapping translation-head PCs to translations."""

    def __init__(self) -> None:
        self._by_head: Dict[int, Translation] = {}
        self.stats = RegionCacheStats()

    def lookup(self, pc: int) -> Optional[Translation]:
        self.stats.lookups += 1
        translation = self._by_head.get(pc)
        if translation is not None:
            self.stats.hits += 1
        return translation

    def insert(self, translation: Translation) -> None:
        self._by_head[translation.head_pc] = translation
        self.stats.insertions += 1

    def __len__(self) -> int:
        return len(self._by_head)

    def __contains__(self, pc: int) -> bool:
        return pc in self._by_head

    def translations(self) -> Tuple[Translation, ...]:
        return tuple(self._by_head.values())
