"""BT runtime: ties interpreter, translator and region cache together."""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.bt.interpreter import Interpreter
from repro.bt.nucleus import Nucleus
from repro.bt.region_cache import RegionCache, Translation
from repro.bt.translator import Translator
from repro.isa.blocks import BasicBlock, CodeRegion
from repro.obs.events import EventKind
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.uarch.config import DesignPoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.hints import StaticHints


class ExecMode(Enum):
    """How a dynamic block executed."""

    INTERPRETED = "interpreted"
    TRANSLATED = "translated"


class BTRuntime:
    """Per-block execution steering through the BT subsystem.

    For every dynamic block the runtime decides whether execution continues
    inside the current translation, enters a translation from the region
    cache, or falls to the interpreter (possibly triggering translation once
    the block crosses the hotness threshold).  Entering a translation head
    is the event PowerChop's HTB observes (§IV-B2).
    """

    def __init__(
        self,
        design: DesignPoint,
        regions: Dict[int, CodeRegion],
        static_hints: Optional["StaticHints"] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.design = design
        self.regions = dict(regions)
        self.static_hints = static_hints
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.region_cache = RegionCache()
        self.interpreter = Interpreter(design.hot_threshold)
        self.translator = Translator(
            design.max_translation_blocks, static_hints=static_hints
        )
        self.nucleus = Nucleus()
        self.nucleus.static_hints = static_hints
        self._current: Optional[Translation] = None
        self._pos = 0
        self.translation_cycles = 0.0
        self.translated_blocks = 0

    def on_block(
        self, block: BasicBlock
    ) -> Tuple[ExecMode, float, Optional[Translation]]:
        """Steer one dynamic block.

        Returns ``(mode, extra_cycles, entered)`` where ``extra_cycles`` is
        BT overhead beyond normal execution (translation cost) and
        ``entered`` is the translation whose head was just entered, if any.
        """
        current = self._current
        if current is not None:
            pcs = current.block_pcs
            pos = self._pos
            if pos < len(pcs) and pcs[pos] == block.pc:
                # Still on the translated trace.
                self._pos = pos + 1
                self.translated_blocks += 1
                return ExecMode.TRANSLATED, 0.0, None
            # Trace exit (end of translation or side exit on divergence).
            self._current = None

        translation = self.region_cache.lookup(block.pc)
        if translation is not None:
            self._current = translation
            self._pos = 1
            self.translated_blocks += 1
            return ExecMode.TRANSLATED, 0.0, translation

        became_hot = self.interpreter.note_execution(block.pc, block.n_instr)
        extra_cycles = 0.0
        if became_hot:
            tracer = self.tracer
            if tracer.active:
                tracer.emit(
                    EventKind.TRANSLATION_START,
                    tracer.now,
                    {"pc": block.pc, "region": block.region_id},
                )
            region = self.regions[block.region_id]
            new_translation = self.translator.translate(region, block)
            self.region_cache.insert(new_translation)
            self.interpreter.forget(block.pc)
            extra_cycles = (
                new_translation.n_instr * self.design.translate_cycles_per_instr
            )
            self.translation_cycles += extra_cycles
            if tracer.active:
                tracer.emit(
                    EventKind.TRANSLATION_COMMIT,
                    tracer.now + extra_cycles,
                    {
                        "tid": new_translation.tid,
                        "n_instr": new_translation.n_instr,
                        "cost_cycles": extra_cycles,
                    },
                )
        return ExecMode.INTERPRETED, extra_cycles, None
