"""The BT interpreter: slow-path execution with hotness profiling."""

from __future__ import annotations

from typing import Dict


class Interpreter:
    """Decodes and executes cold guest code while counting executions.

    Per §II-A the interpreter runs guest instructions sequentially (the
    timing model charges ``interpreter_cpi`` cycles per instruction for
    interpreted blocks) and yields to the translator once a code region
    reaches the hotness threshold.
    """

    def __init__(self, hot_threshold: int) -> None:
        if hot_threshold < 1:
            raise ValueError("hot threshold must be >= 1")
        self.hot_threshold = hot_threshold
        self._exec_counts: Dict[int, int] = {}
        self.interpreted_blocks = 0
        self.interpreted_instructions = 0

    def note_execution(self, pc: int, n_instr: int) -> bool:
        """Record one interpreted execution; True when ``pc`` just got hot."""
        self.interpreted_blocks += 1
        self.interpreted_instructions += n_instr
        count = self._exec_counts.get(pc, 0) + 1
        self._exec_counts[pc] = count
        return count == self.hot_threshold

    def execution_count(self, pc: int) -> int:
        return self._exec_counts.get(pc, 0)

    def forget(self, pc: int) -> None:
        """Drop profiling state once a PC has been translated."""
        self._exec_counts.pop(pc, None)
