"""Transmeta-style binary translation subsystem (paper §II-A).

The BT layer sits below the guest ISA: an *interpreter* executes cold guest
code while profiling hotness; a *translator* turns hot code regions into
optimised host-ISA traces ("translations") stored in the *region cache*;
and the *nucleus* services interrupts and exceptions — including the PVT
miss interrupts PowerChop's Criticality Decision Engine runs on.
"""

from repro.bt.region_cache import RegionCache, Translation
from repro.bt.interpreter import Interpreter
from repro.bt.translator import Translator, likely_taken
from repro.bt.nucleus import Nucleus
from repro.bt.runtime import BTRuntime, ExecMode

__all__ = [
    "Translation",
    "RegionCache",
    "Interpreter",
    "Translator",
    "likely_taken",
    "Nucleus",
    "BTRuntime",
    "ExecMode",
]
