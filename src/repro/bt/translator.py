"""The BT translator: builds superblock translations from hot code."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.bt.region_cache import Translation
from repro.isa.blocks import BasicBlock, CodeRegion
from repro.isa.branches import (
    BiasedBranch,
    BranchModel,
    GlobalCorrelatedBranch,
    LoopBranch,
    PatternBranch,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.hints import StaticHints


def likely_taken(model: BranchModel) -> bool:
    """The translator's profile-guided guess of a branch's dominant direction.

    A production BT bases this on the interpreter's edge profile; here the
    behaviour models *are* the ground-truth profile, so we read the dominant
    direction straight off them (loop backedges are overwhelmingly taken,
    biased branches follow their bias, correlated/random branches default to
    fall-through).
    """
    if isinstance(model, LoopBranch):
        return True
    if isinstance(model, PatternBranch):
        taken = sum(model.pattern)
        return taken * 2 > len(model.pattern)
    if isinstance(model, GlobalCorrelatedBranch):
        return False
    if isinstance(model, BiasedBranch):  # includes RandomBranch
        return model.p_taken > 0.5
    return False


class Translator:
    """Builds trace (superblock) translations along the likely hot path.

    Starting from a newly-hot block, the translator follows each block's
    likely successor for up to ``max_blocks`` blocks, stopping when the
    path would revisit a block already in the trace (a loop closed).  For
    every vector instruction in the trace it also emits an alternate scalar
    emulation path (§IV-C2), which the core executes when the VPU is gated
    off.
    """

    def __init__(
        self, max_blocks: int = 6, static_hints: Optional["StaticHints"] = None
    ) -> None:
        if max_blocks < 1:
            raise ValueError("max_blocks must be >= 1")
        self.max_blocks = max_blocks
        #: When the static pre-pass is active, every built translation is
        #: noted so its ID can later vouch (or not) for a phase signature.
        self.static_hints = static_hints
        self.translations_built = 0
        self.instructions_translated = 0

    def translate(self, region: CodeRegion, head: BasicBlock) -> Translation:
        blocks = region.blocks
        path = [head]
        seen = {head.pc}
        current = head
        while len(path) < self.max_blocks:
            if current.branch is None:
                succ_idx = current.fall_succ
            elif likely_taken(current.branch.model):
                succ_idx = current.taken_succ
            else:
                succ_idx = current.fall_succ
            nxt = blocks[succ_idx]
            if nxt.pc in seen:
                break
            path.append(nxt)
            seen.add(nxt.pc)
            current = nxt

        translation = Translation(
            head_pc=head.pc,
            block_pcs=tuple(b.pc for b in path),
            n_instr=sum(b.n_instr for b in path),
            n_vector=sum(b.mix.vector for b in path),
            region_id=region.region_id,
        )
        self.translations_built += 1
        self.instructions_translated += translation.n_instr
        if self.static_hints is not None:
            self.static_hints.note_translation(translation)
        return translation
