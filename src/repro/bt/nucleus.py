"""The BT nucleus: interrupt and exception handling (§II-A).

In a hybrid processor the nucleus services host-level interrupts; PowerChop
rides this path — a PVT miss raises an interrupt that transfers control to
the Criticality Decision Engine in the BT software (§IV-C1, via model
specific registers).  The nucleus here accounts the cycle cost of each
interrupt class and dispatches to registered handlers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.hints import StaticHints


class Nucleus:
    """Interrupt dispatcher with per-kind cycle costs."""

    def __init__(self) -> None:
        self._handlers: Dict[str, Callable[..., float]] = {}
        self._costs: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self.cycles: float = 0.0
        #: Execution context published to interrupt handlers.  The BT
        #: runtime attaches the workload's static-analysis facts here so
        #: the CDE — entered via the ``pvt_miss`` interrupt — can consult
        #: them without a side channel around the interrupt path.
        self.static_hints: Optional["StaticHints"] = None

    def register(
        self, kind: str, handler: Callable[..., float], entry_cost_cycles: float
    ) -> None:
        """Register ``handler`` for interrupt ``kind``.

        ``entry_cost_cycles`` models the trap/MSR-exchange overhead; the
        handler returns any additional cycles it consumed.
        """
        if entry_cost_cycles < 0:
            raise ValueError("interrupt entry cost must be non-negative")
        self._handlers[kind] = handler
        self._costs[kind] = entry_cost_cycles

    def raise_interrupt(self, kind: str, *args, **kwargs) -> float:
        """Dispatch an interrupt; returns total cycles consumed."""
        if kind not in self._handlers:
            raise KeyError(f"no handler registered for interrupt {kind!r}")
        self.counts[kind] = self.counts.get(kind, 0) + 1
        cycles = self._costs[kind] + self._handlers[kind](*args, **kwargs)
        self.cycles += cycles
        return cycles
