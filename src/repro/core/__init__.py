"""PowerChop: the paper's contribution (§IV).

Hardware side: the Hot Translation Buffer (:mod:`repro.core.htb`) builds
phase signatures from the stream of executed translations, and the Policy
Vector Table (:mod:`repro.core.pvt`) caches per-phase gating policies and
triggers them at phase edges.  Software side: the Criticality Decision
Engine (:mod:`repro.core.cde`) profiles each new phase's unit criticality
and assigns gating policies, running on the BT nucleus's interrupt path.

:mod:`repro.core.timeout` implements the hardware-only idleness-timeout
baseline PowerChop is compared against in §V-E.
"""

from repro.core.config import PowerChopConfig
from repro.core.criticality import (
    CriticalityScores,
    CriticalityThresholds,
    bpu_criticality,
    decide_policy,
    mlc_criticality,
    vpu_criticality,
)
from repro.core.htb import HotTranslationBuffer
from repro.core.policies import PolicyVector, decode_policy_bits, encode_policy_bits
from repro.core.pvt import PolicyVectorTable
from repro.core.signature import PhaseSignature, make_signature
from repro.core.cde import CriticalityDecisionEngine, WindowStats
from repro.core.controller import PowerChopController
from repro.core.timeout import TimeoutVPUController

__all__ = [
    "PowerChopConfig",
    "PhaseSignature",
    "make_signature",
    "HotTranslationBuffer",
    "PolicyVectorTable",
    "PolicyVector",
    "encode_policy_bits",
    "decode_policy_bits",
    "CriticalityThresholds",
    "CriticalityScores",
    "vpu_criticality",
    "bpu_criticality",
    "mlc_criticality",
    "decide_policy",
    "CriticalityDecisionEngine",
    "WindowStats",
    "PowerChopController",
    "TimeoutVPUController",
]
