"""Criticality Decision Engine (§IV-C, Algorithm 1).

The CDE lives in the BT software and is invoked through the nucleus on PVT
misses.  It distinguishes three cases:

- **New phase** — never seen before: enter profiling mode and direct the
  hardware into the measurement configuration for the next execution
  window(s).
- **Continued phase profiling** — a phase part-way through profiling:
  collect the just-measured window and either finish (register the policy
  with the PVT) or continue collecting.
- **Evicted phase** — already characterised but evicted from the PVT: fetch
  the stored policy from memory and re-register it.

Profiling needs one window for the VPU and MLC scores (measured at full
power with the large BPU active) and — when the BPU is managed — a second
window executed on the small predictor to obtain ``MisPred_Small``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.config import PowerChopConfig
from repro.core.criticality import (
    CriticalityScores,
    bpu_criticality,
    decide_policy,
    mlc_criticality,
    vpu_criticality,
)
from repro.core.policies import PolicyVector, full_power_policy
from repro.core.signature import PhaseSignature
from repro.obs.events import EventKind
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.uarch.config import DesignPoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.staticcheck.hints import StaticHints


@dataclass(frozen=True)
class WindowStats:
    """Performance-counter deltas over one execution window."""

    instructions: int
    simd_instructions: int
    mlc_hits: int
    mlc_accesses: int
    branches: int
    mispredicts: int
    bpu_large_active: bool
    mlc_at_full_ways: bool

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    @property
    def mlc_demand_rate(self) -> float:
        """MLC accesses (L1 misses) per instruction — an upper bound on the
        hit rate achievable at any way configuration."""
        return self.mlc_accesses / self.instructions if self.instructions else 0.0


@dataclass
class _ProfileProgress:
    """Accumulated measurements for a phase still in profiling mode."""

    vpu_score: Optional[float] = None
    mlc_score: Optional[float] = None
    mispred_large: Optional[float] = None
    mispred_small: Optional[float] = None
    windows_collected: int = 0
    attempts: int = 0
    #: Set when a window measured at gated ways showed real MLC demand, so
    #: an honest hit-rate measurement needs the ways restored.
    mlc_needs_full: bool = False
    #: Set when the static pre-pass proved the phase VPU-dead: the VPU score
    #: is pinned at 0.0 and measurement windows run with the VPU gated.
    static_vpu: bool = False


class CriticalityDecisionEngine:
    """Software policy engine: profiles phases, assigns gating policies."""

    def __init__(
        self,
        config: PowerChopConfig,
        design: DesignPoint,
        static_hints: Optional["StaticHints"] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        self.design = design
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Static-analysis pre-pass facts; only honoured when the config
        #: opts in *and* the CDE is allowed to manage the VPU (per-unit
        #: isolation studies must not see the VPU gated by a hint).
        self.hints = (
            static_hints
            if config.use_static_hints and "vpu" in config.managed_units
            else None
        )
        #: The CDE's in-memory store of characterised phases (backs the PVT).
        self._known: Dict[PhaseSignature, PolicyVector] = {}
        self._profiles: Dict[PhaseSignature, _ProfileProgress] = {}
        #: Transition signatures deemed unprofileable (see on_pvt_miss).
        self._ignored: set = set()

        self.invocations = 0
        self.new_phases = 0
        self.reregistrations = 0
        self.profile_windows = 0
        self.policies_assigned = 0
        self.unprofileable_phases = 0
        self.inherited_policies = 0
        #: Phases whose VPU score came from the static pre-pass, and the
        #: profiling windows that consequently ran with the VPU gated when
        #: dynamic-only profiling would have kept it powered.
        self.static_vpu_phases = 0
        self.static_vpu_windows_skipped = 0

    # ------------------------------------------------------------- queries

    @property
    def needs_small_bpu_window(self) -> bool:
        return "bpu" in self.config.managed_units

    def known_policy(self, signature: PhaseSignature) -> Optional[PolicyVector]:
        return self._known.get(signature)

    def phases_characterised(self) -> int:
        return len(self._known)

    def decided_policies(self) -> List[Tuple[PhaseSignature, PolicyVector]]:
        """Every (signature, policy) characterisation, deterministically
        ordered — the unit A/B tests compare these maps bit-for-bit."""
        return sorted(self._known.items())

    # ----------------------------------------------------------- algorithm

    def on_pvt_miss(
        self,
        signature: PhaseSignature,
        current_vpu_on: bool = True,
        current_mlc_ways: Optional[int] = None,
    ) -> Tuple[str, Optional[PolicyVector]]:
        """Handle a PVT miss (Algorithm 1).

        Returns ``("register", policy)`` for an already-characterised
        (evicted) phase, ``("profile", measurement_states)`` directing the
        hardware configuration for the phase's next profiling window, or
        ``("ignore", None)`` for unprofileable transition signatures.
        """
        self.invocations += 1
        known = self._known.get(signature)
        if known is not None:
            self.reregistrations += 1
            self._note_decision(signature, known, "reregistered")
            return "register", known
        if signature in self._ignored:
            return "ignore", None

        progress = self._profiles.get(signature)
        if progress is None:
            inherited = self._similar_known_policy(signature)
            if inherited is not None:
                # A signature overlapping an already-characterised one in
                # all but one translation is the same phase whose 4th-hottest
                # slot wobbled between near-tied translations.  Re-profiling
                # it would risk assigning a *contradictory* policy (its
                # criticality sits wherever the first profile measured it),
                # making consecutive windows flip-flop unit states; the CDE
                # instead reuses the characterisation it already has.
                self._known[signature] = inherited
                self.inherited_policies += 1
                self._note_decision(signature, inherited, "inherited")
                return "register", inherited
            progress = _ProfileProgress()
            if self.hints is not None and self.hints.signature_vpu_dead(signature):
                # Static pre-pass (ahead-of-execution proof): every
                # translation in this signature comes from a region that
                # issues zero reachable vector ops, so the SIMD commit
                # ratio is zero without measuring it.
                progress.vpu_score = 0.0
                progress.static_vpu = True
                self.static_vpu_phases += 1
            self._profiles[signature] = progress
            self.new_phases += 1
        progress.attempts += 1
        if (
            progress.attempts > self.config.max_profile_attempts
            and progress.windows_collected == 0
        ):
            # A transition ("straddle") signature that never recurs long
            # enough to be measured.  Its windows mix two phases whose own
            # signatures carry correct policies, so the right move is to
            # leave the units exactly as the surrounding phases set them —
            # re-arming measurement at every phase edge would thrash the
            # MLC/VPU instead.
            self._ignored.add(signature)
            del self._profiles[signature]
            self.unprofileable_phases += 1
            self._note_decision(signature, None, "unprofileable")
            return "ignore", None
        return "profile", self._measurement_states(
            progress, current_vpu_on, current_mlc_ways
        )

    def _measurement_states(
        self,
        progress: _ProfileProgress,
        current_vpu_on: bool,
        current_mlc_ways: Optional[int],
    ) -> PolicyVector:
        """Hardware configuration for the next profiling window.

        Criticality is defined relative to the full-capability units: the
        first window runs the large BPU and the optional second window
        routes through the small side for ``MisPred_Small``.  The VPU is
        left in its current state (the SIMD commit ratio is counted by the
        BT whether vector instructions run natively or emulated), and the
        MLC ways are only restored when a low-demand shortcut could not
        score the phase — upsizing for measurement costs a rewarm, so it is
        done lazily.
        """
        base = full_power_policy(self.design)
        first_window_done = progress.mispred_large is not None
        bpu_on = not (first_window_done and self.needs_small_bpu_window)
        if current_mlc_ways is None or progress.mlc_needs_full:
            mlc_ways = base.mlc_ways
        else:
            mlc_ways = current_mlc_ways
        vpu_on = current_vpu_on
        if progress.static_vpu:
            # The pre-pass proved the phase VPU-dead, so this profiling
            # window need not burn VPU power: gate it immediately instead
            # of waiting for the measured policy.
            if current_vpu_on:
                self.static_vpu_windows_skipped += 1
            vpu_on = False
        return PolicyVector(vpu_on=vpu_on, bpu_on=bpu_on, mlc_ways=mlc_ways)

    def feed_profile_window(
        self, signature: PhaseSignature, stats: WindowStats
    ) -> Optional[PolicyVector]:
        """Consume one measured window for a phase in profiling mode.

        Returns the decided policy when profiling completes, else ``None``
        ("insufficient information, keep collecting").
        """
        progress = self._profiles.get(signature)
        if progress is None:
            return None
        self.profile_windows += 1
        progress.windows_collected += 1

        if stats.bpu_large_active:
            if not progress.static_vpu:
                progress.vpu_score = vpu_criticality(
                    stats.simd_instructions, stats.instructions
                )
            progress.mispred_large = stats.mispredict_rate
        else:
            progress.mispred_small = stats.mispredict_rate

        if stats.mlc_at_full_ways:
            progress.mlc_score = mlc_criticality(stats.mlc_hits, stats.instructions)
            progress.mlc_needs_full = False
        elif progress.mlc_score is None:
            demand = stats.mlc_demand_rate
            if demand <= self.config.thresholds.mlc_low:
                # Hits can never exceed demand, so a low-demand phase can be
                # scored without restoring (and rewarming) the gated ways.
                progress.mlc_score = demand
            else:
                progress.mlc_needs_full = True

        if progress.mispred_large is None:
            return None
        if self.needs_small_bpu_window and progress.mispred_small is None:
            return None
        if "mlc" in self.config.managed_units and progress.mlc_score is None:
            return None

        scores = CriticalityScores(
            vpu=progress.vpu_score or 0.0,
            bpu=bpu_criticality(
                progress.mispred_small or 0.0, progress.mispred_large
            ),
            mlc=progress.mlc_score or 0.0,
        )
        policy = decide_policy(
            scores,
            self.config.thresholds,
            self.design,
            self.config.managed_units,
            extended_mlc_states=self.config.extended_mlc_states,
        )
        self._known[signature] = policy
        del self._profiles[signature]
        self.policies_assigned += 1
        self._note_decision(signature, policy, "profiled", scores)
        return policy

    def _note_decision(
        self,
        signature: PhaseSignature,
        policy: Optional[PolicyVector],
        source: str,
        scores: Optional[CriticalityScores] = None,
    ) -> None:
        tracer = self.tracer
        if not tracer.active:
            return
        payload: Dict = {
            "signature": signature,
            "source": source,
            "policy": (
                [int(policy.vpu_on), int(policy.bpu_on), int(policy.mlc_ways)]
                if policy is not None
                else None
            ),
        }
        if scores is not None:
            payload["scores"] = {
                "vpu": scores.vpu,
                "bpu": scores.bpu,
                "mlc": scores.mlc,
            }
        tracer.emit(EventKind.POLICY_DECISION, tracer.now, payload)

    def _similar_known_policy(
        self, signature: PhaseSignature
    ) -> Optional[PolicyVector]:
        """Policy of a known signature differing in at most one translation."""
        sig_set = set(signature)
        needed = max(1, len(signature) - 1)
        for known_sig, policy in self._known.items():
            overlap = len(sig_set.intersection(known_sig))
            if overlap >= needed and overlap >= len(known_sig) - 1:
                return policy
        return None

    def store_evicted(
        self, signature: PhaseSignature, policy: PolicyVector
    ) -> None:
        """Persist a PVT eviction to the CDE's memory store (§IV-A step 5)."""
        self._known[signature] = policy
