"""Hot Translation Buffer (§IV-B2).

A small fully-associative hardware buffer (128 entries, 1 KB: 32-bit
translation ID + 32-bit dynamic instruction counter per entry) that tracks
the translations executed in the current execution window.  Updates happen
as a side effect of translation-head execution, off the critical path.  If
a window touches more unique translations than the HTB holds, the excess
translations are simply ignored (paper behaviour).  At the end of each
window the HTB initiates a PVT lookup and is flushed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.signature import PhaseSignature, make_signature
from repro.obs.events import EventKind
from repro.obs.tracer import NULL_TRACER, Tracer


class HotTranslationBuffer:
    """Tracks per-window translation execution and instruction counts."""

    def __init__(
        self,
        n_entries: int = 128,
        window_size: int = 1000,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if n_entries < 1:
            raise ValueError("HTB needs at least one entry")
        if window_size < 1:
            raise ValueError("window size must be >= 1")
        self.n_entries = n_entries
        self.window_size = window_size
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._instr_counts: Dict[int, int] = {}
        self._exec_counts: Dict[int, int] = {}
        self.window_executions = 0
        self.overflowed = 0  # translations dropped because the HTB was full
        self.windows_completed = 0

    def record(self, tid: int, n_instr: int) -> bool:
        """Record one translation execution; True when the window completed."""
        counts = self._instr_counts
        if tid in counts:
            counts[tid] += n_instr
            self._exec_counts[tid] += 1
        elif len(counts) < self.n_entries:
            counts[tid] = n_instr
            self._exec_counts[tid] = 1
            tracer = self.tracer
            if tracer.active:
                tracer.emit(
                    EventKind.HTB_PROMOTE,
                    tracer.now,
                    {"tid": tid, "occupancy": len(counts)},
                )
        else:
            self.overflowed += 1
            tracer = self.tracer
            if tracer.active:
                tracer.emit(EventKind.HTB_EVICT, tracer.now, {"tid": tid})
        self.window_executions += 1
        return self.window_executions >= self.window_size

    def signature(self, signature_length: int = 4) -> PhaseSignature:
        return make_signature(self._instr_counts, signature_length)

    def translation_vector(self) -> Dict[int, int]:
        """Per-translation *execution* counts for this window.

        Used by the Figure 8 phase-quality analysis (Manhattan distance
        between translation vectors of windows sharing a signature).
        """
        return dict(self._exec_counts)

    def flush(self) -> None:
        """Clear the buffer for the next execution window."""
        self._instr_counts.clear()
        self._exec_counts.clear()
        self.window_executions = 0
        self.windows_completed += 1

    @property
    def occupancy(self) -> int:
        return len(self._instr_counts)

    @property
    def storage_bytes(self) -> int:
        """1 KB for the paper's 128-entry configuration."""
        return self.n_entries * 8
