"""Gating policy vectors (§IV-B3, Figure 6(b)).

A policy vector is 4 bits: V (VPU on/off), B (BPU large side on/off), and
M (two bits selecting all ways / half the ways / one way of the MLC).  The
MLC keeps servicing requests in every state; the VPU and BPU fall back to
scalar emulation and the small local predictor respectively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.config import DesignPoint

#: Two-bit MLC field encodings (Figure 6(b) shows M=01 and M=11).  The
#: fourth encoding, 0b10, is reserved in the paper's 3-state policy and
#: carries the quarter-ways state of the extended 4-state policy (§IV-B3
#: notes states can be added by using more encodings/bits).
_MLC_ONE_WAY = 0b00
_MLC_HALF_WAYS = 0b01
_MLC_QUARTER_WAYS = 0b10
_MLC_ALL_WAYS = 0b11


@dataclass(frozen=True)
class PolicyVector:
    """Power-gating states for the three managed units."""

    vpu_on: bool
    bpu_on: bool
    mlc_ways: int

    def validate(self, design: DesignPoint) -> None:
        if self.mlc_ways not in design.mlc_way_states_extended:
            raise ValueError(
                f"mlc_ways={self.mlc_ways} not one of "
                f"{design.mlc_way_states_extended}"
            )


def full_power_policy(design: DesignPoint) -> PolicyVector:
    """Everything on — the paper's baseline configuration."""
    return PolicyVector(vpu_on=True, bpu_on=True, mlc_ways=design.mlc_assoc)


def min_power_policy(design: DesignPoint) -> PolicyVector:
    """Everything in its lowest-power state (§V-D's 'minimally-powered')."""
    return PolicyVector(vpu_on=False, bpu_on=False, mlc_ways=1)


def encode_policy_bits(policy: PolicyVector, design: DesignPoint) -> int:
    """Encode a policy as the PVT's 4-bit vector (V,B,M1,M0)."""
    policy.validate(design)
    one, quarter, half, full = design.mlc_way_states_extended
    if policy.mlc_ways == full:
        mlc_bits = _MLC_ALL_WAYS
    elif policy.mlc_ways == half:
        mlc_bits = _MLC_HALF_WAYS
    elif policy.mlc_ways == quarter and quarter not in (one, half):
        mlc_bits = _MLC_QUARTER_WAYS
    else:
        mlc_bits = _MLC_ONE_WAY
    return (int(policy.vpu_on) << 3) | (int(policy.bpu_on) << 2) | mlc_bits


def decode_policy_bits(bits: int, design: DesignPoint) -> PolicyVector:
    """Decode a 4-bit PVT policy vector."""
    if not 0 <= bits <= 0b1111:
        raise ValueError("policy vector is 4 bits")
    one, quarter, half, full = design.mlc_way_states_extended
    mlc_bits = bits & 0b11
    if mlc_bits == _MLC_ALL_WAYS:
        ways = full
    elif mlc_bits == _MLC_HALF_WAYS:
        ways = half
    elif mlc_bits == _MLC_QUARTER_WAYS:
        ways = quarter
    else:
        ways = one
    return PolicyVector(vpu_on=bool(bits & 0b1000), bpu_on=bool(bits & 0b0100), mlc_ways=ways)
