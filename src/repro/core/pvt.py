"""Policy Vector Table (§IV-B3).

A 16-entry fully-associative hardware cache mapping recently-executed phase
signatures to their 4-bit gating policy vectors, with (approximate) LRU
replacement — 264 bytes total (16 x (4 x 32-bit PCs + 4 bits)).  A hit at
a window boundary triggers the stored gating decisions directly in
hardware; a miss raises a nucleus interrupt into the CDE.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.core.policies import PolicyVector
from repro.core.signature import PhaseSignature
from repro.obs.events import EventKind
from repro.obs.tracer import NULL_TRACER, Tracer


class PolicyVectorTable:
    """Signature -> policy cache with LRU replacement.

    The hardware uses an approximate LRU; the model uses true LRU, which is
    the behaviour the approximation converges to (noted in DESIGN.md).
    """

    def __init__(self, n_entries: int = 16, tracer: Optional[Tracer] = None) -> None:
        if n_entries < 1:
            raise ValueError("PVT needs at least one entry")
        self.n_entries = n_entries
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._entries: "OrderedDict[PhaseSignature, PolicyVector]" = OrderedDict()
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, signature: PhaseSignature) -> Optional[PolicyVector]:
        """Probe the PVT at a window boundary."""
        self.lookups += 1
        tracer = self.tracer
        policy = self._entries.get(signature)
        if policy is None:
            self.misses += 1
            if tracer.active:
                tracer.emit(EventKind.PVT_MISS, tracer.now, {"signature": signature})
            return None
        self._entries.move_to_end(signature)
        self.hits += 1
        if tracer.active:
            tracer.emit(EventKind.PVT_HIT, tracer.now, {"signature": signature})
        return policy

    def peek(self, signature: PhaseSignature) -> Optional[PolicyVector]:
        """Read an entry without touching LRU order, stats, or the tracer.

        Used by the vectorized backend to decide whether a window boundary
        is policy-idle *before* performing the real :meth:`lookup`.
        """
        return self._entries.get(signature)

    def insert(
        self, signature: PhaseSignature, policy: PolicyVector
    ) -> Optional[Tuple[PhaseSignature, PolicyVector]]:
        """Register a phase; returns the evicted (signature, policy) if any.

        Evicted entries are stored to memory by the CDE and re-registered on
        a later capacity miss (§IV-A step 5).
        """
        entries = self._entries
        if signature in entries:
            entries.move_to_end(signature)
            entries[signature] = policy
            return None
        evicted = None
        if len(entries) >= self.n_entries:
            evicted = entries.popitem(last=False)
            self.evictions += 1
        entries[signature] = policy
        return evicted

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, signature: PhaseSignature) -> bool:
        return signature in self._entries

    @property
    def storage_bytes(self) -> float:
        """264 bytes for the paper's 16-entry configuration."""
        return self.n_entries * (4 * 4 + 0.5)
