"""The PowerChop controller: glues HTB, PVT and CDE into the simulator.

Runtime operation (paper §IV-A, Figure 4):

1. translation executions update the HTB, forming phase signatures;
2. at each 1000-translation window boundary the HTB initiates a PVT lookup;
3. a hit applies the stored gating decisions to the units;
4. a miss raises a nucleus interrupt into the CDE;
5. the CDE profiles new phases / re-registers evicted ones.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bt.region_cache import Translation
from repro.core.cde import CriticalityDecisionEngine, WindowStats
from repro.core.config import PowerChopConfig
from repro.core.htb import HotTranslationBuffer
from repro.core.policies import PolicyVector
from repro.core.pvt import PolicyVectorTable
from repro.core.signature import PhaseSignature
from repro.bt.nucleus import Nucleus
from repro.obs.events import EventKind
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.power.accounting import EnergyAccounting
from repro.uarch.config import DesignPoint
from repro.uarch.core import CoreModel


class PowerChopController:
    """Phase-triggered unit gating driven by translation execution."""

    def __init__(
        self,
        config: PowerChopConfig,
        design: DesignPoint,
        core: CoreModel,
        nucleus: Nucleus,
        accountant: Optional[EnergyAccounting] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        self.design = design
        self.core = core
        self.nucleus = nucleus
        self.accountant = accountant
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.htb = HotTranslationBuffer(
            config.htb_entries, config.window_size, tracer=self.tracer
        )
        self.pvt = PolicyVectorTable(config.pvt_entries, tracer=self.tracer)
        # The BT runtime publishes the workload's static-analysis facts on
        # the nucleus (the CDE's entry path); the CDE itself decides whether
        # the config lets it honour them.
        self.cde = CriticalityDecisionEngine(
            config,
            design,
            static_hints=getattr(nucleus, "static_hints", None),
            tracer=self.tracer,
        )

        #: Signature of the phase the previous window observed (trace-only
        #: state backing the PhaseEnter/Exit events).
        self._last_phase: Optional[PhaseSignature] = None
        self._measuring: Optional[PhaseSignature] = None
        #: Set when arming a measurement window required upsizing the MLC or
        #: powering the large BPU back on: that window observes cold
        #: structures, so its counters would understate criticality.  The
        #: controller treats it as warmup and measures the window after it
        #: (Algorithm 1's "insufficient information, keep collecting").
        self._measure_warming = False
        self._bpu_mode_this_window = core.states.bpu_large_on
        self._snap_instructions = core.counters.instructions
        self._snap_simd = core.counters.simd_instructions
        self._snap_branches = core.counters.branches
        self._snap_mispredicts = core.counters.mispredicts
        self._snap_mlc_hits = core.hierarchy.mlc.hits
        self._snap_mlc_accesses = core.hierarchy.mlc.accesses
        self._mlc_full_this_window = core.states.mlc_ways == design.mlc_assoc

        #: (signature, translation execution vector) per window, for the
        #: Fig. 8 phase-quality analysis.  Populated only when configured.
        self.phase_log: List[Tuple[PhaseSignature, dict]] = []
        self.windows_seen = 0
        self.translation_executions = 0

        nucleus.register(
            "pvt_miss", self._handle_pvt_miss, config.cde_interrupt_cycles
        )

    # ------------------------------------------------------------ plumbing

    def on_translation_entry(self, translation: Translation, now_cycles: float) -> float:
        """HTB update on a translation-head execution (§IV-B2).

        Returns extra cycles consumed by window-boundary processing (gating
        transitions, CDE interrupts), zero in the common case.
        """
        self.translation_executions += 1
        if self.htb.record(translation.tid, translation.n_instr):
            return self._window_end(now_cycles)
        return 0.0

    def _window_stats(self) -> WindowStats:
        counters = self.core.counters
        mlc = self.core.hierarchy.mlc
        mlc_hits = mlc.hits
        mlc_accesses = mlc.accesses
        stats = WindowStats(
            instructions=counters.instructions - self._snap_instructions,
            simd_instructions=counters.simd_instructions - self._snap_simd,
            mlc_hits=mlc_hits - self._snap_mlc_hits,
            mlc_accesses=mlc_accesses - self._snap_mlc_accesses,
            branches=counters.branches - self._snap_branches,
            mispredicts=counters.mispredicts - self._snap_mispredicts,
            bpu_large_active=self._bpu_mode_this_window,
            mlc_at_full_ways=self._mlc_full_this_window,
        )
        self._snap_instructions = counters.instructions
        self._snap_simd = counters.simd_instructions
        self._snap_branches = counters.branches
        self._snap_mispredicts = counters.mispredicts
        self._snap_mlc_hits = mlc_hits
        self._snap_mlc_accesses = mlc_accesses
        return stats

    def _window_end(self, now_cycles: float) -> float:
        self.windows_seen += 1
        listener = self.core.fastpath_listener
        if listener is not None:
            # Window boundaries are where phase behaviour may shift:
            # conservatively reset the fast path's replay streaks.
            listener.note_window()
        signature = self.htb.signature(self.config.signature_length)
        tracer = self.tracer
        if tracer.active:
            # Window-boundary processing happens "at" now_cycles; advance
            # the tracer clock so every event emitted below (PVT probe, CDE
            # decision, gating transitions) is stamped consistently.
            tracer.now = now_cycles
            if signature != self._last_phase:
                if self._last_phase is not None:
                    tracer.emit(
                        EventKind.PHASE_EXIT,
                        now_cycles,
                        {"signature": self._last_phase, "window": self.windows_seen},
                    )
                tracer.emit(
                    EventKind.PHASE_ENTER,
                    now_cycles,
                    {"signature": signature, "window": self.windows_seen},
                )
                self._last_phase = signature
        if self.config.collect_phase_vectors:
            self.phase_log.append((signature, self.htb.translation_vector()))
        stats = self._window_stats()
        if self.windows_seen <= self.config.warmup_windows:
            # Warmup epoch: caches, predictors and the region cache are
            # still filling, so criticality measured now would not reflect
            # the phase's steady-state behaviour.  Keep observing only.
            self.htb.flush()
            self._bpu_mode_this_window = (
                self.core.states.bpu_large_on and not self.core.bpu.force_small
            )
            self._mlc_full_this_window = (
                self.core.states.mlc_ways == self.design.mlc_assoc
            )
            return 0.0
        cycles = 0.0

        # Step A: if the window that just ended was a measurement window for
        # a phase in profiling mode, hand its counters to the CDE.  If the
        # phase changed mid-profiling the partial profile is kept and resumed
        # the next time the phase recurs (Algorithm 1's "continued phase").
        if self._measuring is not None:
            if self._measuring == signature:
                if self._measure_warming:
                    # First window after the measurement configuration
                    # powered up a cold structure: keep collecting instead.
                    self._measure_warming = False
                else:
                    policy = self.cde.feed_profile_window(signature, stats)
                    if policy is not None:
                        self._register(signature, policy)
                        self._measuring = None
            else:
                self._measuring = None
                self._measure_warming = False

        # Step B: the PVT lookup the HTB initiates at every window boundary.
        policy = self.pvt.lookup(signature)
        if policy is not None:
            cycles += self._apply_policy(policy, now_cycles)
        else:
            cycles += self.nucleus.raise_interrupt("pvt_miss", signature, now_cycles)

        self.htb.flush()
        self._bpu_mode_this_window = (
            self.core.states.bpu_large_on and not self.core.bpu.force_small
        )
        self._mlc_full_this_window = (
            self.core.states.mlc_ways == self.design.mlc_assoc
        )
        return cycles

    def _handle_pvt_miss(self, signature: PhaseSignature, now_cycles: float) -> float:
        action, payload = self.cde.on_pvt_miss(
            signature,
            current_vpu_on=self.core.states.vpu_on,
            current_mlc_ways=self.core.states.mlc_ways,
        )
        if action == "ignore":
            return 0.0
        if action == "register":
            self._register(signature, payload)
            return self._apply_policy(payload, now_cycles)
        # Profiling: configure the measurement state for the next window.
        self._measuring = signature
        return self._arm_measurement(payload, now_cycles)

    def _register(self, signature: PhaseSignature, policy: PolicyVector) -> None:
        evicted = self.pvt.insert(signature, policy)
        if evicted is not None:
            self.cde.store_evicted(*evicted)

    # --------------------------------------------------------- unit gating

    def _trace_switch(
        self,
        unit: str,
        old,
        new,
        cost: float,
        now_cycles: float,
        arm: bool = False,
        writebacks: Optional[int] = None,
    ) -> None:
        """Emit one UnitGate/Regate event (caller guards ``tracer.active``).

        A VPU or BPU power-up, and an MLC way increase, is a *regate* (pays
        the rewarm `cost`); the opposite direction is a *gate*.  VPU events
        snapshot ``native_ops`` and BPU events ``lookups`` so trace
        consumers can prove what ran inside each interval.
        """
        gate = new < old if unit == "mlc" else (old and not new)
        payload = {
            "unit": unit,
            "from": int(old),
            "to": int(new),
            "cost_cycles": cost,
        }
        if unit == "vpu":
            payload["native_ops"] = self.core.vpu.native_ops
        elif unit == "bpu":
            payload["lookups"] = self.core.bpu.lookups
        if writebacks is not None:
            payload["writebacks"] = writebacks
        if arm:
            payload["arm"] = True
        self.tracer.emit(
            EventKind.UNIT_GATE if gate else EventKind.UNIT_REGATE,
            now_cycles,
            payload,
        )

    def _arm_measurement(self, payload: PolicyVector, now_cycles: float) -> float:
        """Configure the hardware for a CDE profiling window.

        Differs from applying a real policy in two ways.  First, measuring
        ``MisPred_Small`` routes predictions through the (always-powered)
        small predictor instead of power gating the large side — gating
        would flush the tournament state and poison the *next* phase's
        ``MisPred_Large`` measurement.  Second, powering up a cold
        structure (large BPU, gated MLC ways) marks the next window as
        warmup so criticality is not measured against cold state.
        """
        core = self.core
        design = self.design
        cycles = 0.0
        self._measure_warming = False
        listener = core.fastpath_listener
        if listener is not None:
            listener.note_policy_action()

        if payload.vpu_on != core.states.vpu_on:
            # Only the static pre-pass arms a measurement window with the
            # VPU in a different state (gated, for a statically VPU-dead
            # phase); powering *down* needs no warmup window.
            cost = design.vpu_switch_cycles + design.vpu_save_restore_cycles
            cycles += cost
            was_on = core.states.vpu_on
            core.apply_vpu_state(payload.vpu_on)
            if self.accountant is not None:
                self.accountant.on_switch("vpu", payload.vpu_on, now_cycles)
            if self.tracer.active:
                self._trace_switch(
                    "vpu", was_on, payload.vpu_on, cost, now_cycles, arm=True
                )

        core.bpu.force_small = not payload.bpu_on
        if payload.bpu_on and not core.states.bpu_large_on:
            cycles += design.bpu_switch_cycles
            core.apply_bpu_state(True)
            if self.accountant is not None:
                self.accountant.on_switch("bpu", True, now_cycles)
            if self.tracer.active:
                self._trace_switch(
                    "bpu", False, True, design.bpu_switch_cycles, now_cycles, arm=True
                )
            self._measure_warming = True

        if payload.mlc_ways > core.states.mlc_ways:
            old_ways = core.states.mlc_ways
            core.apply_mlc_state(payload.mlc_ways)  # upsize: no writebacks
            cycles += design.mlc_switch_cycles
            if self.accountant is not None:
                self.accountant.on_switch("mlc", payload.mlc_ways, now_cycles)
            if self.tracer.active:
                self._trace_switch(
                    "mlc",
                    old_ways,
                    payload.mlc_ways,
                    design.mlc_switch_cycles,
                    now_cycles,
                    arm=True,
                    writebacks=0,
                )
            self._measure_warming = True

        return cycles

    def _apply_policy(self, policy: PolicyVector, now_cycles: float) -> float:
        """Drive unit states to ``policy``; returns transition stall cycles."""
        core = self.core
        design = self.design
        states = core.states
        cycles = 0.0
        core.bpu.force_small = False
        listener = core.fastpath_listener
        if listener is not None:
            listener.note_policy_action()

        if policy.vpu_on != states.vpu_on:
            cost = design.vpu_switch_cycles + design.vpu_save_restore_cycles
            cycles += cost
            was_on = states.vpu_on
            core.apply_vpu_state(policy.vpu_on)
            if self.accountant is not None:
                self.accountant.on_switch("vpu", policy.vpu_on, now_cycles)
            if self.tracer.active:
                self._trace_switch("vpu", was_on, policy.vpu_on, cost, now_cycles)

        if policy.bpu_on != states.bpu_large_on:
            cycles += design.bpu_switch_cycles
            was_on = states.bpu_large_on
            core.apply_bpu_state(policy.bpu_on)
            if self.accountant is not None:
                self.accountant.on_switch("bpu", policy.bpu_on, now_cycles)
            if self.tracer.active:
                self._trace_switch(
                    "bpu", was_on, policy.bpu_on, design.bpu_switch_cycles, now_cycles
                )

        if policy.mlc_ways != states.mlc_ways:
            old_ways = states.mlc_ways
            dirty = core.apply_mlc_state(policy.mlc_ways)
            cost = design.mlc_switch_cycles + dirty * design.writeback_cycles_per_line
            cycles += cost
            if self.accountant is not None:
                self.accountant.on_switch("mlc", policy.mlc_ways, now_cycles)
            if self.tracer.active:
                self._trace_switch(
                    "mlc", old_ways, policy.mlc_ways, cost, now_cycles,
                    writebacks=dirty,
                )

        return cycles

    # -------------------------------------------------------------- stats

    @property
    def pvt_miss_rate_per_translation(self) -> float:
        """PVT misses per executed translation (§IV-C3 reports 0.017 %)."""
        if not self.translation_executions:
            return 0.0
        return self.pvt.misses / self.translation_executions
