"""Hardware-only timeout gating baseline (paper §V-E).

The conventional approach PowerChop is compared against: power gate the VPU
after it has been idle for a fixed number of cycles, and gate it back on
(reactively, paying the full transition cost) the moment a vector
instruction needs it.  The paper sweeps timeout periods from 100 to 100 K
cycles and selects 20 K cycles as the best power saver within a 5 %
worst-case slowdown; that sweep is reproduced in
``benchmarks/test_ablation_timeout_sweep.py``.

Timeouts are only plausible for the VPU; the BPU and MLC are active nearly
continuously (§V-E), so this controller manages the VPU alone.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.blocks import BlockExec
from repro.obs.events import EventKind
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.power.accounting import EnergyAccounting
from repro.uarch.config import DesignPoint
from repro.uarch.core import CoreModel


class TimeoutVPUController:
    """Idleness-timeout power gating for the VPU."""

    def __init__(
        self,
        design: DesignPoint,
        core: CoreModel,
        timeout_cycles: float = 20_000.0,
        accountant: Optional[EnergyAccounting] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if timeout_cycles <= 0:
            raise ValueError("timeout must be positive")
        self.design = design
        self.core = core
        self.timeout_cycles = timeout_cycles
        self.accountant = accountant
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._last_vector_cycle = 0.0
        self.gate_offs = 0
        self.gate_ons = 0

    def _trace_switch(self, on: bool, cost: float, now_cycles: float) -> None:
        self.tracer.emit(
            EventKind.UNIT_REGATE if on else EventKind.UNIT_GATE,
            now_cycles,
            {
                "unit": "vpu",
                "from": int(not on),
                "to": int(on),
                "cost_cycles": cost,
                "native_ops": self.core.vpu.native_ops,
            },
        )

    def on_block(self, block_exec: BlockExec, now_cycles: float) -> float:
        """Run the timeout policy for one dynamic block.

        Must be called *before* the block executes so a vector instruction
        arriving at a gated-off VPU wakes the unit first (stalling execution
        for the transition, per §IV-D).  Returns stall cycles.
        """
        return self.step(block_exec.block.n_vec > 0, now_cycles)

    def step(self, uses_vpu: bool, now_cycles: float) -> float:
        """Policy core, taking the block's VPU use directly.

        Split from :meth:`on_block` so the fast-path run loop (which never
        materialises :class:`BlockExec` objects) can drive the identical
        state machine.
        """
        design = self.design
        core = self.core
        cycles = 0.0

        if uses_vpu:
            if not core.states.vpu_on:
                cost = design.vpu_switch_cycles + design.vpu_save_restore_cycles
                cycles += cost
                core.apply_vpu_state(True)
                self.gate_ons += 1
                if self.accountant is not None:
                    self.accountant.on_switch("vpu", True, now_cycles)
                if self.tracer.active:
                    self._trace_switch(True, cost, now_cycles)
            self._last_vector_cycle = now_cycles
        elif (
            core.states.vpu_on
            and now_cycles - self._last_vector_cycle > self.timeout_cycles
        ):
            cost = design.vpu_switch_cycles + design.vpu_save_restore_cycles
            cycles += cost
            core.apply_vpu_state(False)
            self.gate_offs += 1
            if self.accountant is not None:
                self.accountant.on_switch("vpu", False, now_cycles)
            if self.tracer.active:
                self._trace_switch(False, cost, now_cycles)

        return cycles
