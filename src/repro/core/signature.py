"""Phase signatures (§IV-B1).

A phase signature is the set of the N hottest translations (by dynamic
instruction count) executed during one execution window.  The paper's
sensitivity analysis settles on N = 4 with a 1000-translation window; four
32-bit translation IDs make the 128-bit signature of Figure 6(b).
"""

from __future__ import annotations

from typing import Mapping, Tuple

#: A signature is an order-insensitive set of translation IDs, stored as a
#: sorted tuple so it is hashable and deterministic.
PhaseSignature = Tuple[int, ...]


def make_signature(
    instr_counts: Mapping[int, int], signature_length: int = 4
) -> PhaseSignature:
    """Build a signature from per-translation dynamic instruction counts.

    Ties are broken by translation ID so replayed runs produce identical
    signatures.  Windows with fewer than ``signature_length`` distinct
    translations yield shorter signatures (still valid identifiers).
    """
    if signature_length < 1:
        raise ValueError("signature length must be >= 1")
    hottest = sorted(instr_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return tuple(sorted(tid for tid, _count in hottest[:signature_length]))
