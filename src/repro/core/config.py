"""PowerChop configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.core.criticality import CriticalityThresholds


@dataclass(frozen=True)
class PowerChopConfig:
    """Tunables for the PowerChop mechanism.

    Defaults are the paper's chosen design point: 1000-translation
    execution windows, 4-translation signatures, a 128-entry HTB and a
    16-entry PVT (§IV-B).  ``managed_units`` restricts which units the CDE
    may gate — the per-unit isolation studies of §V-C manage one unit at a
    time.
    """

    window_size: int = 1000
    signature_length: int = 4
    htb_entries: int = 128
    pvt_entries: int = 16
    thresholds: CriticalityThresholds = field(default_factory=CriticalityThresholds)
    managed_units: Tuple[str, ...] = ("vpu", "bpu", "mlc")
    #: Cycle cost of one CDE invocation via the nucleus interrupt path.
    #: Calibrated so the paper's observed 0.017 % PVT-miss rate costs
    #: < 0.5 % performance (§IV-C3).
    cde_interrupt_cycles: float = 2000.0
    #: Windows to observe before the first gating decisions are made,
    #: letting caches/predictors and the region cache warm so phase profiles
    #: reflect steady-state behaviour (the paper profiles SimPoint regions,
    #: which are likewise measured post-warmup).
    warmup_windows: int = 8
    #: Phase-transition ("straddle") signatures mix two phases and rarely
    #: recur in consecutive windows, so their forward-scheduled profiling
    #: can never complete.  After this many failed attempts the CDE assigns
    #: the safe full-power policy instead of re-arming measurement forever.
    max_profile_attempts: int = 3
    #: Use the extended 4-state MLC gating policy (adds a quarter-ways
    #: state via the PVT's reserved M=0b10 encoding; paper §IV-B3 notes
    #: states can be added this way).  Off by default — the paper evaluates
    #: the 3-state policy.
    extended_mlc_states: bool = False
    #: Collect per-window translation vectors for the Fig. 8 phase-quality
    #: analysis (costs memory; off by default).
    collect_phase_vectors: bool = False
    #: Consult the static-analysis pre-pass (repro.staticcheck): when every
    #: translation in a new phase's signature comes from a region statically
    #: proven to issue zero vector ops, the CDE skips the VPU measurement
    #: and gates the VPU for the profiling windows themselves.  Off by
    #: default — the paper's CDE is purely dynamic — so runs are A/B
    #: comparable via the sweep engine.
    use_static_hints: bool = False

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError("window_size must be >= 1")
        if self.signature_length < 1:
            raise ValueError("signature_length must be >= 1")
        if self.htb_entries < self.signature_length:
            raise ValueError("HTB must hold at least signature_length entries")
        if self.pvt_entries < 1:
            raise ValueError("PVT needs at least one entry")
        if not self.managed_units:
            raise ValueError("managed_units must name at least one unit")
        unknown = set(self.managed_units) - {"vpu", "bpu", "mlc"}
        if unknown:
            raise ValueError(f"unknown managed units {sorted(unknown)}")
        if self.cde_interrupt_cycles < 0:
            raise ValueError("cde_interrupt_cycles must be non-negative")
