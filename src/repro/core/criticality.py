"""Unit criticality scoring and policy decisions (§IV-C2).

- ``Criticality_VPU``  = SIMD instructions / total instructions in a
  profiling window; gate the VPU off below ``Threshold_VPU``.
- ``Criticality_BPU``  = mispred(small) - mispred(large), measured over two
  profiling windows (large predictor active in the first, small in the
  second); gate the large BPU off below ``Threshold_BPU``.
- ``Criticality_MLC``  = MLC hits / total instructions in one window; all
  ways above ``Threshold_MLC1``, one way below ``Threshold_MLC2``, half the
  ways otherwise.

The paper's threshold sentence is truncated in the available text; the
defaults here (0.01 / 0.01 / 0.01 / 0.001) were validated by the
sensitivity sweep in ``benchmarks/test_ablation_thresholds.py`` and are
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.policies import PolicyVector
from repro.uarch.config import DesignPoint


@dataclass(frozen=True)
class CriticalityThresholds:
    """Gating thresholds (paper §V-A, 'Criticality Thresholds')."""

    vpu: float = 0.01
    bpu: float = 0.01
    mlc_high: float = 0.01  # Threshold_MLC1: above -> keep all ways
    mlc_low: float = 0.001  # Threshold_MLC2: below -> keep one way

    def __post_init__(self) -> None:
        if self.mlc_low > self.mlc_high:
            raise ValueError("Threshold_MLC2 must not exceed Threshold_MLC1")
        if min(self.vpu, self.bpu, self.mlc_high, self.mlc_low) < 0:
            raise ValueError("thresholds must be non-negative")

    @property
    def mlc_mid(self) -> float:
        """Extra threshold for the extended 4-state MLC policy: splits the
        half-ways band into half (above) and quarter (below) ways.  Taken
        as the geometric midpoint of the two paper thresholds."""
        return (self.mlc_low * self.mlc_high) ** 0.5

    @classmethod
    def aggressive(cls) -> "CriticalityThresholds":
        """Energy-minimising thresholds (paper §V-A: 'more aggressive
        policies using higher thresholds that target energy minimization').

        Units must earn substantially more performance to stay powered, so
        more execution runs gated at a larger performance cost; compare
        against the defaults with ``benchmarks/test_ablation_thresholds``.
        """
        return cls(vpu=0.05, bpu=0.03, mlc_high=0.05, mlc_low=0.01)

    @classmethod
    def conservative(cls) -> "CriticalityThresholds":
        """Performance-protecting thresholds: gate only clearly-dead units."""
        return cls(vpu=0.001, bpu=0.002, mlc_high=0.002, mlc_low=0.0002)


@dataclass(frozen=True)
class CriticalityScores:
    """Per-unit criticality measured for one phase."""

    vpu: float
    bpu: float
    mlc: float


def vpu_criticality(simd_instructions: int, total_instructions: int) -> float:
    """Phase_SIMD / Phase_TotInsn."""
    if total_instructions <= 0:
        return 0.0
    return simd_instructions / total_instructions


def bpu_criticality(mispred_rate_small: float, mispred_rate_large: float) -> float:
    """MisPred_Small - MisPred_Large (how much the tournament helps)."""
    return mispred_rate_small - mispred_rate_large


def mlc_criticality(mlc_hits: int, total_instructions: int) -> float:
    """Phase_L2Hit / Phase_TotInsn."""
    if total_instructions <= 0:
        return 0.0
    return mlc_hits / total_instructions


def decide_policy(
    scores: CriticalityScores,
    thresholds: CriticalityThresholds,
    design: DesignPoint,
    managed_units: Iterable[str] = ("vpu", "bpu", "mlc"),
    extended_mlc_states: bool = False,
) -> PolicyVector:
    """Map criticality scores to a gating policy vector.

    Units outside ``managed_units`` stay in their full-power state (this is
    how the paper's per-unit isolation studies, §V-C, are run).  With
    ``extended_mlc_states`` the MLC uses the 4-state policy (adds a
    quarter-ways band below ``thresholds.mlc_mid``), exercising the paper's
    note that states can be added via extra PVT encodings.
    """
    managed = set(managed_units)
    unknown = managed - {"vpu", "bpu", "mlc"}
    if unknown:
        raise ValueError(f"unknown managed units {sorted(unknown)}")

    vpu_on = True
    if "vpu" in managed and scores.vpu <= thresholds.vpu:
        vpu_on = False

    bpu_on = True
    if "bpu" in managed and scores.bpu <= thresholds.bpu:
        bpu_on = False

    one_way, quarter_ways, half_ways, all_ways = design.mlc_way_states_extended
    mlc_ways = all_ways
    if "mlc" in managed:
        if scores.mlc > thresholds.mlc_high:
            mlc_ways = all_ways
        elif scores.mlc <= thresholds.mlc_low:
            mlc_ways = one_way
        elif extended_mlc_states and scores.mlc <= thresholds.mlc_mid:
            mlc_ways = quarter_ways
        else:
            mlc_ways = half_ways

    return PolicyVector(vpu_on=vpu_on, bpu_on=bpu_on, mlc_ways=mlc_ways)
