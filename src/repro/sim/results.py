"""Simulation result records and cross-run comparison metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.power.accounting import EnergyReport


@dataclass
class SimulationResult:
    """Everything one simulation run produces."""

    benchmark: str
    suite: str
    design: str
    mode: str

    instructions: int = 0
    micro_ops: int = 0
    cycles: float = 0.0
    energy: Optional[EnergyReport] = None

    branches: int = 0
    mispredicts: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    mlc_hits: int = 0
    mlc_misses: int = 0
    mlc_writebacks: int = 0

    interpreted_instructions: int = 0
    translations_built: int = 0
    translation_executions: int = 0

    windows: int = 0
    pvt_lookups: int = 0
    pvt_hits: int = 0
    pvt_misses: int = 0
    pvt_evictions: int = 0
    cde_invocations: int = 0
    new_phases: int = 0
    switch_counts: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)
    #: Metrics-registry snapshot (``repro.obs.metrics``); populated only
    #: when the run's ``obs_level`` is ``metrics`` or ``full``, else empty.
    metrics: Dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    @property
    def mlc_hit_rate(self) -> float:
        accesses = self.mlc_hits + self.mlc_misses
        return self.mlc_hits / accesses if accesses else 0.0

    @property
    def pvt_miss_rate_per_translation(self) -> float:
        if not self.translation_executions:
            return 0.0
        return self.pvt_misses / self.translation_executions

    def switches_per_million_cycles(self, unit: str) -> float:
        """Fig. 11's metric: gating state changes per million cycles."""
        if not self.cycles:
            return 0.0
        return self.switch_counts.get(unit, 0) * 1e6 / self.cycles

    def to_dict(self) -> Dict:
        """JSON-serialisable form; inverse of :meth:`from_dict`.

        Derived metrics (``ipc``, rates) are included read-only for
        machine consumers; ``from_dict`` ignores them.
        """
        data = {
            "benchmark": self.benchmark,
            "suite": self.suite,
            "design": self.design,
            "mode": self.mode,
            "instructions": self.instructions,
            "micro_ops": self.micro_ops,
            "cycles": self.cycles,
            "energy": self.energy.to_dict() if self.energy else None,
            "branches": self.branches,
            "mispredicts": self.mispredicts,
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "mlc_hits": self.mlc_hits,
            "mlc_misses": self.mlc_misses,
            "mlc_writebacks": self.mlc_writebacks,
            "interpreted_instructions": self.interpreted_instructions,
            "translations_built": self.translations_built,
            "translation_executions": self.translation_executions,
            "windows": self.windows,
            "pvt_lookups": self.pvt_lookups,
            "pvt_hits": self.pvt_hits,
            "pvt_misses": self.pvt_misses,
            "pvt_evictions": self.pvt_evictions,
            "cde_invocations": self.cde_invocations,
            "new_phases": self.new_phases,
            "switch_counts": dict(self.switch_counts),
            "extra": dict(self.extra),
            "metrics": dict(self.metrics),
            "derived": {
                "ipc": self.ipc,
                "mispredict_rate": self.mispredict_rate,
                "mlc_hit_rate": self.mlc_hit_rate,
                "avg_power_w": self.energy.avg_power_w if self.energy else 0.0,
                "total_j": self.energy.total_j if self.energy else 0.0,
            },
        }
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (or parsed JSON)."""
        energy = data.get("energy")
        return cls(
            benchmark=data["benchmark"],
            suite=data["suite"],
            design=data["design"],
            mode=data["mode"],
            instructions=data["instructions"],
            micro_ops=data["micro_ops"],
            cycles=data["cycles"],
            energy=EnergyReport.from_dict(energy) if energy else None,
            branches=data["branches"],
            mispredicts=data["mispredicts"],
            l1_hits=data["l1_hits"],
            l1_misses=data["l1_misses"],
            mlc_hits=data["mlc_hits"],
            mlc_misses=data["mlc_misses"],
            mlc_writebacks=data["mlc_writebacks"],
            interpreted_instructions=data["interpreted_instructions"],
            translations_built=data["translations_built"],
            translation_executions=data["translation_executions"],
            windows=data["windows"],
            pvt_lookups=data["pvt_lookups"],
            pvt_hits=data["pvt_hits"],
            pvt_misses=data["pvt_misses"],
            pvt_evictions=data["pvt_evictions"],
            cde_invocations=data["cde_invocations"],
            new_phases=data["new_phases"],
            switch_counts=dict(data["switch_counts"]),
            extra=dict(data["extra"]),
            metrics=dict(data.get("metrics", {})),
        )


def _require_same_workload(baseline: SimulationResult, other: SimulationResult) -> None:
    if baseline.benchmark != other.benchmark or baseline.design != other.design:
        raise ValueError(
            "comparisons require the same benchmark and design: "
            f"{baseline.benchmark}/{baseline.design} vs {other.benchmark}/{other.design}"
        )


def slowdown(baseline: SimulationResult, other: SimulationResult) -> float:
    """Relative slowdown of ``other`` vs ``baseline`` (0.02 = 2 % slower)."""
    _require_same_workload(baseline, other)
    if not baseline.cycles:
        return 0.0
    return other.cycles / baseline.cycles - 1.0


def power_reduction(baseline: SimulationResult, other: SimulationResult) -> float:
    """Fractional total core power reduction (Fig. 13)."""
    _require_same_workload(baseline, other)
    base = baseline.energy.avg_power_w if baseline.energy else 0.0
    if not base:
        return 0.0
    return 1.0 - (other.energy.avg_power_w if other.energy else 0.0) / base


def energy_reduction(baseline: SimulationResult, other: SimulationResult) -> float:
    """Fractional total energy reduction (Fig. 13)."""
    _require_same_workload(baseline, other)
    base = baseline.energy.total_j if baseline.energy else 0.0
    if not base:
        return 0.0
    return 1.0 - (other.energy.total_j if other.energy else 0.0) / base


def leakage_reduction(baseline: SimulationResult, other: SimulationResult) -> float:
    """Fractional leakage power reduction (Fig. 14)."""
    _require_same_workload(baseline, other)
    base = baseline.energy.avg_leakage_w if baseline.energy else 0.0
    if not base:
        return 0.0
    return 1.0 - (other.energy.avg_leakage_w if other.energy else 0.0) / base
