"""Parameter sweeps (sensitivity and ablation studies)."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.config import PowerChopConfig
from repro.core.criticality import CriticalityThresholds
from repro.sim.results import (
    SimulationResult,
    power_reduction,
    slowdown,
)
from repro.sim.simulator import GatingMode, run_simulation
from repro.uarch.config import DesignPoint
from repro.workloads.profiles import BenchmarkProfile


def _compare_record(
    label: str,
    full: SimulationResult,
    managed: SimulationResult,
) -> Dict[str, float]:
    return {
        "label": label,
        "slowdown": slowdown(full, managed),
        "power_reduction": power_reduction(full, managed),
        "vpu_gated_frac": managed.energy.vpu_gated_frac,
        "bpu_gated_frac": managed.energy.bpu_gated_frac,
    }


def sweep_powerchop_thresholds(
    design: DesignPoint,
    profile: BenchmarkProfile,
    vpu_thresholds: Iterable[float],
    max_instructions: int = 400_000,
) -> List[Dict[str, float]]:
    """Sweep Threshold_VPU (and keep the others at defaults)."""
    full = run_simulation(
        design, profile, GatingMode.FULL, max_instructions=max_instructions
    )
    records = []
    for threshold in vpu_thresholds:
        config = PowerChopConfig(
            thresholds=CriticalityThresholds(vpu=threshold),
        )
        managed = run_simulation(
            design,
            profile,
            GatingMode.POWERCHOP,
            max_instructions=max_instructions,
            powerchop_config=config,
        )
        records.append(_compare_record(f"vpu_threshold={threshold}", full, managed))
    return records


def sweep_window_sizes(
    design: DesignPoint,
    profile: BenchmarkProfile,
    window_sizes: Iterable[int],
    max_instructions: int = 400_000,
) -> List[Dict[str, float]]:
    """Sweep the execution window size (paper's sensitivity analysis)."""
    full = run_simulation(
        design, profile, GatingMode.FULL, max_instructions=max_instructions
    )
    records = []
    for window in window_sizes:
        config = PowerChopConfig(window_size=window)
        managed = run_simulation(
            design,
            profile,
            GatingMode.POWERCHOP,
            max_instructions=max_instructions,
            powerchop_config=config,
        )
        record = _compare_record(f"window={window}", full, managed)
        record["pvt_miss_rate"] = managed.pvt_miss_rate_per_translation
        records.append(record)
    return records


def sweep_signature_lengths(
    design: DesignPoint,
    profile: BenchmarkProfile,
    lengths: Iterable[int],
    max_instructions: int = 400_000,
) -> List[Dict[str, float]]:
    """Sweep the phase signature length N (paper settles on N = 4)."""
    full = run_simulation(
        design, profile, GatingMode.FULL, max_instructions=max_instructions
    )
    records = []
    for length in lengths:
        config = PowerChopConfig(signature_length=length)
        managed = run_simulation(
            design,
            profile,
            GatingMode.POWERCHOP,
            max_instructions=max_instructions,
            powerchop_config=config,
        )
        record = _compare_record(f"signature_length={length}", full, managed)
        record["new_phases"] = managed.new_phases
        records.append(record)
    return records


def sweep_timeout_periods(
    design: DesignPoint,
    profile: BenchmarkProfile,
    timeout_cycles: Iterable[float],
    max_instructions: int = 400_000,
) -> List[Dict[str, float]]:
    """The §V-E timeout-period sweep (100 .. 100 K cycles)."""
    full = run_simulation(
        design, profile, GatingMode.FULL, max_instructions=max_instructions
    )
    records = []
    for timeout in timeout_cycles:
        managed = run_simulation(
            design,
            profile,
            GatingMode.TIMEOUT,
            max_instructions=max_instructions,
            timeout_cycles=timeout,
        )
        records.append(_compare_record(f"timeout={timeout:g}", full, managed))
    return records
