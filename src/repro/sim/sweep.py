"""Parameter sweeps (sensitivity and ablation studies).

All sweeps run through :mod:`repro.sim.engine`: each builds a batch of
declarative :class:`~repro.sim.engine.SimJob` specs (one shared full-power
baseline plus one managed run per swept value) and executes it with a
:class:`~repro.sim.engine.SweepRunner`, so repeated baselines are computed
once, results are cached on disk, and ``REPRO_JOBS`` parallelises the
batch without changing any value or ordering.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.config import PowerChopConfig
from repro.core.criticality import CriticalityThresholds
from repro.sim.engine import SimJob, SweepRunner
from repro.sim.results import (
    SimulationResult,
    power_reduction,
    slowdown,
)
from repro.sim.simulator import GatingMode
from repro.uarch.config import DesignPoint
from repro.workloads.profiles import BenchmarkProfile


def _compare_record(
    label: str,
    full: SimulationResult,
    managed: SimulationResult,
) -> Dict[str, float]:
    return {
        "label": label,
        "slowdown": slowdown(full, managed),
        "power_reduction": power_reduction(full, managed),
        "vpu_gated_frac": managed.energy.vpu_gated_frac,
        "bpu_gated_frac": managed.energy.bpu_gated_frac,
    }


def _run_with_baseline(
    design: DesignPoint,
    profile: BenchmarkProfile,
    max_instructions: int,
    managed_jobs: List[SimJob],
    runner: Optional[SweepRunner],
) -> tuple:
    """Run (full baseline, *managed jobs) as one engine batch."""
    baseline = SimJob(
        profile=profile,
        design=design,
        mode=GatingMode.FULL,
        max_instructions=max_instructions,
    )
    records = (runner or SweepRunner()).run([baseline, *managed_jobs])
    return records[0].result, [record.result for record in records[1:]]


def sweep_powerchop_thresholds(
    design: DesignPoint,
    profile: BenchmarkProfile,
    vpu_thresholds: Iterable[float],
    max_instructions: int = 400_000,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    """Sweep Threshold_VPU (and keep the others at defaults)."""
    thresholds = list(vpu_thresholds)
    jobs = [
        SimJob(
            profile=profile,
            design=design,
            mode=GatingMode.POWERCHOP,
            powerchop_config=PowerChopConfig(
                thresholds=CriticalityThresholds(vpu=threshold),
            ),
            max_instructions=max_instructions,
        )
        for threshold in thresholds
    ]
    full, managed = _run_with_baseline(design, profile, max_instructions, jobs, runner)
    return [
        _compare_record(f"vpu_threshold={threshold}", full, result)
        for threshold, result in zip(thresholds, managed)
    ]


def sweep_window_sizes(
    design: DesignPoint,
    profile: BenchmarkProfile,
    window_sizes: Iterable[int],
    max_instructions: int = 400_000,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    """Sweep the execution window size (paper's sensitivity analysis)."""
    windows = list(window_sizes)
    jobs = [
        SimJob(
            profile=profile,
            design=design,
            mode=GatingMode.POWERCHOP,
            powerchop_config=PowerChopConfig(window_size=window),
            max_instructions=max_instructions,
        )
        for window in windows
    ]
    full, managed = _run_with_baseline(design, profile, max_instructions, jobs, runner)
    records = []
    for window, result in zip(windows, managed):
        record = _compare_record(f"window={window}", full, result)
        record["pvt_miss_rate"] = result.pvt_miss_rate_per_translation
        records.append(record)
    return records


def sweep_signature_lengths(
    design: DesignPoint,
    profile: BenchmarkProfile,
    lengths: Iterable[int],
    max_instructions: int = 400_000,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    """Sweep the phase signature length N (paper settles on N = 4)."""
    lengths = list(lengths)
    jobs = [
        SimJob(
            profile=profile,
            design=design,
            mode=GatingMode.POWERCHOP,
            powerchop_config=PowerChopConfig(signature_length=length),
            max_instructions=max_instructions,
        )
        for length in lengths
    ]
    full, managed = _run_with_baseline(design, profile, max_instructions, jobs, runner)
    records = []
    for length, result in zip(lengths, managed):
        record = _compare_record(f"signature_length={length}", full, result)
        record["new_phases"] = result.new_phases
        records.append(record)
    return records


def sweep_timeout_periods(
    design: DesignPoint,
    profile: BenchmarkProfile,
    timeout_cycles: Iterable[float],
    max_instructions: int = 400_000,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    """The §V-E timeout-period sweep (100 .. 100 K cycles)."""
    timeouts = list(timeout_cycles)
    jobs = [
        SimJob(
            profile=profile,
            design=design,
            mode=GatingMode.TIMEOUT,
            timeout_cycles=timeout,
            max_instructions=max_instructions,
        )
        for timeout in timeouts
    ]
    full, managed = _run_with_baseline(design, profile, max_instructions, jobs, runner)
    return [
        _compare_record(f"timeout={timeout:g}", full, result)
        for timeout, result in zip(timeouts, managed)
    ]
