"""Unified simulation engine: declarative jobs, result caching, sweeps.

This is the single way to describe, instrument, run and cache simulations:

- :class:`SimJob` — a frozen, hashable description of one run (benchmark or
  inline profile, design point, gating mode, PowerChop configuration,
  instruction budget, seed, probe set) with a stable content-hash
  :meth:`~SimJob.key`;
- :func:`execute_job` — run one job from scratch (also the process-pool
  worker function, so everything a job references must be picklable);
- :func:`run_job` — execute with two cache layers: a per-process memo (so
  repeated calls return the *same* objects) and a persistent on-disk JSON
  :class:`ResultCache` keyed by job hash plus schema/code version;
- :class:`SweepRunner` — run batches of jobs across a
  ``ProcessPoolExecutor`` (worker count from ``REPRO_JOBS``; results come
  back in job order regardless of completion order, bit-identical to the
  serial path).

Environment knobs: ``REPRO_JOBS`` (default worker count, default 1),
``REPRO_CACHE_DIR`` (cache directory, default ``~/.cache/repro-powerchop``),
``REPRO_CACHE=0`` to disable the on-disk layer entirely and
``REPRO_CACHE_BUDGET`` (bytes; 0 or unset = unbounded) to cap the on-disk
cache size with LRU eviction.

The fault-tolerant service layer over this engine — retries, timeouts,
crash isolation, progress streaming — lives in :mod:`repro.sim.fabric`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import PowerChopConfig
from repro.obs.tracer import OBS_LEVELS
from repro.sim.backends import resolve_backend_name
from repro.sim.probes import MetricsProbe, PhaseLogProbe, ProbeSpec, TraceProbe
from repro.sim.results import SimulationResult
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.staticcheck.proofs import ProofStore
from repro.uarch.config import DesignPoint, design_for_suite
from repro.workloads.profiles import BenchmarkProfile, build_workload
from repro.workloads.suites import get_profile

__all__ = [
    "NON_KEY_FIELDS",
    "SCHEMA_MIGRATIONS",
    "SimJob",
    "JobRecord",
    "ResultCache",
    "SweepRunner",
    "execute_job",
    "failed_record",
    "register_schema_migration",
    "run_job",
    "run_jobs",
    "clear_memo",
    "memo_get",
    "memo_put",
    "default_workers",
]

#: Bump when result semantics or the cache schema change; entries written
#: under an older schema are fed through the :data:`SCHEMA_MIGRATIONS`
#: chain on read and treated as misses only when no chain reaches the
#: current version.  v2: POWERCHOP results gained the static-pre-pass
#: counters in ``extra``.  v3: results gained the ``metrics`` registry
#: snapshot (``repro.obs.metrics``, ``METRICS_SCHEMA_VERSION``) and jobs
#: the ``obs_level`` field.  v4: jobs gained the ``backend`` field
#: (excluded from the key — see ``NON_KEY_FIELDS``) and ``fastpath``
#: became a deprecated alias for it.
CACHE_SCHEMA_VERSION = 4

#: Schema-version migration hooks: ``{from_version: fn(payload) -> payload}``.
#: Each hook receives the raw JSON payload of an entry written under
#: ``from_version`` and must return a payload valid under a *newer*
#: version, with its ``"schema"`` field updated.  :meth:`ResultCache.get`
#: chains hooks until the payload reaches ``CACHE_SCHEMA_VERSION`` (or no
#: hook applies — then the entry is a miss).  The schema version is
#: deliberately *not* part of :meth:`SimJob.key`, so a bump alone does not
#: orphan entries — registering a migration keeps them readable.
SCHEMA_MIGRATIONS: Dict[int, Callable[[Dict[str, Any]], Dict[str, Any]]] = {}


def register_schema_migration(
    from_version: int,
) -> Callable[[Callable[[Dict[str, Any]], Dict[str, Any]]], Callable[[Dict[str, Any]], Dict[str, Any]]]:
    """Decorator registering a cache payload migration from ``from_version``."""

    def _register(fn: Callable[[Dict[str, Any]], Dict[str, Any]]):
        SCHEMA_MIGRATIONS[from_version] = fn
        return fn

    return _register

#: Job fields deliberately EXCLUDED from :meth:`SimJob.key`.  Two kinds of
#: member:
#:
#: - ``backend`` / ``fastpath``: every execution backend is bit-identical
#:   to the reference loop (enforced by tests/test_backends.py), so runs
#:   that differ only in backend produce the same result and may share
#:   cache entries;
#: - ``configure``: an opaque callable that cannot be content-hashed; its
#:   effect is represented in the key by the mandatory ``cache_tag``
#:   instead (enforced in ``__post_init__``);
#: - ``use_proofs``: proof certificates are *inert* — a run with a
#:   certificate attached is bit-identical to one without (enforced by
#:   tests/test_proofs.py), so jobs that differ only in ``use_proofs``
#:   share cache entries.
#:
#: Adding a field to SimJob?  It must appear either in ``key()`` or here —
#: tests/test_backends.py cross-checks the split is exhaustive.
NON_KEY_FIELDS = frozenset({"backend", "fastpath", "configure", "use_proofs"})

_MANAGED_UNITS = ("vpu", "bpu", "mlc")


def _code_version() -> str:
    # Imported lazily: repro/__init__ imports repro.sim, which imports this
    # module, so a top-level ``from repro import __version__`` would run
    # against the half-initialised package.
    from repro import __version__

    return __version__


# ------------------------------------------------------------------- jobs


@dataclass(frozen=True)
class SimJob:
    """Declarative description of one simulation run.

    Exactly one of ``benchmark`` (a suite-registry name) or ``profile`` (an
    inline :class:`BenchmarkProfile`) names the workload; the workload is
    reconstructed from the spec inside each worker process, so jobs stay
    cheap to ship around.  ``design=None`` uses the paper's suite pairing.

    ``configure`` is an escape hatch for imperative simulator tweaks the
    spec cannot express.  Because the callback's effect is invisible to the
    content hash, any job carrying one *must* also carry a non-empty
    ``cache_tag`` that uniquely names the configuration — otherwise cached
    results could be served for a differently-configured run.
    """

    benchmark: str = ""
    profile: Optional[BenchmarkProfile] = None
    design: Optional[DesignPoint] = None
    mode: GatingMode = GatingMode.FULL
    powerchop_config: Optional[PowerChopConfig] = None
    managed_units: Tuple[str, ...] = _MANAGED_UNITS
    timeout_cycles: float = 20_000.0
    max_instructions: int = 1_000_000
    seed: Optional[int] = None
    collect_phase_log: bool = False
    probes: Tuple[ProbeSpec, ...] = ()
    obs_level: str = "off"
    #: Execution backend name ("reference" / "fastpath" / "vectorized";
    #: None = the registry default).  In ``NON_KEY_FIELDS``: backends are
    #: bit-identical, so results are backend-independent.
    backend: Optional[str] = None
    #: Deprecated boolean spelling of ``backend`` (True → "fastpath",
    #: False → "reference"); also in ``NON_KEY_FIELDS``.
    fastpath: Optional[bool] = None
    #: Attach a proof certificate (``repro.staticcheck.proofs``) to the
    #: run: fetched from the :class:`ProofStore` (or freshly certified),
    #: fingerprint-validated against the built workload, and consumed by
    #: the vectorized backend for walk-trace memoization.  Inert — results
    #: are bit-identical either way — so also in ``NON_KEY_FIELDS``.
    use_proofs: bool = False
    configure: Optional[Callable[[HybridSimulator], None]] = None
    cache_tag: str = ""

    def __post_init__(self) -> None:
        if not self.benchmark and self.profile is None:
            raise ValueError("SimJob needs a benchmark name or an inline profile")
        if self.benchmark and self.profile is not None:
            raise ValueError("pass either benchmark or profile, not both")
        if self.max_instructions < 1:
            raise ValueError("max_instructions must be >= 1")
        if self.timeout_cycles <= 0:
            raise ValueError("timeout_cycles must be positive")
        unknown = set(self.managed_units) - set(_MANAGED_UNITS)
        if unknown:
            raise ValueError(f"unknown managed units {sorted(unknown)}")
        if self.obs_level not in OBS_LEVELS:
            raise ValueError(
                f"obs_level must be one of {OBS_LEVELS}, got {self.obs_level!r}"
            )
        # Validates the name and rejects conflicting backend/fastpath
        # settings at job-construction time rather than inside a worker.
        resolve_backend_name(self.backend, self.fastpath)
        if self.configure is not None and not self.cache_tag:
            raise ValueError(
                "a configure callback requires a non-empty cache_tag: the "
                "callback's effect is not part of the job hash, so an "
                "untagged job could be served stale results for a "
                "different configuration"
            )

    # ------------------------------------------------------------ resolve

    def resolve_profile(self) -> BenchmarkProfile:
        return self.profile if self.profile is not None else get_profile(self.benchmark)

    def resolve_design(self, profile: Optional[BenchmarkProfile] = None) -> DesignPoint:
        if self.design is not None:
            return self.design
        profile = profile if profile is not None else self.resolve_profile()
        return design_for_suite(profile.suite)

    def resolve_config(self) -> Optional[PowerChopConfig]:
        """The PowerChop config this job runs with (None outside POWERCHOP)."""
        if self.mode is not GatingMode.POWERCHOP:
            return None
        config = self.powerchop_config or PowerChopConfig(
            managed_units=self.managed_units
        )
        wants_log = self.collect_phase_log or any(
            isinstance(spec, PhaseLogProbe) for spec in self.probes
        )
        if wants_log and not config.collect_phase_vectors:
            config = replace(config, collect_phase_vectors=True)
        return config

    def resolve_obs_level(self) -> str:
        """The observability level the run actually needs.

        A :class:`~repro.sim.probes.TraceProbe` requires the full event
        stream, and a :class:`~repro.sim.probes.MetricsProbe` at least the
        registry snapshot, so either raises the job's declared level.
        """
        level = self.obs_level
        if level != "full" and any(
            isinstance(spec, TraceProbe) for spec in self.probes
        ):
            level = "full"
        if level == "off" and any(
            isinstance(spec, MetricsProbe) for spec in self.probes
        ):
            level = "metrics"
        return level

    # ---------------------------------------------------------------- key

    def key(self) -> str:
        """Stable content hash identifying this job across processes.

        Frozen-dataclass reprs are deterministic functions of their field
        values, which makes them a canonical text form for hashing.  Every
        field participates except the documented ``NON_KEY_FIELDS`` (the
        ``configure`` callback is represented by ``cache_tag``, enforced
        non-empty above); the code version salts the hash so old cache
        entries never alias new semantics.  The cache *schema* version is
        deliberately not in the key: entries carry it in-file instead, so
        a schema bump with a registered :data:`SCHEMA_MIGRATIONS` hook
        keeps old entries readable under the same key.
        """
        parts = (
            f"version={_code_version()}",
            f"benchmark={self.benchmark}",
            f"profile={self.profile!r}",
            f"design={self.design!r}",
            f"mode={self.mode.value}",
            f"config={self.resolve_config()!r}",
            f"managed={self.managed_units!r}",
            f"timeout={self.timeout_cycles!r}",
            f"budget={self.max_instructions}",
            f"seed={self.seed!r}",
            f"phase_log={self.collect_phase_log!r}",
            f"probes={self.probes!r}",
            f"obs={self.resolve_obs_level()}",
            f"tag={self.cache_tag}",
        )
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()


@dataclass
class JobRecord:
    """Everything one executed :class:`SimJob` produced.

    A record either succeeded (``result`` set, ``error`` empty) or failed
    (``result is None``, ``error`` holds the reason).  Failed records are
    produced by the batch runners — :class:`SweepRunner` and
    :class:`repro.sim.fabric.FabricScheduler` — so one bad job cannot
    abort a batch; they are never memoised or persisted, so a transient
    failure is retried on the next submission.
    """

    job_key: str
    result: Optional[SimulationResult]
    phase_log: List[Tuple[Tuple[int, ...], Dict[int, int]]] = field(
        default_factory=list
    )
    probes: Dict[str, Any] = field(default_factory=dict)
    from_cache: bool = False
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error and self.result is not None


def failed_record(key: str, exc: BaseException) -> JobRecord:
    """A failure :class:`JobRecord` describing why a job produced no result."""
    return JobRecord(
        job_key=key, result=None, error=f"{type(exc).__name__}: {exc}"
    )


def execute_job(job: SimJob) -> JobRecord:
    """Run one job from scratch (no caching).  Process-pool worker."""
    profile = job.resolve_profile()
    design = job.resolve_design(profile)
    workload = build_workload(profile, job.seed)
    proofs = None
    if job.use_proofs:
        # The store revalidates any cached certificate against the freshly
        # built workload's fingerprint and re-certifies on mismatch, so a
        # stale certificate can never reach the simulator from here.
        proofs = ProofStore().get_or_certify(
            profile, workload=workload, seed=job.seed
        )
    simulator = HybridSimulator(
        design,
        workload,
        mode=job.mode,
        powerchop_config=job.resolve_config(),
        timeout_cycles=job.timeout_cycles,
        obs_level=job.resolve_obs_level(),
        fastpath=job.fastpath,
        backend=job.backend,
        proofs=proofs,
    )
    if job.configure is not None:
        job.configure(simulator)
    probe_states = tuple(spec.build() for spec in job.probes)
    result = simulator.run(job.max_instructions, probes=probe_states)
    phase_log = (
        list(simulator.controller.phase_log) if simulator.controller else []
    )
    return JobRecord(
        job_key=job.key(),
        result=result,
        phase_log=phase_log,
        probes={state.name: state.value() for state in probe_states},
    )


# ------------------------------------------------------------------ cache


def _default_budget() -> int:
    """Size budget in bytes from ``REPRO_CACHE_BUDGET`` (0 = unbounded)."""
    raw = os.environ.get("REPRO_CACHE_BUDGET", "0")
    try:
        budget = int(raw)
    except ValueError as exc:
        raise ValueError("REPRO_CACHE_BUDGET must be an integer byte count") from exc
    if budget < 0:
        raise ValueError("REPRO_CACHE_BUDGET must be >= 0")
    return budget


class ResultCache:
    """Persistent on-disk JSON cache of :class:`JobRecord`, one file per key.

    The directory comes from ``REPRO_CACHE_DIR`` (default
    ``~/.cache/repro-powerchop``); ``REPRO_CACHE=0`` disables reads and
    writes.  Entries are invalidated implicitly: the package version salts
    the job hash, and any config change alters the key.  Corrupt or
    unreadable entries are treated as misses.  Entries written under an
    older ``CACHE_SCHEMA_VERSION`` are run through the
    :data:`SCHEMA_MIGRATIONS` chain; an entry no chain can bring current
    is a miss.

    Lifecycle: ``budget_bytes`` (default ``REPRO_CACHE_BUDGET``; 0 =
    unbounded) caps the total on-disk size.  Every ``put`` evicts
    least-recently-used entries (by file mtime — ``get`` hits touch their
    entry) until the cache fits the budget, so the cache never exceeds it.
    ``hits`` / ``misses`` / ``evictions`` count this instance's observed
    operations.  ``clock`` injects a deterministic time source for tests;
    the default is the filesystem's own clock.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        enabled: Optional[bool] = None,
        budget_bytes: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if root is None:
            root = Path(
                os.environ.get(
                    "REPRO_CACHE_DIR",
                    os.path.join(os.path.expanduser("~"), ".cache", "repro-powerchop"),
                )
            )
        self.root = Path(root)
        if enabled is None:
            enabled = os.environ.get("REPRO_CACHE", "1") != "0"
        self.enabled = enabled
        self.budget_bytes = _default_budget() if budget_bytes is None else budget_bytes
        if self.budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.clock = clock
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _touch(self, path: Path) -> None:
        """Mark ``path`` most-recently-used (mtime = now / injected clock)."""
        try:
            if self.clock is None:
                os.utime(path)
            else:
                stamp = self.clock()
                os.utime(path, (stamp, stamp))
        except OSError:
            pass  # entry raced away; the next get is simply a miss

    def _migrate(self, data: Dict[str, Any]) -> Dict[str, Any]:
        """Chain :data:`SCHEMA_MIGRATIONS` until ``data`` is current."""
        seen = set()
        while data.get("schema") != CACHE_SCHEMA_VERSION:
            version = data.get("schema")
            hook = SCHEMA_MIGRATIONS.get(version)
            if hook is None or version in seen:
                raise ValueError(f"no migration path from schema {version!r}")
            seen.add(version)
            data = hook(data)
        return data

    def get(self, key: str) -> Optional[JobRecord]:
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with open(path) as handle:
                data = json.load(handle)
            data = self._migrate(data)
            record = JobRecord(
                job_key=key,
                result=SimulationResult.from_dict(data["result"]),
                phase_log=[
                    (tuple(signature), {int(tid): count for tid, count in vector.items()})
                    for signature, vector in data["phase_log"]
                ],
                probes=data.get("probes", {}),
                from_cache=True,
            )
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        self._touch(path)
        return record

    def put(self, key: str, record: JobRecord) -> None:
        if not self.enabled or record.result is None:
            return
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "version": _code_version(),
            "result": record.result.to_dict(),
            "phase_log": [
                [list(signature), vector] for signature, vector in record.phase_log
            ],
            "probes": record.probes,
        }
        try:
            text = json.dumps(payload)
        except TypeError:
            return  # non-JSON probe value; skip persistence, keep the memo
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self._path(key).with_suffix(".tmp%d" % os.getpid())
        tmp.write_text(text)
        os.replace(tmp, self._path(key))
        self._touch(self._path(key))
        self.evict_to_budget()

    # ------------------------------------------------------- lifecycle

    def entries(self) -> List[Tuple[Path, float, int]]:
        """``(path, mtime, size)`` for every entry, coldest first."""
        rows = []
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                rows.append((path, stat.st_mtime, stat.st_size))
        rows.sort(key=lambda row: (row[1], row[0].name))
        return rows

    def total_bytes(self) -> int:
        return sum(size for _path, _mtime, size in self.entries())

    def evict_to_budget(self, budget_bytes: Optional[int] = None) -> int:
        """Unlink least-recently-used entries until the cache fits.

        Returns how many entries were evicted.  A budget of 0 means
        unbounded (nothing is ever evicted).
        """
        budget = self.budget_bytes if budget_bytes is None else budget_bytes
        if budget <= 0:
            return 0
        rows = self.entries()
        total = sum(size for _path, _mtime, size in rows)
        evicted = 0
        for path, _mtime, size in rows:
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        self.evictions += evicted
        return evicted

    def stats(self) -> Dict[str, Any]:
        """Lifecycle snapshot: occupancy plus this instance's counters."""
        rows = self.entries()
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "entries": len(rows),
            "bytes": sum(size for _path, _mtime, size in rows),
            "budget_bytes": self.budget_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> int:
        """Delete all cache entries; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


#: Per-process memo: job key -> JobRecord.  Callers that hit the memo get
#: the *same* record object back, which the experiment layer relies on.
_MEMO: Dict[str, JobRecord] = {}


def clear_memo() -> None:
    """Drop the per-process memo (the on-disk cache is unaffected)."""
    _MEMO.clear()


def memo_get(key: str) -> Optional[JobRecord]:
    """Look up the per-process memo (used by the fabric scheduler)."""
    return _MEMO.get(key)


def memo_put(key: str, record: JobRecord) -> None:
    """Install a successful record in the per-process memo."""
    if record.ok:
        _MEMO[key] = record


def run_job(job: SimJob, cache: Optional[ResultCache] = None) -> JobRecord:
    """Run one job through the memo and on-disk cache layers."""
    key = job.key()
    record = _MEMO.get(key)
    if record is not None:
        # Same result/phase_log objects as the memoised record; only the
        # from_cache flag differs, so callers can see the hit.
        return replace(record, from_cache=True)
    if cache is None:
        cache = ResultCache()
    record = cache.get(key)
    if record is None:
        record = execute_job(job)
        cache.put(key, record)
    _MEMO[key] = record
    return record


# ------------------------------------------------------------------ sweep


def default_workers() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    try:
        workers = int(os.environ.get("REPRO_JOBS", "1"))
    except ValueError as exc:
        raise ValueError("REPRO_JOBS must be an integer") from exc
    if workers < 1:
        raise ValueError("REPRO_JOBS must be >= 1")
    return workers


def _is_picklable(job: SimJob) -> bool:
    try:
        pickle.dumps(job)
        return True
    except Exception:
        return False


def _execute_isolated(items: List[Tuple[str, SimJob]]) -> Dict[str, JobRecord]:
    """Re-run jobs one at a time in disposable single-worker pools.

    Recovery path after a :class:`BrokenProcessPool`: the broken pool
    cannot say *which* job killed the worker, so every job whose future it
    poisoned comes through here.  Each job gets a fresh worker; a job that
    crashes it again is the culprit and becomes a failed record, while the
    innocent bystanders complete normally on the next pool.
    """
    out: Dict[str, JobRecord] = {}
    index = 0
    while index < len(items):
        with ProcessPoolExecutor(max_workers=1) as pool:
            while index < len(items):
                key, job = items[index]
                index += 1
                try:
                    out[key] = pool.submit(execute_job, job).result()
                except BrokenProcessPool as exc:
                    out[key] = failed_record(key, exc)
                    break  # this pool is dead; next job gets a fresh one
                except Exception as exc:
                    out[key] = failed_record(key, exc)
    return out


class SweepRunner:
    """Execute batches of :class:`SimJob` with caching and parallelism.

    Results are returned in job order regardless of completion order, and
    are bit-identical between the serial and process-pool paths (workload
    generation is seeded, simulation is deterministic).  Duplicate jobs
    within one batch execute once and share a record.  Jobs that cannot be
    pickled (e.g. closure ``configure`` callbacks) fall back to in-process
    execution automatically.

    Failures are isolated per job: a job that raises, returns an
    unpicklable result, or hard-crashes its worker yields a failed
    :class:`JobRecord` (``result=None``, ``error`` set) while the rest of
    the batch completes.  For retries, timeouts and progress streaming use
    :class:`repro.sim.fabric.FabricScheduler` instead.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.workers = default_workers() if workers is None else workers
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.cache = cache if cache is not None else ResultCache()

    def run(self, jobs: Sequence[SimJob]) -> List[JobRecord]:
        jobs = list(jobs)
        records: List[Optional[JobRecord]] = [None] * len(jobs)

        # Cache pass; collect unique missing keys in first-seen order.
        pending: Dict[str, SimJob] = {}
        slots: Dict[str, List[int]] = {}
        for index, job in enumerate(jobs):
            key = job.key()
            memoised = _MEMO.get(key)
            if memoised is not None:
                records[index] = replace(memoised, from_cache=True)
                continue
            record = self.cache.get(key)
            if record is not None:
                _MEMO[key] = record
                records[index] = record
            else:
                pending.setdefault(key, job)
                slots.setdefault(key, []).append(index)

        fresh: Dict[str, JobRecord] = {}
        parallel = [
            (key, job)
            for key, job in pending.items()
            if self.workers > 1 and _is_picklable(job)
        ]
        parallel_keys = {key for key, _job in parallel}
        serial = [
            (key, job) for key, job in pending.items() if key not in parallel_keys
        ]

        if len(parallel) > 1:
            max_workers = min(self.workers, len(parallel))
            broken: List[Tuple[str, SimJob]] = []
            job_by_key = dict(parallel)
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = {
                    pool.submit(execute_job, job): key for key, job in parallel
                }
                for future in as_completed(futures):
                    key = futures[future]
                    try:
                        fresh[key] = future.result()
                    except BrokenProcessPool:
                        # One worker died and poisoned every in-flight
                        # future; the casualties are re-run in isolation
                        # below so only the culprit job fails.
                        broken.append((key, job_by_key[key]))
                    except Exception as exc:
                        fresh[key] = failed_record(key, exc)
            if broken:
                fresh.update(_execute_isolated(broken))
        else:
            serial = parallel + serial

        for key, job in serial:
            try:
                fresh[key] = execute_job(job)
            except Exception as exc:
                fresh[key] = failed_record(key, exc)

        for key, record in fresh.items():
            if record.ok:
                self.cache.put(key, record)
                _MEMO[key] = record
            for index in slots[key]:
                records[index] = record

        return records  # type: ignore[return-value]


def run_jobs(
    jobs: Sequence[SimJob],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[JobRecord]:
    """Convenience wrapper: one-shot :class:`SweepRunner` run."""
    return SweepRunner(workers=workers, cache=cache).run(jobs)
