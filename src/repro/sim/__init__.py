"""Simulation harness: simulator, engine (jobs/cache/sweeps), probes, results."""

from repro.sim.results import (
    SimulationResult,
    energy_reduction,
    leakage_reduction,
    power_reduction,
    slowdown,
)
from repro.sim.simulator import GatingMode, HybridSimulator, run_simulation
from repro.sim.engine import (
    JobRecord,
    ResultCache,
    SimJob,
    SweepRunner,
    run_job,
    run_jobs,
)
from repro.sim.probes import (
    IPCSeriesProbe,
    PhaseLogProbe,
    ProbeSpec,
    ProbeState,
    StaticHintsProbe,
    UnitActivityProbe,
)
from repro.sim.sweep import (
    sweep_powerchop_thresholds,
    sweep_signature_lengths,
    sweep_timeout_periods,
    sweep_window_sizes,
)
from repro.sim.simpoint import SimPoint, select_simpoints

__all__ = [
    "GatingMode",
    "HybridSimulator",
    "run_simulation",
    "SimulationResult",
    "slowdown",
    "power_reduction",
    "energy_reduction",
    "leakage_reduction",
    "SimJob",
    "JobRecord",
    "ResultCache",
    "SweepRunner",
    "run_job",
    "run_jobs",
    "ProbeSpec",
    "ProbeState",
    "IPCSeriesProbe",
    "PhaseLogProbe",
    "StaticHintsProbe",
    "UnitActivityProbe",
    "sweep_powerchop_thresholds",
    "sweep_timeout_periods",
    "sweep_window_sizes",
    "sweep_signature_lengths",
    "SimPoint",
    "select_simpoints",
]
