"""SimPoint-style representative region selection.

The paper uses SimPoint to pick simulation regions from full benchmark
runs.  This module implements the same idea: split a trace into fixed-size
intervals, build a basic-block vector (BBV) per interval, cluster the BBVs
with k-means, and return one representative interval per cluster weighted
by cluster population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.workloads.generator import SyntheticWorkload


@dataclass(frozen=True)
class SimPoint:
    """One representative interval."""

    interval_index: int
    start_instruction: int
    weight: float


def _collect_bbvs(
    workload: SyntheticWorkload, interval_instructions: int, max_instructions: int
) -> np.ndarray:
    """Basic-block vectors: per-interval instruction counts per block PC."""
    pc_index: Dict[int, int] = {}
    intervals: List[Dict[int, int]] = [{}]
    produced = 0
    boundary = interval_instructions
    for block_exec in workload.trace(max_instructions):
        block = block_exec.block
        idx = pc_index.setdefault(block.pc, len(pc_index))
        current = intervals[-1]
        current[idx] = current.get(idx, 0) + block.n_instr
        produced += block.n_instr
        if produced >= boundary:
            intervals.append({})
            boundary += interval_instructions
    if not intervals[-1]:
        intervals.pop()
    matrix = np.zeros((len(intervals), len(pc_index)))
    for i, counts in enumerate(intervals):
        for j, count in counts.items():
            matrix[i, j] = count
    # Normalise each BBV so intervals compare by code mix, not length.
    norms = matrix.sum(axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


def _kmeans(matrix: np.ndarray, k: int, iterations: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    n = matrix.shape[0]
    centers = matrix[rng.choice(n, size=min(k, n), replace=False)]
    labels = np.zeros(n, dtype=int)
    for _ in range(iterations):
        distances = np.linalg.norm(matrix[:, None, :] - centers[None, :, :], axis=2)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for c in range(centers.shape[0]):
            members = matrix[labels == c]
            if len(members):
                centers[c] = members.mean(axis=0)
    return labels


def select_simpoints(
    workload: SyntheticWorkload,
    interval_instructions: int = 100_000,
    max_instructions: int = 2_000_000,
    k: int = 4,
    iterations: int = 25,
    seed: int = 0,
) -> List[SimPoint]:
    """Pick representative intervals of a workload trace.

    Note: consumes the (single-use) workload; build a fresh instance for
    the actual simulation runs.
    """
    if interval_instructions < 1 or k < 1:
        raise ValueError("interval size and k must be >= 1")
    matrix = _collect_bbvs(workload, interval_instructions, max_instructions)
    n = matrix.shape[0]
    if n == 0:
        return []
    labels = _kmeans(matrix, k, iterations, seed)
    simpoints = []
    for cluster in sorted(set(labels.tolist())):
        members = np.flatnonzero(labels == cluster)
        center = matrix[members].mean(axis=0)
        representative = members[
            np.linalg.norm(matrix[members] - center, axis=1).argmin()
        ]
        simpoints.append(
            SimPoint(
                interval_index=int(representative),
                start_instruction=int(representative) * interval_instructions,
                weight=len(members) / n,
            )
        )
    return simpoints
