"""Pluggable simulation probes: lightweight observers of a running simulation.

A probe is described declaratively by a frozen :class:`ProbeSpec` (so it can
live inside a hashable :class:`~repro.sim.engine.SimJob`) and instantiated
per run as a mutable :class:`ProbeState` via :meth:`ProbeSpec.build`.  The
simulator invokes the state's hooks:

- ``attach(simulator)`` once before the first block;
- ``on_block(block_exec, cycles, instructions)`` after every executed block,
  with cumulative cycle and instruction counts;
- ``on_window(windows_seen, cycles)`` whenever the PowerChop controller
  completes an execution window (never fires outside POWERCHOP mode);
- ``finish(simulator, result)`` once after the run.

``value()`` returns the probe's product.  Values must be JSON-serialisable
(lists/dicts/scalars) so the engine's persistent result cache can round-trip
them; note JSON turns tuples into lists and dict keys into strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

__all__ = [
    "ProbeSpec",
    "ProbeState",
    "IPCSeriesProbe",
    "MetricsProbe",
    "PhaseLogProbe",
    "StaticHintsProbe",
    "TraceProbe",
    "UnitActivityProbe",
    "include_trailing_window",
]


def include_trailing_window(delta_instructions: int, sample_instructions: int) -> bool:
    """Flush rule shared by every windowed probe.

    A run's trailing partial window is emitted iff it covers at least half
    a sample window.  Keeping this predicate in one place is what makes
    :class:`IPCSeriesProbe` and :class:`MetricsProbe` agree on window
    counts for any (run length, sample size) pair.
    """
    return delta_instructions > 0 and 2 * delta_instructions >= sample_instructions


class ProbeState:
    """Per-run observer; subclasses override the hooks they need."""

    __slots__ = ()

    name: str = "probe"

    def attach(self, simulator) -> None:  # noqa: B027 - optional hook
        pass

    def on_block(self, block_exec, cycles: float, instructions: int) -> None:
        pass

    def on_window(self, windows_seen: int, cycles: float) -> None:
        pass

    def finish(self, simulator, result) -> None:
        pass

    def value(self) -> Any:
        return None


@dataclass(frozen=True)
class ProbeSpec:
    """Hashable description of a probe; ``build()`` makes a fresh state."""

    @property
    def name(self) -> str:
        raise NotImplementedError

    def build(self) -> ProbeState:
        raise NotImplementedError


# ------------------------------------------------------------- IPC series


@dataclass(frozen=True)
class IPCSeriesProbe(ProbeSpec):
    """Windowed IPC over instruction count (the Figs. 2/3 time series).

    Emits one IPC sample per ``sample_instructions`` executed.  The trailing
    partial window is emitted too when it covers at least half a sample
    window, so short runs do not silently drop their final measurements.
    """

    sample_instructions: int = 100_000

    def __post_init__(self) -> None:
        if self.sample_instructions < 1:
            raise ValueError("sample_instructions must be >= 1")

    @property
    def name(self) -> str:
        return "ipc_series"

    def build(self) -> "_IPCSeriesState":
        return _IPCSeriesState(self.sample_instructions)


class _IPCSeriesState(ProbeState):
    __slots__ = ("sample_instructions", "series", "_last_cycles", "_last_instr", "_boundary")

    name = "ipc_series"

    def __init__(self, sample_instructions: int) -> None:
        self.sample_instructions = sample_instructions
        self.series: List[float] = []
        self._last_cycles = 0.0
        self._last_instr = 0
        self._boundary = sample_instructions

    def on_block(self, block_exec, cycles: float, instructions: int) -> None:
        if instructions >= self._boundary:
            delta_c = cycles - self._last_cycles
            delta_i = instructions - self._last_instr
            self.series.append(delta_i / delta_c if delta_c else 0.0)
            self._last_cycles = cycles
            self._last_instr = instructions
            self._boundary += self.sample_instructions

    def finish(self, simulator, result) -> None:
        # Trailing partial window: emit when it covers >= half a sample.
        delta_i = result.instructions - self._last_instr
        if include_trailing_window(delta_i, self.sample_instructions):
            delta_c = simulator.cycles - self._last_cycles
            self.series.append(delta_i / delta_c if delta_c else 0.0)

    def value(self) -> List[float]:
        return list(self.series)


# -------------------------------------------------------------- phase log


@dataclass(frozen=True)
class PhaseLogProbe(ProbeSpec):
    """Per-window (signature, translation vector) pairs from the controller.

    Requires POWERCHOP mode; the engine enables
    ``PowerChopConfig.collect_phase_vectors`` automatically when this probe
    is present.  The value mirrors the controller's phase log as JSON-typed
    data: ``[[signature, {tid: count}], ...]``.
    """

    @property
    def name(self) -> str:
        return "phase_log"

    def build(self) -> "_PhaseLogState":
        return _PhaseLogState()


class _PhaseLogState(ProbeState):
    __slots__ = ("log",)

    name = "phase_log"

    def __init__(self) -> None:
        self.log: List[list] = []

    def finish(self, simulator, result) -> None:
        controller = simulator.controller
        if controller is not None:
            self.log = [
                [list(signature), dict(vector)]
                for signature, vector in controller.phase_log
            ]

    def value(self) -> List[list]:
        return self.log


# ---------------------------------------------------------- unit activity


@dataclass(frozen=True)
class UnitActivityProbe(ProbeSpec):
    """Unit power states sampled at every window boundary (POWERCHOP only).

    Each sample is ``[cycles, vpu_on, bpu_large_on, mlc_ways]`` — the raw
    material for gating-activity timelines (Figs. 9-11 style analyses).
    """

    @property
    def name(self) -> str:
        return "unit_activity"

    def build(self) -> "_UnitActivityState":
        return _UnitActivityState()


class _UnitActivityState(ProbeState):
    __slots__ = ("samples", "_simulator")

    name = "unit_activity"

    def __init__(self) -> None:
        self.samples: List[list] = []
        self._simulator = None

    def attach(self, simulator) -> None:
        self._simulator = simulator

    def on_window(self, windows_seen: int, cycles: float) -> None:
        states = self._simulator.core.states
        self.samples.append(
            [cycles, bool(states.vpu_on), bool(states.bpu_large_on), int(states.mlc_ways)]
        )

    def value(self) -> List[list]:
        return self.samples


# ------------------------------------------------------------ static hints


@dataclass(frozen=True)
class StaticHintsProbe(ProbeSpec):
    """Static pre-pass effectiveness and the CDE's decided policy map.

    POWERCHOP only.  The value reports how much dynamic profiling the
    static criticality pre-pass eliminated (``vpu_windows_skipped`` —
    profiling windows that ran with the VPU statically gated where
    dynamic-only profiling would have kept it powered) plus the full
    ``decided_policies`` map ``[[signature, [vpu_on, bpu_on, mlc_ways]],
    ...]`` so A/B experiments can assert bit-identical policy decisions
    between hinted and dynamic-only runs.
    """

    @property
    def name(self) -> str:
        return "static_hints"

    def build(self) -> "_StaticHintsState":
        return _StaticHintsState()


class _StaticHintsState(ProbeState):
    __slots__ = ("data",)

    name = "static_hints"

    def __init__(self) -> None:
        self.data: dict = {"enabled": False}

    def finish(self, simulator, result) -> None:
        controller = simulator.controller
        if controller is None:
            return
        cde = controller.cde
        hints = cde.hints
        self.data = {
            "enabled": hints is not None,
            "vpu_dead_regions": sorted(hints.vpu_dead_regions)
            if hints is not None
            else [],
            "static_vpu_phases": cde.static_vpu_phases,
            "vpu_windows_skipped": cde.static_vpu_windows_skipped,
            "decided_policies": [
                [
                    list(signature),
                    [int(policy.vpu_on), int(policy.bpu_on), int(policy.mlc_ways)],
                ]
                for signature, policy in cde.decided_policies()
            ],
        }

    def value(self) -> dict:
        return self.data


# ------------------------------------------------------------ observability


@dataclass(frozen=True)
class TraceProbe(ProbeSpec):
    """Chrome ``trace_event`` export of the run's event stream.

    Requires the tracer to run at ``obs_level="full"``; the engine raises
    the job's effective level automatically when this probe is present.
    The value is the complete Chrome trace JSON object (``traceEvents``
    plus metadata) — load it at https://ui.perfetto.dev or write it to a
    file with ``python -m repro trace``.
    """

    @property
    def name(self) -> str:
        return "trace"

    def build(self) -> "_TraceState":
        return _TraceState()


class _TraceState(ProbeState):
    __slots__ = ("data",)

    name = "trace"

    def __init__(self) -> None:
        self.data: dict = {}

    def finish(self, simulator, result) -> None:
        from repro.obs.export import chrome_trace

        tracer = simulator.tracer
        self.data = chrome_trace(
            tracer.events(),
            frequency_hz=simulator.design.frequency_hz,
            end_cycles=simulator.cycles,
            mlc_full_ways=simulator.design.mlc_assoc,
            benchmark=result.benchmark,
            design=result.design,
            dropped=tracer.dropped,
        )

    def value(self) -> dict:
        return self.data


@dataclass(frozen=True)
class MetricsProbe(ProbeSpec):
    """Metrics-registry snapshot plus a windowed-IPC histogram.

    Requires ``obs_level`` of at least ``metrics`` (the engine raises the
    job's effective level automatically).  Windows are cut at the same
    instruction boundaries as :class:`IPCSeriesProbe`, and the trailing
    partial window follows the shared :func:`include_trailing_window`
    rule, so for equal ``sample_instructions`` the histogram's ``count``
    always equals the IPC series' length.
    """

    sample_instructions: int = 100_000

    def __post_init__(self) -> None:
        if self.sample_instructions < 1:
            raise ValueError("sample_instructions must be >= 1")

    @property
    def name(self) -> str:
        return "metrics"

    def build(self) -> "_MetricsState":
        return _MetricsState(self.sample_instructions)


class _MetricsState(ProbeState):
    __slots__ = (
        "sample_instructions",
        "_hist",
        "_last_cycles",
        "_last_instr",
        "_boundary",
        "data",
    )

    name = "metrics"

    def __init__(self, sample_instructions: int) -> None:
        from repro.obs.metrics import Histogram

        self.sample_instructions = sample_instructions
        self._hist = Histogram()
        self._last_cycles = 0.0
        self._last_instr = 0
        self._boundary = sample_instructions
        self.data: dict = {}

    def on_block(self, block_exec, cycles: float, instructions: int) -> None:
        if instructions >= self._boundary:
            delta_c = cycles - self._last_cycles
            delta_i = instructions - self._last_instr
            self._hist.observe(delta_i / delta_c if delta_c else 0.0)
            self._last_cycles = cycles
            self._last_instr = instructions
            self._boundary += self.sample_instructions

    def finish(self, simulator, result) -> None:
        delta_i = result.instructions - self._last_instr
        if include_trailing_window(delta_i, self.sample_instructions):
            delta_c = simulator.cycles - self._last_cycles
            self._hist.observe(delta_i / delta_c if delta_c else 0.0)
        self.data = {
            "snapshot": dict(result.metrics),
            "windowed_ipc": self._hist.to_dict(),
        }

    def value(self) -> dict:
        return self.data
