"""Bounded retry with exponential backoff and seeded jitter.

The policy is pure data plus one pure-ish function: ``delay(attempt,
rng)`` computes how long to sleep before retry number ``attempt + 1``.
Jitter draws from the *caller's* seeded ``random.Random`` so a scheduler
run's sleep sequence is reproducible (and, more importantly, so nothing
here touches the ambient global RNG the simulator's determinism lint
forbids).  Backoff affects only scheduling — simulation results are
bit-identical however often a job is retried.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a failed job is retried.

    ``max_attempts`` counts every try including the first, so
    ``max_attempts=1`` disables retries.  The delay before attempt ``n+1``
    is ``base_delay * multiplier**(n-1)`` capped at ``max_delay``, then
    scaled by a uniform jitter in ``[1 - jitter_frac, 1 + jitter_frac]``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter_frac must be in [0, 1)")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before the retry following failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter_frac:
            raw *= 1.0 + self.jitter_frac * (2.0 * rng.random() - 1.0)
        return max(raw, 0.0)

    def exhausted(self, attempt: int) -> bool:
        """True when failed attempt ``attempt`` was the last allowed one."""
        return attempt >= self.max_attempts


#: Policy used when the scheduler is given none.
DEFAULT_RETRY_POLICY = RetryPolicy()
