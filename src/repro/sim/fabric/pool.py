"""A process pool that survives poisoned and hung workers.

``concurrent.futures.ProcessPoolExecutor`` is a one-way street: a worker
that dies (``os._exit``, OOM-kill, segfault) breaks the whole executor,
and a hung worker can never be reclaimed because ``shutdown`` waits for
it.  :class:`RestartablePool` wraps the executor with the two operations
the fabric scheduler needs:

- ``restart()`` — hard-kill every worker process and build a fresh
  executor on next submit (used after a crash *or* a job timeout, since a
  timed-out future cannot be cancelled once running);
- graceful unavailability — if executor/worker creation itself fails
  (e.g. a sandbox forbids ``fork``), ``submit`` raises
  :class:`PoolUnavailable` and the scheduler degrades to serial
  in-process execution instead of aborting the batch.

Killing workers uses the executor's private ``_processes`` map; there is
no public API for it.  The access is defensive (``getattr`` + per-process
``try``), so on an interpreter where the attribute moved the pool merely
degrades to ``shutdown(wait=False)``.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Optional

__all__ = ["PoolUnavailable", "RestartablePool"]


class PoolUnavailable(RuntimeError):
    """Worker-pool creation failed; callers should run in-process instead."""


class RestartablePool:
    """Lazily-built :class:`ProcessPoolExecutor` with kill-and-restart."""

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.restarts = 0
        self.available = True
        #: Bumped on every teardown.  Callers snapshot it at submit time
        #: and pass it to :meth:`restart_if` so a job observing a *stale*
        #: broken future cannot kill the healthy replacement pool.
        self.generation = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure(self) -> ProcessPoolExecutor:
        if not self.available:
            raise PoolUnavailable("process pool permanently unavailable")
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            except Exception as exc:
                self.available = False
                raise PoolUnavailable(f"cannot start process pool: {exc}") from exc
        return self._pool

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        """Submit work, (re)building the executor if needed."""
        try:
            return self._ensure().submit(fn, *args)
        except PoolUnavailable:
            raise
        except Exception as exc:
            # A broken executor rejects submissions; force a rebuild once.
            self._teardown()
            try:
                return self._ensure().submit(fn, *args)
            except PoolUnavailable:
                raise
            except Exception:
                self.available = False
                raise PoolUnavailable(f"process pool rejected work: {exc}") from exc

    def _teardown(self) -> None:
        pool, self._pool = self._pool, None
        self.generation += 1
        if pool is None:
            return
        # Kill workers first: shutdown() would block forever on a hung one.
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def restart(self) -> None:
        """Hard-kill the current workers; the next submit gets a new pool.

        Every in-flight future is abandoned (it resolves as broken or
        cancelled) — callers retry the affected jobs.
        """
        self._teardown()
        self.restarts += 1

    def restart_if(self, generation: int) -> None:
        """Restart only if the pool a caller submitted to is still live.

        ``generation`` is the value of :attr:`generation` snapshotted just
        before the caller's submit.  If the pool has been recycled since,
        the caller's worker is already gone and restarting again would
        only kill innocent jobs on the replacement pool.
        """
        if self.generation == generation:
            self.restart()

    def close(self) -> None:
        """Tear the pool down without counting a restart."""
        self._teardown()

    def __enter__(self) -> "RestartablePool":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
