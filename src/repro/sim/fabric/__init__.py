"""Sweep fabric: a fault-tolerant job service over the simulation engine.

The engine (:mod:`repro.sim.engine`) knows how to execute, hash and cache
one :class:`~repro.sim.engine.SimJob`; the fabric turns that into a
service that survives production-scale batches:

- :class:`FabricScheduler` — asyncio scheduler with cache dedup,
  size-bounded shards, per-job timeouts, bounded retry with exponential
  backoff + seeded jitter, poison-worker isolation on a
  :class:`RestartablePool`, serial degradation, and per-job status
  streaming (queued → running → done/failed/cached) through
  :mod:`repro.obs.metrics`;
- :class:`RetryPolicy` — declarative backoff policy;
- :class:`JobStatus` / :class:`FabricEvent` — the streamed status model;
- cache lifecycle services (:func:`cache_stats`, :func:`gc_cache`) over
  the engine cache's LRU budget, counters and schema migrations.

CLI: ``python -m repro fabric submit|status|gc`` and
``python -m repro sweep --fabric``.
"""

from repro.sim.fabric.cache import cache_stats, gc_cache, register_schema_migration
from repro.sim.fabric.pool import PoolUnavailable, RestartablePool
from repro.sim.fabric.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.sim.fabric.scheduler import DEFAULT_SHARD_SIZE, FabricScheduler
from repro.sim.fabric.status import (
    TERMINAL_STATUSES,
    FabricEvent,
    JobState,
    JobStatus,
)

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "DEFAULT_SHARD_SIZE",
    "FabricEvent",
    "FabricScheduler",
    "JobState",
    "JobStatus",
    "PoolUnavailable",
    "RestartablePool",
    "RetryPolicy",
    "TERMINAL_STATUSES",
    "cache_stats",
    "gc_cache",
    "register_schema_migration",
]
