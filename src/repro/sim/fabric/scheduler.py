"""Fault-tolerant asyncio job scheduler over the simulation engine.

:class:`FabricScheduler` is the service layer between callers with big
job batches and the raw :func:`repro.sim.engine.execute_job` worker
function.  One ``run()`` (or ``await run_async()``) call:

1. **Dedups** the batch against the per-process memo and the on-disk
   :class:`~repro.sim.engine.ResultCache` — duplicate jobs inside one
   batch execute once and share a record, exactly like
   :class:`~repro.sim.engine.SweepRunner` (the equivalence suite pins the
   two bit-identical, ``from_cache`` flags included).
2. **Shards** the remaining unique jobs into size-bounded batches; each
   shard's jobs run concurrently on a :class:`RestartablePool` (actual
   parallelism bounded by the pool's worker count), shards run in order.
3. **Executes with robustness**: per-job wall-clock timeout, bounded
   retry with exponential backoff + seeded jitter, crash isolation (a
   poisoned worker costs one attempt of the jobs it touched, never the
   batch), and graceful degradation to serial in-process execution when a
   process pool cannot be created at all.
4. **Streams progress**: every status transition (queued → running →
   done/failed/cached) is appended to ``events``, forwarded to the
   optional ``on_event`` callback, and aggregated in a
   :class:`~repro.obs.metrics.MetricsRegistry` under ``fabric_*``
   instrument names.

Determinism: retries change *when* a job runs, never what it computes —
simulation is seeded and deterministic, so a batch's records are
bit-identical however many crashes and retries the run absorbed.  Jitter
draws from a ``random.Random(seed)`` owned by the scheduler, keeping the
determinism lint's no-ambient-RNG rule intact.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import (
    JobRecord,
    ResultCache,
    SimJob,
    _is_picklable,
    default_workers,
    execute_job,
    failed_record,
    memo_get,
    memo_put,
)
from repro.sim.fabric.pool import PoolUnavailable, RestartablePool
from repro.sim.fabric.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.sim.fabric.status import FabricEvent, JobState, JobStatus

__all__ = ["FabricScheduler", "DEFAULT_SHARD_SIZE"]

#: Upper bound on jobs in flight per shard when the caller sets none.
DEFAULT_SHARD_SIZE = 32

#: Exceptions that mean "the worker pool ate this attempt", not "the job
#: itself is broken": a poisoned pool breaks every in-flight future, and a
#: pool restart (after a crash or a timeout elsewhere in the shard)
#: cancels queued ones.  Both are retried against a fresh pool.
_POOL_CASUALTIES: tuple = (asyncio.CancelledError,)
try:  # BrokenProcessPool lives in a private-ish module; import defensively
    from concurrent.futures.process import BrokenProcessPool

    _POOL_CASUALTIES = (BrokenProcessPool, asyncio.CancelledError)
except ImportError:  # pragma: no cover - always present on CPython
    pass


class FabricScheduler:
    """Run :class:`SimJob` batches with caching, retries and crash isolation.

    Parameters mirror :class:`~repro.sim.engine.SweepRunner` where they
    overlap (``workers``, ``cache``); the rest tune robustness:

    - ``retry``: a :class:`RetryPolicy` (default: 3 attempts, 50 ms base
      backoff, 10 % jitter);
    - ``job_timeout``: wall-clock seconds one attempt may run before its
      worker is killed and the attempt counts as failed (``None`` — the
      default — disables the timeout; serial in-process execution cannot
      enforce one either way);
    - ``shard_size``: how many unique jobs are dispatched concurrently;
      ``shard_size=1`` fully serialises dispatch, which also confines a
      poison worker's blast radius to exactly its own job;
    - ``seed``: jitter RNG seed (scheduling only, never results);
    - ``registry``: a :class:`~repro.obs.metrics.MetricsRegistry` to
      aggregate ``fabric_*`` metrics into (default: a fresh one on
      ``self.registry``);
    - ``on_event``: callback receiving each :class:`FabricEvent` as it is
      emitted.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        retry: Optional[RetryPolicy] = None,
        job_timeout: Optional[float] = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        on_event: Optional[Callable[[FabricEvent], None]] = None,
    ) -> None:
        self.workers = default_workers() if workers is None else workers
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive or None")
        self.cache = cache if cache is not None else ResultCache()
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self.job_timeout = job_timeout
        self.shard_size = shard_size
        self.registry = registry if registry is not None else MetricsRegistry()
        self.on_event = on_event
        self.events: List[FabricEvent] = []
        self._rng = random.Random(seed)
        self._pool_ok = True

    # ------------------------------------------------------------ running

    def run(self, jobs: Sequence[SimJob]) -> List[JobRecord]:
        """Synchronous wrapper; use :meth:`run_async` inside an event loop."""
        return asyncio.run(self.run_async(jobs))

    async def run_async(self, jobs: Sequence[SimJob]) -> List[JobRecord]:
        jobs = list(jobs)
        records: List[Optional[JobRecord]] = [None] * len(jobs)

        # Cache pass — mirrors SweepRunner.run exactly so the two runners
        # stay bit-identical (records, order and from_cache flags).
        states: Dict[str, JobState] = {}
        slots: Dict[str, List[int]] = {}
        for index, job in enumerate(jobs):
            key = job.key()
            memoised = memo_get(key)
            if memoised is not None:
                records[index] = replace(memoised, from_cache=True)
                self._count_cache("hit")
                self._finish_cached(key)
                continue
            record = self.cache.get(key)
            if record is not None:
                memo_put(key, record)
                records[index] = record
                self._count_cache("hit")
                self._finish_cached(key)
                continue
            self._count_cache("miss")
            if key not in states:
                states[key] = JobState(index=index, key=key, job=job)
                self._emit(states[key], JobStatus.QUEUED)
            slots.setdefault(key, []).append(index)

        pending = list(states.values())
        shards = [
            pending[start : start + self.shard_size]
            for start in range(0, len(pending), self.shard_size)
        ]
        evictions_before = self.cache.evictions

        pool: Optional[RestartablePool] = (
            RestartablePool(self.workers) if self.workers > 1 else None
        )
        try:
            for shard_index, shard in enumerate(shards):
                for state in shard:
                    state.shard = shard_index
                await asyncio.gather(
                    *(self._run_one(state, pool) for state in shard)
                )
        finally:
            if pool is not None:
                pool.close()
                self.registry.counter("fabric_pool_restarts").inc(pool.restarts)

        # Publish fresh successes to both cache layers, then fill slots.
        for key, state in states.items():
            record = state.record
            assert record is not None
            if record.ok:
                self.cache.put(key, record)
                memo_put(key, record)
            for index in slots[key]:
                records[index] = record

        self._count_cache(
            "eviction", self.cache.evictions - evictions_before
        )
        snapshot = self.cache.stats()
        self.registry.gauge("fabric_cache_entries").set(float(snapshot["entries"]))
        self.registry.gauge("fabric_cache_bytes").set(float(snapshot["bytes"]))
        return records  # type: ignore[return-value]

    # ---------------------------------------------------------- one job

    async def _run_one(self, state: JobState, pool: Optional[RestartablePool]) -> None:
        job = state.job
        use_pool = pool is not None and _is_picklable(job)
        loop = asyncio.get_running_loop()
        last_error = "never attempted"
        attempt = 0
        while attempt < self.retry.max_attempts:
            attempt += 1
            state.attempts = attempt
            state.status = JobStatus.RUNNING
            self._emit(state, JobStatus.RUNNING, attempt)
            self.registry.counter("fabric_attempts").inc()
            started = time.perf_counter()
            generation = -1
            try:
                if use_pool and self._pool_ok and pool is not None:
                    generation = pool.generation
                    future = asyncio.wrap_future(pool.submit(execute_job, job))
                    if self.job_timeout is None:
                        record = await future
                    else:
                        record = await asyncio.wait_for(
                            future, timeout=self.job_timeout
                        )
                else:
                    record = await loop.run_in_executor(None, execute_job, job)
            except PoolUnavailable as exc:
                # Not the job's fault and not a consumed attempt: degrade
                # the whole run to serial in-process execution.
                self._pool_ok = False
                self.registry.counter("fabric_pool_unavailable").inc()
                self._emit(
                    state,
                    JobStatus.QUEUED,
                    attempt,
                    detail=f"pool unavailable, degrading to serial: {exc}",
                )
                attempt -= 1
                continue
            except (TimeoutError, asyncio.TimeoutError):
                last_error = (
                    f"TimeoutError: attempt exceeded {self.job_timeout}s"
                )
                self.registry.counter("fabric_timeouts").inc()
                if pool is not None:
                    # A running future cannot be cancelled; killing the
                    # worker is the only way to reclaim it.
                    pool.restart_if(generation)
            except _POOL_CASUALTIES as exc:
                last_error = f"{type(exc).__name__}: worker pool broke mid-job"
                self.registry.counter("fabric_crashes").inc()
                if pool is not None:
                    pool.restart_if(generation)
            except Exception as exc:
                last_error = f"{type(exc).__name__}: {exc}"
            else:
                self.registry.histogram("fabric_attempt_seconds").observe(
                    time.perf_counter() - started
                )
                state.status = JobStatus.DONE
                state.record = record
                self._count_job("done")
                self._emit(state, JobStatus.DONE, attempt)
                return
            self.registry.histogram("fabric_attempt_seconds").observe(
                time.perf_counter() - started
            )
            if not self.retry.exhausted(attempt):
                self.registry.counter("fabric_retries").inc()
                await asyncio.sleep(self.retry.delay(attempt, self._rng))

        state.status = JobStatus.FAILED
        state.error = last_error
        state.record = JobRecord(
            job_key=state.key, result=None, error=last_error
        )
        self._count_job("failed")
        self._emit(state, JobStatus.FAILED, state.attempts, detail=last_error)

    # ----------------------------------------------------------- plumbing

    def _emit(
        self,
        state: JobState,
        status: JobStatus,
        attempt: int = 0,
        detail: str = "",
    ) -> None:
        event = FabricEvent(
            key=state.key, status=status, attempt=attempt, detail=detail
        )
        state.history.append(event)
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)

    def _finish_cached(self, key: str) -> None:
        self._count_job("cached")
        event = FabricEvent(key=key, status=JobStatus.CACHED)
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)

    def _count_job(self, status: str) -> None:
        self.registry.counter("fabric_jobs", status=status).inc()

    def _count_cache(self, event: str, amount: int = 1) -> None:
        if amount:
            self.registry.counter("fabric_cache", event=event).inc(amount)
