"""Cache lifecycle services for the sweep fabric.

The mechanics — LRU eviction against a size budget, hit/miss/eviction
counters, and the :data:`~repro.sim.engine.SCHEMA_MIGRATIONS` chain that
keeps old-schema entries readable across a ``CACHE_SCHEMA_VERSION`` bump
— live on :class:`repro.sim.engine.ResultCache` itself, so every cache
user (``run_job``, ``SweepRunner``, the fabric) gets them.  This module
adds the service-level operations the ``python -m repro fabric`` CLI
exposes: a stats report and an explicit garbage-collection pass.

Eviction rules (also in DESIGN.md §"Sweep fabric"):

- the budget bounds *total bytes of entries*; 0 means unbounded;
- coldest-first: victims are picked by ascending mtime, and a cache hit
  touches its entry, so a just-hit key always outlives a colder one;
- ``put`` evicts *after* writing, so the cache never exceeds its budget
  between operations (a budget smaller than one entry evicts that entry
  — the invariant wins over retention);
- eviction is advisory-safe: a concurrently-deleted entry is skipped,
  a re-read of an evicted key is an ordinary miss that re-executes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sim.engine import (
    SCHEMA_MIGRATIONS,
    ResultCache,
    register_schema_migration,
)

__all__ = [
    "SCHEMA_MIGRATIONS",
    "cache_stats",
    "gc_cache",
    "register_schema_migration",
]


def cache_stats(cache: Optional[ResultCache] = None) -> Dict[str, Any]:
    """Occupancy snapshot of the (default) result cache.

    Extends :meth:`ResultCache.stats` with entry-age bounds so ``fabric
    status`` can show how stale the cache is without listing every file.
    """
    cache = cache if cache is not None else ResultCache()
    stats = cache.stats()
    rows = cache.entries()
    stats["oldest_mtime"] = rows[0][1] if rows else None
    stats["newest_mtime"] = rows[-1][1] if rows else None
    stats["over_budget"] = bool(
        cache.budget_bytes and stats["bytes"] > cache.budget_bytes
    )
    return stats


def gc_cache(
    cache: Optional[ResultCache] = None,
    budget_bytes: Optional[int] = None,
) -> Dict[str, Any]:
    """Evict LRU entries until the cache fits its (or the given) budget.

    Returns ``{"evicted": n, "entries": left, "bytes": left_bytes,
    "budget_bytes": effective}``.  With no budget configured anywhere this
    is a no-op — use :meth:`ResultCache.clear` to wipe the cache outright.
    """
    cache = cache if cache is not None else ResultCache()
    effective = cache.budget_bytes if budget_bytes is None else budget_bytes
    evicted = cache.evict_to_budget(effective)
    rows = cache.entries()
    return {
        "evicted": evicted,
        "entries": len(rows),
        "bytes": sum(size for _path, _mtime, size in rows),
        "budget_bytes": effective,
    }
