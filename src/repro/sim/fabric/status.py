"""Job status model for the sweep fabric.

Every job submitted to the :class:`~repro.sim.fabric.FabricScheduler`
moves through a small state machine::

    QUEUED ──────────────► CACHED            (memo / disk-cache hit)
       │
       ▼        retry (backoff + jitter)
    RUNNING ◄──────────────┐
       │                   │
       ├── success ──► DONE│
       └── crash / timeout / exception
                           │ attempts left?
                           ├── yes ──┘
                           └── no ───► FAILED

``CACHED``, ``DONE`` and ``FAILED`` are terminal.  Transitions are
streamed as :class:`FabricEvent` values (and mirrored into the
scheduler's :class:`~repro.obs.metrics.MetricsRegistry`), so callers can
watch a batch progress without polling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import JobRecord, SimJob

__all__ = ["JobStatus", "JobState", "FabricEvent", "TERMINAL_STATUSES"]


class JobStatus(str, Enum):
    """Lifecycle states of one fabric job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CACHED = "cached"


#: States a job never leaves.
TERMINAL_STATUSES = frozenset(
    {JobStatus.DONE, JobStatus.FAILED, JobStatus.CACHED}
)


@dataclass(frozen=True)
class FabricEvent:
    """One observed status transition, in emission order."""

    key: str
    status: JobStatus
    attempt: int = 0
    detail: str = ""


@dataclass
class JobState:
    """Mutable per-unique-job bookkeeping inside one scheduler run."""

    index: int  #: first position of this job in the submitted batch
    key: str
    job: "SimJob"
    status: JobStatus = JobStatus.QUEUED
    attempts: int = 0
    shard: int = -1
    error: str = ""
    record: Optional["JobRecord"] = None
    history: list = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES
