"""Steady-phase fast path: fused hot loop + memoized same-line block replay.

:class:`~repro.sim.simulator.HybridSimulator` spends nearly all of its time
in a per-block loop whose work decomposes into address generation
(:meth:`AddressStream.take`), BT steering (:meth:`BTRuntime.on_block`), and
the core timing walk (:meth:`CoreModel.execute_block`).  ``run_fast``
replaces that loop with a single fused one that is *bit-identical* to the
reference path — same :class:`SimulationResult` fields, same event stream
at ``obs_level="full"`` — while eliminating its per-block overheads:

- **No BlockExec materialisation.**  Branch resolution, address generation
  and cache access are fused into the loop body; the per-block address
  list and ``BlockExec`` wrapper are never built.
- **Inline BT continuation walk.**  The common case — the next block is
  the next entry of the current translation's trace — is a two-compare
  check on hoisted locals instead of a method call.
- **Inline L1 probe.**  Each access performs the L1 dict probe directly
  and falls into the single monomorphic
  :meth:`CacheHierarchy.access_below_l1` call only on a miss.
- **Batched counters.**  Monotonic counters (instructions, micro-ops,
  L1 hit/miss/writeback, translated blocks, ...) accumulate in locals and
  are flushed by ``_sync()`` exactly where an observer could read them:
  immediately before a PowerChop window boundary and at run end.  Counters
  that are read (or published into event payloads) mid-window — BPU
  lookups, VPU native/emulated ops, all MLC/LLC/prefetcher state — are
  never batched.
- **Same-line replay (the memoization).**  After an access to cache line
  ``L``, ``L`` is the MRU of its L1 set; if the *globally next* access is
  to the same line it must hit at MRU, and its only architectural effects
  are ``hits += 1``, ``level_counts[L1] += 1`` and a possible dirty-bit
  set (none of which perturb LRU order).  The per-access guard
  ``line == last_line`` elides the dict probe in that case.  For blocks on
  a deterministic stream (``random_frac == 0`` and a non-random pattern)
  the same argument lifts to the whole block: when every address the block
  will generate provably lands on ``last_line`` (pure cursor arithmetic —
  no RNG draw is skipped), the block's entire memory walk is replayed as a
  pair of counter increments and one cursor update.

Whole-block replay is additionally gated behind ``K_STREAK`` consecutive
qualifying executions of the same static block, and the streak table is
conservatively invalidated on every gating transition, PowerChop policy
action / measurement arming, window boundary, and phase change (see
:class:`FastPathState`).  Streams with ``random_frac > 0`` never enter the
block-replay path at all — each of their accesses must consume its RNG
draw, so they always take the per-access loop.  Correctness never rests on
the streak bookkeeping: the entry guard itself is exact, so the fast path
stays bit-identical even if an invalidation hook were missed; the hooks
keep the memoization honest about phase stability rather than sound.

The loop mirrors :meth:`SyntheticWorkload.trace` (schedule walk, per-phase
stream seeding, cursor arithmetic, produced-count termination) — a change
to either must be mirrored in the other; ``tests/test_fastpath.py`` holds
the equivalence suite that catches a divergence.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Sequence

from repro.bt.runtime import ExecMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import HybridSimulator

#: Sentinel for the allocation-free L1 dict probe (mirrors cache.py).
_MISSING = object()

#: Consecutive qualifying executions of a static block before its memory
#: walk is replayed wholesale.
K_STREAK = 4

_INTERPRETED = ExecMode.INTERPRETED


class FastPathState:
    """Replay-streak table plus fast-path statistics.

    Registered as ``core.fastpath_listener`` (and consulted by the
    PowerChop controller) so every event that could mark a phase change —
    unit gating, a policy application, a measurement window being armed, a
    window boundary — conservatively clears the streak table.
    """

    __slots__ = (
        "streaks",
        "blocks_replayed",
        "accesses_elided",
        "invalidations",
        "window_resets",
        "policy_resets",
        "phase_resets",
        "bursts_recorded",
        "blocks_vectorized",
        "blocks_fallback",
        "pass_a_seconds",
        "pass_b_seconds",
        "scalar_seconds",
        "walk_memo_hits",
        "walk_memo_records",
        "walk_memo_blocks",
        "proof_validations",
        "proof_rejections",
    )

    def __init__(self) -> None:
        #: static block pc -> consecutive qualifying executions
        self.streaks: dict = {}
        self.blocks_replayed = 0
        self.accesses_elided = 0
        self.invalidations = 0
        self.window_resets = 0
        self.policy_resets = 0
        self.phase_resets = 0
        #: Vectorized-backend statistics (always zero under ``fastpath``):
        #: recorded bursts, blocks evaluated by batch kernels, and blocks
        #: that took the per-access fallback loop instead.
        self.bursts_recorded = 0
        self.blocks_vectorized = 0
        self.blocks_fallback = 0
        #: Wall-clock split of the vectorized run loop (pass A = recording
        #: walk, pass B = array flushes, scalar = window-boundary blocks);
        #: reported by ``scripts/profile_simulator.py --breakdown``.
        self.pass_a_seconds = 0.0
        self.pass_b_seconds = 0.0
        self.scalar_seconds = 0.0
        #: Walk-trace memo statistics (vectorized backend, certified
        #: deterministic regions only): chunks replayed / recorded and
        #: blocks covered by replays.
        self.walk_memo_hits = 0
        self.walk_memo_records = 0
        self.walk_memo_blocks = 0
        #: Proof-certificate consumption: certificates validated against the
        #: live workload, and certificates rejected (stale/inapplicable —
        #: the run fell back to runtime checks).
        self.proof_validations = 0
        self.proof_rejections = 0

    def note_gating(self, unit: str) -> None:
        """A unit changed power state (VPU/BPU gate, MLC way-gate/flush)."""
        self.invalidations += 1
        self.streaks.clear()

    def note_window(self) -> None:
        """A PowerChop execution window completed."""
        self.window_resets += 1
        self.streaks.clear()

    def note_policy_action(self) -> None:
        """The controller applied a policy or armed a measurement window."""
        self.policy_resets += 1
        self.streaks.clear()


class FastPathBackend:
    """Backend wrapper around :func:`run_fast` (probes delegate to reference)."""

    name = "fastpath"
    needs_replay_state = True

    def run(
        self,
        simulator: "HybridSimulator",
        max_instructions: int,
        probes: Sequence = (),
    ) -> float:
        if probes:
            # Probe callbacks need the per-block BlockExec view; only the
            # reference loop provides it.
            from repro.sim.backends import get_backend

            return get_backend("reference").run(simulator, max_instructions, probes)
        return run_fast(simulator, max_instructions)


def run_fast(simulator: "HybridSimulator", max_instructions: int) -> float:
    """Run the fused fast-path loop; returns total cycles.

    Drop-in replacement for the probe-free body of
    :meth:`HybridSimulator.run` — on return every component counter, the
    BT walk state, and the workload's address-stream cursors hold exactly
    the values the reference loop would have left.
    """
    workload = simulator.workload
    core = simulator.core
    bt = simulator.bt
    controller = simulator.controller
    timeout_ctl = simulator.timeout_controller
    tracer = simulator.tracer
    tracer_active = tracer.active
    counters = core.counters
    design = core.design
    hier = core.hierarchy
    l1 = hier.l1
    l1_sets = l1._sets
    line_shift = l1._line_shift
    set_mask = l1._set_mask
    l1_ways = l1.active_ways  # the L1 is never way-gated at runtime
    level_counts = hier.level_counts
    below = hier.access_below_l1
    vpu = core.vpu
    vpu_emul_extra = vpu.emulation_factor - 1
    bpu_predict = core._bpu_predict_and_update
    # Predictor structures for the inlined hot case (large side predicting).
    # Gating flushes these tables *in place* (lists/dicts survive), so the
    # references stay valid across the whole run; the mode flags
    # (large_on / force_small) are re-read per branch.
    bpu = core.bpu
    bp_local = bpu.large.local
    bp_lhist = bp_local._histories
    bp_lctrs = bp_local._counters
    bp_lhist_mask = bp_local._hist_mask
    bp_lpat_mask = bp_local._pat_mask
    bp_lbits_mask = bp_local._history_bits_mask
    bp_gshare = bpu.large.global_pred
    bp_gctrs = bp_gshare._counters
    bp_gmask = bp_gshare._mask
    bp_ghr_mask = bp_gshare._ghr_mask
    bp_chooser = bpu.large._chooser
    bp_chooser_mask = bpu.large._chooser_mask
    bp_small = bpu.small
    bp_shist = bp_small._histories
    bp_sctrs = bp_small._counters
    bp_shist_mask = bp_small._hist_mask
    bp_spat_mask = bp_small._pat_mask
    bp_sbits_mask = bp_small._history_bits_mask
    bp_btb = bpu.large_btb
    bp_btb_entries = bp_btb._entries
    bp_btb_cap = bp_btb.n_entries
    issue_cpi = core._issue_cpi
    stall_factor = core._stall_factor
    interp_cpi = design.interpreter_cpi
    mispredict_penalty = design.mispredict_penalty
    btb_redirect_penalty = design.btb_redirect_penalty

    fstate = simulator.fastpath_state
    streaks = fstate.streaks

    history = workload.history
    history_mask = history._mask
    phases = workload.phases
    phase_order = workload._phase_order
    schedule = workload.schedule
    wseed = workload.seed

    htb = controller.htb if controller is not None else None
    wtrigger = htb.window_size - 1 if htb is not None else -1
    on_entry = controller.on_translation_entry if controller is not None else None
    timeout_step = timeout_ctl.step if timeout_ctl is not None else None
    bt_on_block = bt.on_block
    region_cache = bt.region_cache
    rc_get = region_cache._by_head.get
    rc_stats = region_cache.stats

    cycles = 0.0
    produced = 0

    # Batched monotonic counters (flushed by _sync).
    b_instr = b_micro = b_simd = b_branches = b_misp = b_redir = b_mem = 0
    b_l1_hits = b_l1_misses = b_l1_wb = b_translated = 0

    # Hoisted BT walk state (synced back around every bt.on_block call).
    cur_trans = bt._current
    cur_pcs: tuple = ()
    cur_pos = 0
    cur_len = 0
    if cur_trans is not None:  # pragma: no cover - fresh simulators start cold
        cur_pcs = cur_trans.block_pcs
        cur_len = len(cur_pcs)
        cur_pos = bt._pos

    # Same-line replay guard: the line / L1 set / dirty bit of the globally
    # previous access.  The L1 is never flushed or way-gated mid-run, so
    # the "last line is MRU of last_set" invariant survives every gating
    # transition, window boundary and phase change.
    last_line = -1
    last_set: dict = {}
    last_dirty = False

    def _sync() -> None:
        """Flush batched counters into their architectural homes."""
        nonlocal b_instr, b_micro, b_simd, b_branches, b_misp, b_redir, b_mem
        nonlocal b_l1_hits, b_l1_misses, b_l1_wb, b_translated
        counters.instructions += b_instr
        counters.micro_ops += b_micro
        counters.simd_instructions += b_simd
        counters.branches += b_branches
        counters.mispredicts += b_misp
        counters.btb_redirects += b_redir
        counters.memory_ops += b_mem
        l1.hits += b_l1_hits
        l1.misses += b_l1_misses
        l1.writebacks += b_l1_wb
        level_counts[0] += b_l1_hits
        bt.translated_blocks += b_translated
        b_instr = b_micro = b_simd = b_branches = b_misp = b_redir = b_mem = 0
        b_l1_hits = b_l1_misses = b_l1_wb = b_translated = 0

    while True:
        for phase_name, n_blocks in schedule:
            phase = phases[phase_name]
            # Seed expression mirrors SyntheticWorkload.trace exactly
            # (& binds tighter than ^).
            stream = phase.address_stream(
                phase_order[phase_name],
                wseed ^ zlib.crc32(phase_name.encode()) & 0xFFFF,
            )
            behavior = stream.behavior
            sbase = stream.base
            cursor = stream._cursor
            stride = behavior.stride
            random_frac = behavior.random_frac
            pattern = behavior.pattern
            ws_bytes = stream._ws_bytes
            limit = ws_bytes if pattern == "loop" else stream._stream_limit
            rng_random = stream._random  # lint: rng-mirrored
            # Inlined randrange(ws_bytes): CPython's Random.randrange on a
            # positive int stop delegates to _randbelow_with_getrandbits —
            # replicated here verbatim so the draw sequence is identical
            # while skipping two interpreter frames per draw.
            rng_getrandbits = stream._rng.getrandbits  # lint: rng-mirrored
            ws_k = ws_bytes.bit_length()
            use_rng = random_frac > 0.0
            is_random = pattern == "random"
            deterministic = not use_rng and not is_random

            fstate.phase_resets += 1
            streaks.clear()

            region = phase.region
            region_blocks = region.blocks
            idx = region.entry

            for _ in range(n_blocks):
                block = region_blocks[idx]
                pc = block.pc
                branch = block.branch
                if branch is None:
                    succ = block.fall_succ
                    taken = False
                else:
                    # Inlined StaticBranch.resolve + GlobalHistory.push:
                    # the model reads history *before* the push, as there.
                    taken = branch.model.next_outcome(history)
                    history.bits = ((history.bits << 1) | taken) & history_mask
                    branch.executions += 1
                    succ = block.taken_succ if taken else block.fall_succ

                if tracer_active:
                    tracer.now = cycles
                if timeout_step is not None:
                    stall = timeout_step(block.n_vec > 0, cycles)
                    if stall:
                        cycles += stall

                # ---- BT steering (inlined continuation walk) ----
                if (
                    cur_trans is not None
                    and cur_pos < cur_len
                    and cur_pcs[cur_pos] == pc
                ):
                    cur_pos += 1
                    b_translated += 1
                    interpreting = False
                else:
                    if cur_trans is not None:
                        bt._current = None
                    # Inlined region-cache hit (the raw dict probe does not
                    # touch stats; they are counted exactly once below, as
                    # RegionCache.lookup would).
                    entered = rc_get(pc)
                    if entered is not None:
                        rc_stats.lookups += 1
                        rc_stats.hits += 1
                        cur_trans = entered
                        cur_pcs = entered.block_pcs
                        cur_len = len(cur_pcs)
                        cur_pos = 1
                        b_translated += 1
                        interpreting = False
                    else:
                        exec_mode, bt_cycles, entered = bt_on_block(block)
                        if bt_cycles:
                            cycles += bt_cycles
                        cur_trans = bt._current
                        if cur_trans is not None:
                            cur_pcs = cur_trans.block_pcs
                            cur_len = len(cur_pcs)
                            cur_pos = bt._pos
                        interpreting = exec_mode is _INTERPRETED
                    if entered is not None and on_entry is not None:
                        # The record() inside on_translation_entry may end
                        # the window, whose stats read the perf counters —
                        # flush the batches first.
                        if htb.window_executions == wtrigger:
                            _sync()
                        stall = on_entry(entered, cycles)
                        if stall:
                            cycles += stall

                # ---- issue ----
                n_vec = block.n_vec
                n_instr = block.n_instr
                if n_vec:
                    # Inlined VectorUnit.execute (n_vec is always > 0 here).
                    if vpu.gated_on:
                        vpu.native_ops += n_vec
                        extra_ops = 0
                    else:
                        vpu.emulated_ops += n_vec
                        extra_ops = n_vec * vpu_emul_extra
                    micro_ops = n_instr + extra_ops
                    b_simd += n_vec
                    if interpreting:
                        bc = n_instr * interp_cpi + extra_ops * issue_cpi
                    else:
                        bc = micro_ops * issue_cpi
                else:
                    micro_ops = n_instr
                    bc = n_instr * interp_cpi if interpreting else n_instr * issue_cpi

                # ---- memory ----
                n_mem = block.n_mem
                if n_mem:
                    elide = False
                    if deterministic:
                        end = cursor + (n_mem - 1) * stride
                        if (
                            end < limit
                            and (sbase + cursor) >> line_shift == last_line
                            and (sbase + end) >> line_shift == last_line
                        ):
                            streak = streaks.get(pc, 0)
                            if streak >= K_STREAK:
                                elide = True
                            else:
                                streaks[pc] = streak + 1
                        else:
                            streaks.pop(pc, None)
                    if elide:
                        # Every access is an MRU hit on last_line: replay
                        # the block's memory walk as counter arithmetic.
                        b_l1_hits += n_mem
                        if n_mem > block.n_loads and not last_dirty:
                            last_set[last_line] = True
                            last_dirty = True
                        cursor = end + stride
                        if cursor >= limit:
                            cursor -= limit
                        fstate.blocks_replayed += 1
                        fstate.accesses_elided += n_mem
                    else:
                        n_loads = block.n_loads
                        for i in range(n_mem):
                            # Address generation mirrors AddressStream
                            # .next()/.take() — including the RNG draw
                            # order on mixed streams.
                            if use_rng:
                                if rng_random() < random_frac or is_random:
                                    r = rng_getrandbits(ws_k)
                                    while r >= ws_bytes:
                                        r = rng_getrandbits(ws_k)
                                    addr = sbase + r
                                else:
                                    addr = sbase + cursor
                                    cursor += stride
                                    if cursor >= limit:
                                        cursor -= limit
                            elif is_random:
                                r = rng_getrandbits(ws_k)
                                while r >= ws_bytes:
                                    r = rng_getrandbits(ws_k)
                                addr = sbase + r
                            else:
                                addr = sbase + cursor
                                cursor += stride
                                if cursor >= limit:
                                    cursor -= limit

                            is_write = i >= n_loads
                            line = addr >> line_shift
                            if line == last_line:
                                # Same-line replay: MRU hit, no reorder.
                                b_l1_hits += 1
                                if is_write and not last_dirty:
                                    last_set[line] = True
                                    last_dirty = True
                                continue
                            cache_set = l1_sets[line & set_mask]
                            dirty = cache_set.pop(line, _MISSING)
                            if dirty is not _MISSING:
                                b_l1_hits += 1
                                if is_write:
                                    dirty = True
                                cache_set[line] = dirty
                                last_dirty = dirty
                            else:
                                b_l1_misses += 1
                                cache_set[line] = is_write
                                while len(cache_set) > l1_ways:
                                    if cache_set.pop(next(iter(cache_set))):
                                        b_l1_wb += 1
                                stall, _level = below(addr, is_write)
                                if stall:
                                    bc += stall * stall_factor
                                last_dirty = is_write
                            last_set = cache_set
                            last_line = line
                    b_mem += n_mem

                # ---- branch resolution through the active predictor ----
                if branch is not None:
                    b_branches += 1
                    bpc = branch.pc
                    if bpu.large_on and not bpu.force_small:
                        # Inlined BranchUnit.predict_and_update hot case:
                        # identical table reads/writes in identical order
                        # (bpu.lookups / mispredicts / btb stats are read
                        # mid-window by observers, so they stay direct).
                        bpu.lookups += 1
                        key = bpc >> 2
                        hidx = key & bp_lhist_mask
                        lhistory = bp_lhist[hidx]
                        cidx = lhistory & bp_lpat_mask
                        ctr = bp_lctrs[cidx]
                        if taken:
                            if ctr < 3:
                                bp_lctrs[cidx] = ctr + 1
                        elif ctr > 0:
                            bp_lctrs[cidx] = ctr - 1
                        bp_lhist[hidx] = ((lhistory << 1) | taken) & bp_lbits_mask
                        local_pred = ctr >= 2

                        ghr = bp_gshare.ghr
                        gidx = (key ^ ghr) & bp_gmask
                        gctr = bp_gctrs[gidx]
                        if taken:
                            if gctr < 3:
                                bp_gctrs[gidx] = gctr + 1
                        elif gctr > 0:
                            bp_gctrs[gidx] = gctr - 1
                        bp_gshare.ghr = ((ghr << 1) | taken) & bp_ghr_mask
                        global_pred = gctr >= 2

                        if local_pred == global_pred:
                            prediction = local_pred
                        else:
                            chidx = key & bp_chooser_mask
                            cctr = bp_chooser[chidx]
                            if global_pred == taken:
                                if cctr < 3:
                                    bp_chooser[chidx] = cctr + 1
                            elif cctr > 0:
                                bp_chooser[chidx] = cctr - 1
                            prediction = global_pred if cctr >= 2 else local_pred

                        shidx = key & bp_shist_mask
                        shistory = bp_shist[shidx]
                        scidx = shistory & bp_spat_mask
                        sctr = bp_sctrs[scidx]
                        if taken:
                            if sctr < 3:
                                bp_sctrs[scidx] = sctr + 1
                        elif sctr > 0:
                            bp_sctrs[scidx] = sctr - 1
                        bp_shist[shidx] = ((shistory << 1) | taken) & bp_sbits_mask

                        redirect = False
                        if taken:
                            if bpc in bp_btb_entries:
                                bp_btb_entries.move_to_end(bpc)
                                bp_btb_entries[bpc] = 0
                                bp_btb.hits += 1
                            else:
                                bp_btb.misses += 1
                                if len(bp_btb_entries) >= bp_btb_cap:
                                    bp_btb_entries.popitem(last=False)
                                bp_btb_entries[bpc] = 0
                                redirect = True
                                bpu.btb_misses += 1
                        if prediction != taken:
                            bpu.mispredicts += 1
                            b_misp += 1
                            bc += mispredict_penalty
                        elif redirect:
                            b_redir += 1
                            bc += btb_redirect_penalty
                    else:
                        mispredicted, redirect = bpu_predict(bpc, taken)
                        if mispredicted:
                            b_misp += 1
                            bc += mispredict_penalty
                        elif redirect:
                            b_redir += 1
                            bc += btb_redirect_penalty

                b_instr += n_instr
                b_micro += micro_ops
                cycles += bc
                produced += n_instr
                if produced >= max_instructions:
                    stream._cursor = cursor
                    bt._current = cur_trans
                    if cur_trans is not None:
                        bt._pos = cur_pos
                    _sync()
                    return cycles
                idx = succ

            stream._cursor = cursor
