"""Execution backends for :class:`~repro.sim.simulator.HybridSimulator`.

A *backend* owns the simulator's inner run loop — the code that walks the
workload trace, steers blocks through the BT runtime, charges cycles and
drives the gating controllers.  Every backend is **bit-identical** to the
reference loop (same :class:`SimulationResult`, same ``obs_level="full"``
event stream, same component state on exit); they differ only in how fast
they get there.  That contract is what lets backend selection stay out of
:meth:`SimJob.key` — cached results are shared freely across backends —
and is enforced by the three-way equivalence suite in
``tests/test_backends.py``.

Built-in backends:

- ``reference``  — the probe-ful loop: materialises every
  :class:`BlockExec`, calls each component through its public method.  The
  correctness oracle, and the only loop that supports probes.
- ``fastpath``   — the fused loop of :mod:`repro.sim.backends.fastpath`:
  per-access, but with inlined component hot paths, batched monotonic
  counters and memoized same-line block replay.
- ``vectorized`` — :mod:`repro.sim.backends.vectorized` (requires numpy):
  records each steady (deterministic-stream) burst's access+branch trace
  once with a lean scalar pass, then evaluates the burst's timing and
  cache behaviour as batched array kernels, falling back to the per-access
  loop on ``random_frac > 0`` streams, probes, tracing and TIMEOUT mode.

Selection rules: ``HybridSimulator(backend="...")`` resolves a name
through :func:`get_backend`; the deprecated ``fastpath: bool`` flag maps
``True → "fastpath"`` and ``False → "reference"``.  Backends whose
``needs_replay_state`` is true get a :class:`FastPathState` attached as
``core.fastpath_listener`` so gating/policy/window events conservatively
invalidate any memoized replay state.

Backend implementations must live in this package: a lint rule
(``scripts/lint_determinism.py``, rule D003) flags trace-walking run
loops anywhere else under ``repro/``, so loop logic cannot leak back
into ``simulator.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import HybridSimulator

try:  # pragma: no cover - Protocol is stdlib on every supported version
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - very old pythons only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


__all__ = [
    "SimBackend",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
]

#: The default execution backend (bit-identical to ``reference``; the
#: fastest loop that needs no optional dependency).
DEFAULT_BACKEND = "fastpath"


@runtime_checkable
class SimBackend(Protocol):
    """The backend contract: one run loop, bit-identical to the reference.

    ``run`` executes up to ``max_instructions`` guest instructions against
    the (freshly constructed, single-use) simulator and returns total
    cycles; on return every component counter, the BT walk state and the
    workload's stream cursors must hold exactly the values the reference
    loop would have left.  ``needs_replay_state`` tells the simulator to
    create a :class:`~repro.sim.backends.fastpath.FastPathState` and
    attach it as ``core.fastpath_listener`` before the run.
    """

    name: str
    needs_replay_state: bool

    def run(
        self,
        simulator: "HybridSimulator",
        max_instructions: int,
        probes: Sequence,
    ) -> float: ...


#: name -> zero-arg factory.  Factories defer imports so that optional
#: dependencies (numpy for ``vectorized``) are only required when the
#: backend is actually selected.
_FACTORIES: Dict[str, Callable[[], SimBackend]] = {}
_INSTANCES: Dict[str, SimBackend] = {}


def register_backend(name: str, factory: Callable[[], SimBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    if not name or not name.islower():
        raise ValueError(f"backend names are non-empty lowercase, got {name!r}")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_FACTORIES)


def get_backend(name: str) -> SimBackend:
    """Resolve a backend name to its (memoised) instance.

    Raises ``ValueError`` for unknown names, or ``RuntimeError`` when the
    backend exists but its optional dependency is missing.
    """
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(_FACTORIES)}"
        )
    instance = factory()
    _INSTANCES[name] = instance
    return instance


def resolve_backend_name(backend, fastpath) -> str:
    """Map the (backend, deprecated fastpath flag) pair to a backend name.

    ``fastpath`` predates backend selection: ``True`` meant the fused loop
    and ``False`` the reference loop.  It survives as a shim —
    ``None``/``None`` selects :data:`DEFAULT_BACKEND`, and passing both a
    backend name and a fastpath flag is an error.
    """
    if backend is not None:
        if fastpath is not None:
            raise ValueError(
                "pass either backend=... or the deprecated fastpath=..., not both"
            )
        if backend not in _FACTORIES:
            raise ValueError(
                f"unknown backend {backend!r}; available: {', '.join(_FACTORIES)}"
            )
        return backend
    if fastpath is None or fastpath:
        return DEFAULT_BACKEND
    return "reference"


def _make_reference() -> SimBackend:
    from repro.sim.backends.reference import ReferenceBackend

    return ReferenceBackend()


def _make_fastpath() -> SimBackend:
    from repro.sim.backends.fastpath import FastPathBackend

    return FastPathBackend()


def _make_vectorized() -> SimBackend:
    try:
        from repro.sim.backends.vectorized import VectorizedBackend
    except ImportError as exc:  # pragma: no cover - numpy is a baked-in dep
        raise RuntimeError(
            "the 'vectorized' backend requires numpy; install it or select "
            "backend='fastpath'"
        ) from exc
    return VectorizedBackend()


register_backend("reference", _make_reference)
register_backend("fastpath", _make_fastpath)
register_backend("vectorized", _make_vectorized)
