"""The reference execution backend: the correctness oracle.

This is the original :meth:`HybridSimulator.run` loop body, moved behind
the :class:`~repro.sim.backends.SimBackend` protocol.  Every block is
materialised as a :class:`BlockExec` and walked through the public
component methods — no inlining, no batching, no memoization — so this
loop *defines* the simulator's semantics.  The ``fastpath`` and
``vectorized`` backends are proven bit-identical against it by
``tests/test_backends.py``.

Two bodies share the file: a tight loop for probe-free runs with tracing
off (the pre-observability hot path, unchanged), and the probe-ful loop
that keeps the tracer clock current and delivers per-block / per-window
probe callbacks.  This is the only backend that supports probes; the
others delegate probe-carrying runs here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.bt.runtime import ExecMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import HybridSimulator


class ReferenceBackend:
    """Probe-ful reference loop (see module docstring)."""

    name = "reference"
    needs_replay_state = False

    def run(
        self,
        simulator: "HybridSimulator",
        max_instructions: int,
        probes: Sequence = (),
    ) -> float:
        core = simulator.core
        bt = simulator.bt
        controller = simulator.controller
        timeout_controller = simulator.timeout_controller
        tracer = simulator.tracer
        execute_block = core.execute_block
        on_block = bt.on_block
        interpreted = ExecMode.INTERPRETED
        cycles = 0.0

        if not probes and not tracer.active:
            # The reference tight loop: identical to the pre-observability
            # hot path (the tracer costs nothing here; instrumented
            # components pay one dead branch each at most).
            for block_exec in simulator.workload.trace(max_instructions):
                if timeout_controller is not None:
                    cycles += timeout_controller.on_block(block_exec, cycles)
                exec_mode, bt_cycles, entered = on_block(block_exec.block)
                cycles += bt_cycles
                if entered is not None and controller is not None:
                    cycles += controller.on_translation_entry(entered, cycles)
                cycles += execute_block(block_exec, exec_mode is interpreted)
        else:
            for probe in probes:
                probe.attach(simulator)
            windows_seen = controller.windows_seen if controller else 0
            for block_exec in simulator.workload.trace(max_instructions):
                # Keep the tracer clock current so components without a
                # cycle count in scope can still timestamp their events.
                tracer.now = cycles
                if timeout_controller is not None:
                    cycles += timeout_controller.on_block(block_exec, cycles)
                exec_mode, bt_cycles, entered = on_block(block_exec.block)
                cycles += bt_cycles
                if entered is not None and controller is not None:
                    cycles += controller.on_translation_entry(entered, cycles)
                cycles += execute_block(block_exec, exec_mode is interpreted)
                instructions = core.counters.instructions
                for probe in probes:
                    probe.on_block(block_exec, cycles, instructions)
                if controller is not None and controller.windows_seen != windows_seen:
                    windows_seen = controller.windows_seen
                    for probe in probes:
                        probe.on_window(windows_seen, cycles)

        return cycles
