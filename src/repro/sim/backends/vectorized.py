"""Vectorized batch-replay backend: record a burst once, evaluate it as arrays.

Where the ``fastpath`` backend fuses the reference loop but still walks one
access at a time, this backend splits each steady stretch of execution (a
*burst*) into two passes:

- **Pass A (scalar, lean).**  Walk the schedule exactly as the reference
  loop would: resolve each branch through its model (RNG draws and global
  history are inherently sequential), steer the block through the BT
  runtime's continuation walk, apply the tournament-predictor update
  (table state is serially dependent), and *record* the block index.  No
  cycle math, no memory accesses, no counter updates — those are deferred.
  The walk runs off precomputed per-region columns
  (:func:`_walk_table`) with the common branch models inlined, so each
  block costs a handful of list indexings.
- **Pass B (numpy).**  Gather per-block attribute columns
  (:meth:`CodeRegion.attr_arrays`) for the recorded indices and evaluate
  the whole burst at once: issue cycles as one elementwise product, the
  deterministic address stream as ``(c0 + arange(N)*stride) % limit``, and
  the cache walk via the **visit kernel** below.  Monotonic counters land
  in one :meth:`PerfCounters.add_batch` /
  :meth:`SetAssocCache.charge_bulk` call per burst.

Visit kernel
    A *visit* is a maximal run of consecutive accesses to the same cache
    line (deterministic strided streams revisit each line
    ``line_size/stride`` times in a row).  Only the visit *head* has an
    uncertain hit/miss outcome; every tail access touches the line the
    head just made MRU, so it is an unconditional L1 hit whose only
    effect is a dirty-bit OR.  numpy finds the visit boundaries and
    per-visit write-ORs; a scalar loop then performs one *real* dict
    probe per visit, and on a miss walks an inlined copy of
    :meth:`CacheHierarchy.access_below_l1` (prefetcher scan, MLC/LLC
    probes) against the live structures.  Because the probes are real,
    the kernel is exact by construction — L1/MLC/LLC LRU order,
    writebacks, and prefetcher state evolve exactly as in the reference
    loop, at ~``line_size/stride`` fewer Python iterations.

Bit-exact cycle accounting
    Per-block cycles are assembled in reference order — base issue
    cycles, then memory stalls in access order, then the branch penalty —
    and folded into the running total with ``np.cumsum``, which performs
    the same left-to-right float64 additions as the reference loop's
    ``cycles += bc`` (verified bit-identical; numpy's pairwise summation
    applies to ``np.sum``, not ``cumsum``).  Translation charges are
    spliced in *before* their block's cycles, exactly where the reference
    loop adds them.

Burst boundaries
    A burst ends when (a) the phase segment ends, (b) the instruction
    budget is reached, or (c) the *next* translation entry would trigger a
    PowerChop window end.  For (c) the burst is flushed first — so window
    stats read fully-updated counters and an exact cycle count — then the
    window end runs scalar (policy may re-gate units), and the triggering
    block executes scalar under the *post-policy* configuration.

Fallbacks
    Probes delegate to the ``reference`` backend; full tracing and TIMEOUT
    mode (per-block gating decisions) delegate to ``fastpath``; segments
    with ``random_frac > 0`` or a random pattern run a scalar per-access
    loop in this module (their RNG draws are inherently per-access), with
    live counters so window ends need no special handling.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.bt.runtime import ExecMode
from repro.isa.branches import BiasedBranch, LoopBranch, PatternBranch, RandomBranch
from repro.sim.backends.fastpath import run_fast

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import HybridSimulator

#: Sentinel for the allocation-free L1 dict probe (mirrors cache.py).
_MISSING = object()

_INTERPRETED = ExecMode.INTERPRETED

#: Walk-table resolver kinds (see :func:`_walk_table`).
_K_NONE = 0  # no branch
_K_BIASED = 1  # BiasedBranch / RandomBranch: rng.random() < p_taken
_K_LOOP = 2  # LoopBranch: counter modulo period
_K_PATTERN = 3  # PatternBranch: table walk
_K_GENERIC = 4  # anything else: model.next_outcome(history)


def _walk_table(region):
    """Per-region pass-A columns (memoized on the region object).

    Returns parallel lists indexed by block position: pc, the branch
    object (or None), the branch pc, the resolver kind, the resolver
    operand (bound RNG method, model object, or None), the bias operand,
    both successor indices, and the instruction count.  The inlined kinds
    replicate each model's ``next_outcome`` byte-for-byte — including RNG
    draw order — which the equivalence suite verifies.
    """
    try:
        return region._pass_a_columns
    except AttributeError:
        pass
    pcs, branches, bpcs, kinds, ra, rb = [], [], [], [], [], []
    tsucc, fsucc, ni = [], [], []
    for block in region.blocks:
        pcs.append(block.pc)
        tsucc.append(block.taken_succ)
        fsucc.append(block.fall_succ)
        ni.append(block.n_instr)
        branch = block.branch
        branches.append(branch)
        if branch is None:
            bpcs.append(0)
            kinds.append(_K_NONE)
            ra.append(None)
            rb.append(0.0)
            continue
        bpcs.append(branch.pc)
        model = branch.model
        kind = _K_GENERIC
        # Exact-type checks: a subclass could override next_outcome, so
        # only the leaf classes we replicate verbatim are inlined.
        if type(model) is BiasedBranch or type(model) is RandomBranch:
            kind = _K_BIASED
            ra.append(model._rng.random)
            rb.append(model.p_taken)
        elif type(model) is LoopBranch:
            kind = _K_LOOP
            ra.append(model)
            rb.append(0.0)
        elif type(model) is PatternBranch:
            kind = _K_PATTERN
            ra.append(model)
            rb.append(0.0)
        else:
            ra.append(model)
            rb.append(0.0)
        kinds.append(kind)
    table = (pcs, branches, bpcs, kinds, ra, rb, tsucc, fsucc, ni)
    region._pass_a_columns = table
    return table


class VectorizedBackend:
    """Backend wrapper around :func:`run_vectorized` (see module docstring)."""

    name = "vectorized"
    needs_replay_state = True

    def run(
        self,
        simulator: "HybridSimulator",
        max_instructions: int,
        probes: Sequence = (),
    ) -> float:
        if probes:
            # Probe callbacks need the per-block BlockExec view; only the
            # reference loop provides it.
            from repro.sim.backends import get_backend

            return get_backend("reference").run(simulator, max_instructions, probes)
        if simulator.tracer.active or simulator.timeout_controller is not None:
            # Full event tracing wants per-block timestamps, and TIMEOUT
            # mode gates the VPU on per-block idle decisions — both are
            # inherently per-access; the fused scalar loop handles them.
            return run_fast(simulator, max_instructions)
        return run_vectorized(simulator, max_instructions)


def run_vectorized(simulator: "HybridSimulator", max_instructions: int) -> float:
    """Run the two-pass burst loop; returns total cycles.

    Drop-in replacement for the probe-free body of
    :meth:`HybridSimulator.run` — on return every component counter, the
    BT walk state, and the workload's address-stream cursors hold exactly
    the values the reference loop would have left.
    """
    workload = simulator.workload
    core = simulator.core
    bt = simulator.bt
    controller = simulator.controller
    counters = core.counters
    design = core.design
    hier = core.hierarchy
    l1 = hier.l1
    l1_sets = l1._sets
    line_shift = l1._line_shift
    set_mask = l1._set_mask
    l1_ways = l1.active_ways  # the L1 is never way-gated at runtime
    level_counts = hier.level_counts
    below = hier.access_below_l1
    prefetcher = hier.prefetcher
    mlc = hier.mlc
    llc = hier.llc
    mlc_latency = hier.mlc_latency
    llc_latency = hier.llc_latency
    memory_latency = hier.memory_latency
    prefetched_latency = hier.prefetched_latency
    stall_factor = core._stall_factor
    # Stall contributions are ``stall * stall_factor`` with stall drawn from
    # four constants; precomputing the products is float-identical.
    mlc_cost = mlc_latency * stall_factor
    llc_cost = llc_latency * stall_factor
    memory_cost = memory_latency * stall_factor
    prefetched_cost = prefetched_latency * stall_factor
    mlc_sets = mlc._sets
    mlc_shift = mlc._line_shift
    mlc_mask = mlc._set_mask
    if llc is not None:
        llc_sets = llc._sets
        llc_shift = llc._line_shift
        llc_mask = llc._set_mask
    if prefetcher is not None:
        pf_streams = prefetcher._streams
        pf_stamps = prefetcher._stamps
        pf_window = prefetcher.window
    vpu = core.vpu
    vpu_emul_extra = vpu.emulation_factor - 1
    bpu = core.bpu
    bpu_predict = core._bpu_predict_and_update
    issue_cpi = core._issue_cpi
    interp_cpi = design.interpreter_cpi
    mispredict_penalty = design.mispredict_penalty
    btb_redirect_penalty = design.btb_redirect_penalty

    fstate = simulator.fastpath_state

    history = workload.history
    history_mask = history._mask
    phases = workload.phases
    phase_order = workload._phase_order
    schedule = workload.schedule
    wseed = workload.seed

    htb = controller.htb if controller is not None else None
    wtrigger = htb.window_size - 1 if htb is not None else -1
    on_entry = controller.on_translation_entry if controller is not None else None
    bt_on_block = bt.on_block
    region_cache = bt.region_cache
    rc_get = region_cache._by_head.get
    rc_stats = region_cache.stats

    # Predictor structures for the inlined tournament update (the table
    # objects live for the whole run; gating only toggles flags, so the
    # hoists stay valid — only ``use_large`` must be re-read after any
    # policy action).
    bp_local = bpu.large.local
    bp_lhist = bp_local._histories
    bp_lctrs = bp_local._counters
    bp_lhist_mask = bp_local._hist_mask
    bp_lpat_mask = bp_local._pat_mask
    bp_lbits_mask = bp_local._history_bits_mask
    bp_gshare = bpu.large.global_pred
    bp_gctrs = bp_gshare._counters
    bp_gmask = bp_gshare._mask
    bp_ghr_mask = bp_gshare._ghr_mask
    bp_chooser = bpu.large._chooser
    bp_chooser_mask = bpu.large._chooser_mask
    bp_small = bpu.small
    bp_shist = bp_small._histories
    bp_sctrs = bp_small._counters
    bp_shist_mask = bp_small._hist_mask
    bp_spat_mask = bp_small._pat_mask
    bp_sbits_mask = bp_small._history_bits_mask
    bp_btb = bpu.large_btb
    bp_btb_entries = bp_btb._entries
    bp_btb_cap = bp_btb.n_entries

    cycles = 0.0
    produced = 0

    # Hoisted BT walk state (synced back around every bt.on_block call).
    cur_trans = bt._current
    cur_pcs: tuple = ()
    cur_pos = 0
    cur_len = 0
    if cur_trans is not None:  # pragma: no cover - fresh simulators start cold
        cur_pcs = cur_trans.block_pcs
        cur_len = len(cur_pcs)
        cur_pos = bt._pos

    while True:
        for phase_name, n_blocks in schedule:
            phase = phases[phase_name]
            # Seed expression mirrors SyntheticWorkload.trace exactly
            # (& binds tighter than ^).
            stream = phase.address_stream(
                phase_order[phase_name],
                wseed ^ zlib.crc32(phase_name.encode()) & 0xFFFF,
            )
            behavior = stream.behavior
            sbase = stream.base
            cursor = stream._cursor
            stride = behavior.stride
            random_frac = behavior.random_frac
            pattern = behavior.pattern
            ws_bytes = stream._ws_bytes
            limit = ws_bytes if pattern == "loop" else stream._stream_limit
            use_rng = random_frac > 0.0
            is_random = pattern == "random"

            fstate.phase_resets += 1

            region = phase.region
            region_blocks = region.blocks

            if use_rng or is_random:
                # ---------------- scalar per-access fallback ----------------
                # RNG draws are per-access, so the burst record/replay
                # split buys nothing; run a direct (unbatched) version of
                # the fused loop.  Counters stay live, so window ends need
                # no pre-flush and arrive with exact cycle counts.
                rng_random = stream._random
                rng_getrandbits = stream._rng.getrandbits
                ws_k = ws_bytes.bit_length()
                last_line = -1
                last_set: dict = {}
                last_dirty = False
                use_large = bpu.large_on and not bpu.force_small
                idx = region.entry
                for _ in range(n_blocks):
                    block = region_blocks[idx]
                    pc = block.pc
                    branch = block.branch
                    if branch is None:
                        succ = block.fall_succ
                        taken = False
                    else:
                        taken = branch.model.next_outcome(history)
                        history.bits = ((history.bits << 1) | taken) & history_mask
                        branch.executions += 1
                        succ = block.taken_succ if taken else block.fall_succ

                    # ---- BT steering (inlined continuation walk) ----
                    if (
                        cur_trans is not None
                        and cur_pos < cur_len
                        and cur_pcs[cur_pos] == pc
                    ):
                        cur_pos += 1
                        bt.translated_blocks += 1
                        interpreting = False
                    else:
                        if cur_trans is not None:
                            bt._current = None
                        entered = rc_get(pc)
                        if entered is not None:
                            rc_stats.lookups += 1
                            rc_stats.hits += 1
                            cur_trans = entered
                            cur_pcs = entered.block_pcs
                            cur_len = len(cur_pcs)
                            cur_pos = 1
                            bt.translated_blocks += 1
                            interpreting = False
                        else:
                            exec_mode, bt_cycles, entered = bt_on_block(block)
                            if bt_cycles:
                                cycles += bt_cycles
                            cur_trans = bt._current
                            if cur_trans is not None:
                                cur_pcs = cur_trans.block_pcs
                                cur_len = len(cur_pcs)
                                cur_pos = bt._pos
                            interpreting = exec_mode is _INTERPRETED
                        if entered is not None and on_entry is not None:
                            stall = on_entry(entered, cycles)
                            if stall:
                                cycles += stall
                            # Window-end policy may have (un)gated the BPU.
                            use_large = bpu.large_on and not bpu.force_small

                    # ---- issue ----
                    n_vec = block.n_vec
                    n_instr = block.n_instr
                    if n_vec:
                        extra_ops = vpu.execute(n_vec)
                        micro_ops = n_instr + extra_ops
                        counters.simd_instructions += n_vec
                        if interpreting:
                            bc = n_instr * interp_cpi + extra_ops * issue_cpi
                        else:
                            bc = micro_ops * issue_cpi
                    else:
                        micro_ops = n_instr
                        bc = (
                            n_instr * interp_cpi
                            if interpreting
                            else n_instr * issue_cpi
                        )

                    # ---- memory ----
                    n_mem = block.n_mem
                    if n_mem:
                        n_loads = block.n_loads
                        for i in range(n_mem):
                            # Address generation mirrors AddressStream
                            # .next()/.take() — including the RNG draw
                            # order on mixed streams.
                            if use_rng:
                                if rng_random() < random_frac or is_random:
                                    r = rng_getrandbits(ws_k)
                                    while r >= ws_bytes:
                                        r = rng_getrandbits(ws_k)
                                    addr = sbase + r
                                else:
                                    addr = sbase + cursor
                                    cursor += stride
                                    if cursor >= limit:
                                        cursor -= limit
                            else:
                                r = rng_getrandbits(ws_k)
                                while r >= ws_bytes:
                                    r = rng_getrandbits(ws_k)
                                addr = sbase + r

                            is_write = i >= n_loads
                            line = addr >> line_shift
                            if line == last_line:
                                # Same-line replay: MRU hit, no reorder.
                                l1.hits += 1
                                level_counts[0] += 1
                                if is_write and not last_dirty:
                                    last_set[line] = True
                                    last_dirty = True
                                continue
                            cache_set = l1_sets[line & set_mask]
                            dirty = cache_set.pop(line, _MISSING)
                            if dirty is not _MISSING:
                                l1.hits += 1
                                level_counts[0] += 1
                                if is_write:
                                    dirty = True
                                cache_set[line] = dirty
                                last_dirty = dirty
                            else:
                                l1.misses += 1
                                cache_set[line] = is_write
                                while len(cache_set) > l1_ways:
                                    if cache_set.pop(next(iter(cache_set))):
                                        l1.writebacks += 1
                                stall, _level = below(addr, is_write)
                                if stall:
                                    bc += stall * stall_factor
                                last_dirty = is_write
                            last_set = cache_set
                            last_line = line
                        counters.memory_ops += n_mem

                    # ---- branch resolution through the active predictor ----
                    if branch is not None:
                        counters.branches += 1
                        if use_large:
                            # Inlined BranchUnit.predict_and_update hot case
                            # (identical table reads/writes in identical
                            # order to the burst path's copy below).
                            bpc = branch.pc
                            bpu.lookups += 1
                            key = bpc >> 2
                            hidx = key & bp_lhist_mask
                            lhistory = bp_lhist[hidx]
                            cidx = lhistory & bp_lpat_mask
                            ctr = bp_lctrs[cidx]
                            if taken:
                                if ctr < 3:
                                    bp_lctrs[cidx] = ctr + 1
                            elif ctr > 0:
                                bp_lctrs[cidx] = ctr - 1
                            bp_lhist[hidx] = ((lhistory << 1) | taken) & bp_lbits_mask
                            local_pred = ctr >= 2

                            ghr = bp_gshare.ghr
                            gidx = (key ^ ghr) & bp_gmask
                            gctr = bp_gctrs[gidx]
                            if taken:
                                if gctr < 3:
                                    bp_gctrs[gidx] = gctr + 1
                            elif gctr > 0:
                                bp_gctrs[gidx] = gctr - 1
                            bp_gshare.ghr = ((ghr << 1) | taken) & bp_ghr_mask
                            global_pred = gctr >= 2

                            if local_pred == global_pred:
                                prediction = local_pred
                            else:
                                chidx = key & bp_chooser_mask
                                cctr = bp_chooser[chidx]
                                if global_pred == taken:
                                    if cctr < 3:
                                        bp_chooser[chidx] = cctr + 1
                                elif cctr > 0:
                                    bp_chooser[chidx] = cctr - 1
                                prediction = global_pred if cctr >= 2 else local_pred

                            shidx = key & bp_shist_mask
                            shistory = bp_shist[shidx]
                            scidx = shistory & bp_spat_mask
                            sctr = bp_sctrs[scidx]
                            if taken:
                                if sctr < 3:
                                    bp_sctrs[scidx] = sctr + 1
                            elif sctr > 0:
                                bp_sctrs[scidx] = sctr - 1
                            bp_shist[shidx] = ((shistory << 1) | taken) & bp_sbits_mask

                            redirect = False
                            if taken:
                                if bpc in bp_btb_entries:
                                    bp_btb_entries.move_to_end(bpc)
                                    bp_btb_entries[bpc] = 0
                                    bp_btb.hits += 1
                                else:
                                    bp_btb.misses += 1
                                    if len(bp_btb_entries) >= bp_btb_cap:
                                        bp_btb_entries.popitem(last=False)
                                    bp_btb_entries[bpc] = 0
                                    redirect = True
                                    bpu.btb_misses += 1
                            if prediction != taken:
                                bpu.mispredicts += 1
                                counters.mispredicts += 1
                                bc += mispredict_penalty
                            elif redirect:
                                counters.btb_redirects += 1
                                bc += btb_redirect_penalty
                        else:
                            mispredicted, redirect = bpu_predict(branch.pc, taken)
                            if mispredicted:
                                counters.mispredicts += 1
                                bc += mispredict_penalty
                            elif redirect:
                                counters.btb_redirects += 1
                                bc += btb_redirect_penalty

                    counters.instructions += n_instr
                    counters.micro_ops += micro_ops
                    cycles += bc
                    produced += n_instr
                    fstate.blocks_fallback += 1
                    if produced >= max_instructions:
                        stream._cursor = cursor
                        bt._current = cur_trans
                        if cur_trans is not None:
                            bt._pos = cur_pos
                        return cycles
                    idx = succ

                stream._cursor = cursor
                continue

            # ---------------- vectorized burst path ----------------
            attr_ni, attr_nm, attr_nl, attr_nv = region.attr_arrays()
            (
                col_pc,
                col_branch,
                col_bpc,
                col_kind,
                col_ra,
                col_rb,
                col_tsucc,
                col_fsucc,
                col_ni,
            ) = _walk_table(region)

            # Burst record.  ``rec`` holds block indices; side lists carry
            # the rare irregularities (interpreted blocks, translation
            # charges, branch penalties) by position in ``rec``.
            rec: list = []
            rec_append = rec.append
            interp_pos: list = []
            trans_list: list = []
            pen_pos: list = []
            pen_val: list = []
            b_branches = b_misp = b_redir = b_translated = 0
            c0 = cursor
            vpu_gated = vpu.gated_on  # constant within a burst

            def _flush() -> None:
                """Pass B: evaluate and apply the recorded burst."""
                nonlocal cycles, cursor, c0
                nonlocal rec, interp_pos, trans_list, pen_pos, pen_val
                nonlocal b_branches, b_misp, b_redir, b_translated
                n = len(rec)
                n_instr_sum = micro_sum = nv_sum = 0
                N = 0
                if n:
                    bidx = np.array(rec, dtype=np.int64)
                    # Batched branch.executions: one increment per dynamic
                    # execution of a branchy block in this burst.
                    for bi, cnt in enumerate(
                        np.bincount(bidx, minlength=len(col_branch)).tolist()
                    ):
                        if cnt:
                            br = col_branch[bi]
                            if br is not None:
                                br.executions += cnt
                    ni = attr_ni[bidx]
                    nm = attr_nm[bidx]
                    nv = attr_nv[bidx]
                    n_instr_sum = int(ni.sum())
                    nv_sum = int(nv.sum())
                    if nv_sum:
                        vpu.execute_bulk(nv_sum)
                        micro = ni if vpu_gated else ni + nv * vpu_emul_extra
                    else:
                        micro = ni
                    micro_sum = int(micro.sum())
                    # Base issue cycles (reference order: base first).
                    bc = (micro * issue_cpi).tolist()
                    for p in interp_pos:
                        b = region_blocks[rec[p]]
                        bnv = b.n_vec
                        if bnv and not vpu_gated:
                            bc[p] = (
                                b.n_instr * interp_cpi
                                + bnv * vpu_emul_extra * issue_cpi
                            )
                        else:
                            bc[p] = b.n_instr * interp_cpi

                    # Memory: visit kernel (stalls add in access order).
                    N = int(nm.sum())
                    if N:
                        starts = np.empty(n, dtype=np.int64)
                        starts[0] = 0
                        np.cumsum(nm[:-1], out=starts[1:])
                        owner = np.repeat(np.arange(n, dtype=np.int64), nm)
                        j = np.arange(N, dtype=np.int64)
                        curs = (c0 + j * stride) % limit
                        addr = sbase + curs
                        lines = addr >> line_shift
                        li = j - starts[owner]
                        wr = li >= attr_nl[bidx][owner]
                        heads = np.concatenate(
                            (
                                np.zeros(1, dtype=np.int64),
                                np.flatnonzero(lines[1:] != lines[:-1]) + 1,
                            )
                        )
                        w_any = np.logical_or.reduceat(wr, heads)
                        vlens = np.diff(np.append(heads, N))
                        hl = lines[heads].tolist()
                        ha = addr[heads].tolist()
                        hw = wr[heads].tolist()
                        wa = w_any.tolist()
                        vo = owner[heads].tolist()
                        vl = vlens.tolist()
                        hits = misses = wb = 0
                        mlc_hits = mlc_misses = mlc_wb = 0
                        llc_hits = llc_misses = llc_wb = 0
                        lv_mlc = lv_llc = lv_mem = pf_covered = 0
                        pf_hits = pf_misses = 0
                        mlc_ways = mlc.active_ways
                        if llc is not None:
                            llc_ways = llc.active_ways
                        if prefetcher is not None:
                            pf_clock = prefetcher._clock
                        for k in range(len(hl)):
                            ln = hl[k]
                            cache_set = l1_sets[ln & set_mask]
                            dirty = cache_set.pop(ln, _MISSING)
                            vn = vl[k]
                            if dirty is not _MISSING:
                                # Head hit: the whole visit hits; the dirty
                                # bit ends as old | any-write-in-visit.
                                hits += vn
                                cache_set[ln] = dirty or wa[k]
                                continue
                            # Head miss: real fill + eviction, then an
                            # inlined access_below_l1 descent; tails hit
                            # the line the head made MRU.
                            misses += 1
                            hits += vn - 1
                            cache_set[ln] = wa[k]
                            while len(cache_set) > l1_ways:
                                if cache_set.pop(next(iter(cache_set))):
                                    wb += 1
                            hwk = hw[k]
                            # Prefetcher scan (addr >> line_shift == ln:
                            # the hierarchy shares the L1's line shift).
                            prefetched = False
                            if prefetcher is not None:
                                pf_clock += 1
                                i = 0
                                for head in pf_streams:
                                    delta = ln - head
                                    if 0 <= delta <= pf_window:
                                        if delta:
                                            pf_streams[i] = ln
                                        pf_stamps[i] = pf_clock
                                        pf_hits += 1
                                        prefetched = True
                                        break
                                    i += 1
                                else:
                                    pf_misses += 1
                                    lru = pf_stamps.index(min(pf_stamps))
                                    pf_streams[lru] = ln
                                    pf_stamps[lru] = pf_clock
                            a = ha[k]
                            mln = a >> mlc_shift
                            mset = mlc_sets[mln & mlc_mask]
                            mdirty = mset.pop(mln, _MISSING)
                            if mdirty is not _MISSING:
                                mlc_hits += 1
                                lv_mlc += 1
                                mset[mln] = mdirty or hwk
                                cost = mlc_cost
                            else:
                                mlc_misses += 1
                                mset[mln] = hwk
                                while len(mset) > mlc_ways:
                                    if mset.pop(next(iter(mset))):
                                        mlc_wb += 1
                                if llc is not None:
                                    lln = a >> llc_shift
                                    lset = llc_sets[lln & llc_mask]
                                    ldirty = lset.pop(lln, _MISSING)
                                    if ldirty is not _MISSING:
                                        llc_hits += 1
                                        lv_llc += 1
                                        lset[lln] = ldirty or hwk
                                        if prefetched:
                                            pf_covered += 1
                                            cost = prefetched_cost
                                        else:
                                            cost = llc_cost
                                    else:
                                        llc_misses += 1
                                        lset[lln] = hwk
                                        while len(lset) > llc_ways:
                                            if lset.pop(next(iter(lset))):
                                                llc_wb += 1
                                        lv_mem += 1
                                        if prefetched:
                                            pf_covered += 1
                                            cost = prefetched_cost
                                        else:
                                            cost = memory_cost
                                else:
                                    lv_mem += 1
                                    if prefetched:
                                        pf_covered += 1
                                        cost = prefetched_cost
                                    else:
                                        cost = memory_cost
                            if cost:
                                bc[vo[k]] += cost
                        l1.charge_bulk(hits, misses, wb)
                        level_counts[0] += hits
                        mlc.charge_bulk(mlc_hits, mlc_misses, mlc_wb)
                        level_counts[1] += lv_mlc
                        if llc is not None:
                            llc.charge_bulk(llc_hits, llc_misses, llc_wb)
                            level_counts[2] += lv_llc
                        level_counts[3] += lv_mem
                        hier.prefetch_covered += pf_covered
                        if prefetcher is not None:
                            prefetcher._clock = pf_clock
                            prefetcher.hits += pf_hits
                            prefetcher.misses += pf_misses
                        cursor = (c0 + N * stride) % limit
                    # Branch penalties land after the block's memory stalls,
                    # as in the reference per-block assembly order.
                    for p, v in zip(pen_pos, pen_val):
                        bc[p] += v
                    # Exact left-to-right cycle fold; translation charges
                    # are spliced in before their block's own cycles.
                    if trans_list:
                        seq: list = []
                        prev = 0
                        for p, btc in trans_list:
                            seq.extend(bc[prev:p])
                            seq.append(btc)
                            prev = p
                        seq.extend(bc[prev:])
                    else:
                        seq = bc
                    arr = np.array(seq, dtype=np.float64)
                    arr[0] += cycles
                    cycles = float(np.cumsum(arr)[-1])
                    fstate.bursts_recorded += 1
                    fstate.blocks_vectorized += n
                counters.add_batch(
                    instructions=n_instr_sum,
                    micro_ops=micro_sum,
                    simd_instructions=nv_sum,
                    branches=b_branches,
                    mispredicts=b_misp,
                    btb_redirects=b_redir,
                    memory_ops=N,
                )
                bt.translated_blocks += b_translated
                rec = []
                interp_pos = []
                trans_list = []
                pen_pos = []
                pen_val = []
                b_branches = b_misp = b_redir = b_translated = 0
                c0 = cursor

            def _exec_block_scalar(block, taken) -> None:
                """Execute one (translated) block under the live config.

                Used for the window-triggering block, which must run with
                the *post-policy* gating state.
                """
                nonlocal cycles, cursor
                n_vec = block.n_vec
                n_instr = block.n_instr
                if n_vec:
                    extra_ops = vpu.execute(n_vec)
                    micro_ops = n_instr + extra_ops
                    counters.simd_instructions += n_vec
                    bc = micro_ops * issue_cpi
                else:
                    micro_ops = n_instr
                    bc = n_instr * issue_cpi
                n_mem = block.n_mem
                if n_mem:
                    n_loads = block.n_loads
                    for i in range(n_mem):
                        a = sbase + cursor
                        cursor += stride
                        if cursor >= limit:
                            cursor -= limit
                        is_write = i >= n_loads
                        line = a >> line_shift
                        cache_set = l1_sets[line & set_mask]
                        dirty = cache_set.pop(line, _MISSING)
                        if dirty is not _MISSING:
                            l1.hits += 1
                            level_counts[0] += 1
                            cache_set[line] = dirty or is_write
                        else:
                            l1.misses += 1
                            cache_set[line] = is_write
                            while len(cache_set) > l1_ways:
                                if cache_set.pop(next(iter(cache_set))):
                                    l1.writebacks += 1
                            stall, _level = below(a, is_write)
                            if stall:
                                bc += stall * stall_factor
                    counters.memory_ops += n_mem
                branch = block.branch
                if branch is not None:
                    counters.branches += 1
                    mispredicted, redirect = bpu_predict(branch.pc, taken)
                    if mispredicted:
                        counters.mispredicts += 1
                        bc += mispredict_penalty
                    elif redirect:
                        counters.btb_redirects += 1
                        bc += btb_redirect_penalty
                counters.instructions += n_instr
                counters.micro_ops += micro_ops
                cycles += bc

            # Constant within a burst: only window-end policy gates the
            # BPU, and that ends the burst first.
            use_large = bpu.large_on and not bpu.force_small

            idx = region.entry
            blocks_left = n_blocks
            while blocks_left:
                blocks_left -= 1
                kind = col_kind[idx]
                if kind == 0:
                    succ = col_fsucc[idx]
                    taken = False
                else:
                    if kind == 1:
                        taken = col_ra[idx]() < col_rb[idx]
                    elif kind == 2:
                        model = col_ra[idx]
                        count = model._count + 1
                        if count >= model.period:
                            model._count = 0
                            taken = False
                        else:
                            model._count = count
                            taken = True
                    elif kind == 3:
                        model = col_ra[idx]
                        pat = model.pattern
                        pos = model._pos
                        taken = pat[pos]
                        model._pos = (pos + 1) % len(pat)
                    else:
                        taken = col_ra[idx].next_outcome(history)
                    history.bits = ((history.bits << 1) | taken) & history_mask
                    # branch.executions is batch-applied in _flush (nothing
                    # reads it mid-run; writes-only until results).
                    succ = col_tsucc[idx] if taken else col_fsucc[idx]

                # ---- BT steering (inlined continuation walk) ----
                pc = col_pc[idx]
                if (
                    cur_trans is not None
                    and cur_pos < cur_len
                    and cur_pcs[cur_pos] == pc
                ):
                    cur_pos += 1
                    b_translated += 1
                else:
                    if cur_trans is not None:
                        bt._current = None
                    entered = rc_get(pc)
                    if entered is not None:
                        rc_stats.lookups += 1
                        rc_stats.hits += 1
                        cur_trans = entered
                        cur_pcs = entered.block_pcs
                        cur_len = len(cur_pcs)
                        cur_pos = 1
                        b_translated += 1
                        if on_entry is not None:
                            if htb.window_executions >= wtrigger:
                                # Window end: flush the burst so stats and
                                # cycles are exact, run the boundary
                                # scalar, execute this block post-policy,
                                # then start a fresh burst.
                                _flush()
                                rec_append = rec.append
                                stall = on_entry(entered, cycles)
                                if stall:
                                    cycles += stall
                                block = region_blocks[idx]
                                if kind:
                                    # Not in the flushed record: the
                                    # trigger block runs scalar.
                                    col_branch[idx].executions += 1
                                _exec_block_scalar(block, taken)
                                c0 = cursor
                                vpu_gated = vpu.gated_on
                                use_large = bpu.large_on and not bpu.force_small
                                produced += block.n_instr
                                if produced >= max_instructions:
                                    stream._cursor = cursor
                                    bt._current = cur_trans
                                    if cur_trans is not None:
                                        bt._pos = cur_pos
                                    return cycles
                                idx = succ
                                continue
                            on_entry(entered, 0.0)
                    else:
                        block = region_blocks[idx]
                        exec_mode, bt_cycles, entered = bt_on_block(block)
                        if bt_cycles:
                            trans_list.append((len(rec), bt_cycles))
                        cur_trans = bt._current
                        if cur_trans is not None:
                            cur_pcs = cur_trans.block_pcs
                            cur_len = len(cur_pcs)
                            cur_pos = bt._pos
                        if exec_mode is _INTERPRETED:
                            interp_pos.append(len(rec))

                rec_append(idx)

                # ---- branch resolution through the active predictor ----
                if kind:
                    b_branches += 1
                    bpc = col_bpc[idx]
                    if use_large:
                        # Inlined BranchUnit.predict_and_update hot case
                        # (identical table reads/writes in identical order
                        # to the fastpath backend's copy).
                        bpu.lookups += 1
                        key = bpc >> 2
                        hidx = key & bp_lhist_mask
                        lhistory = bp_lhist[hidx]
                        cidx = lhistory & bp_lpat_mask
                        ctr = bp_lctrs[cidx]
                        if taken:
                            if ctr < 3:
                                bp_lctrs[cidx] = ctr + 1
                        elif ctr > 0:
                            bp_lctrs[cidx] = ctr - 1
                        bp_lhist[hidx] = ((lhistory << 1) | taken) & bp_lbits_mask
                        local_pred = ctr >= 2

                        ghr = bp_gshare.ghr
                        gidx = (key ^ ghr) & bp_gmask
                        gctr = bp_gctrs[gidx]
                        if taken:
                            if gctr < 3:
                                bp_gctrs[gidx] = gctr + 1
                        elif gctr > 0:
                            bp_gctrs[gidx] = gctr - 1
                        bp_gshare.ghr = ((ghr << 1) | taken) & bp_ghr_mask
                        global_pred = gctr >= 2

                        if local_pred == global_pred:
                            prediction = local_pred
                        else:
                            chidx = key & bp_chooser_mask
                            cctr = bp_chooser[chidx]
                            if global_pred == taken:
                                if cctr < 3:
                                    bp_chooser[chidx] = cctr + 1
                            elif cctr > 0:
                                bp_chooser[chidx] = cctr - 1
                            prediction = global_pred if cctr >= 2 else local_pred

                        shidx = key & bp_shist_mask
                        shistory = bp_shist[shidx]
                        scidx = shistory & bp_spat_mask
                        sctr = bp_sctrs[scidx]
                        if taken:
                            if sctr < 3:
                                bp_sctrs[scidx] = sctr + 1
                        elif sctr > 0:
                            bp_sctrs[scidx] = sctr - 1
                        bp_shist[shidx] = ((shistory << 1) | taken) & bp_sbits_mask

                        redirect = False
                        if taken:
                            if bpc in bp_btb_entries:
                                bp_btb_entries.move_to_end(bpc)
                                bp_btb_entries[bpc] = 0
                                bp_btb.hits += 1
                            else:
                                bp_btb.misses += 1
                                if len(bp_btb_entries) >= bp_btb_cap:
                                    bp_btb_entries.popitem(last=False)
                                bp_btb_entries[bpc] = 0
                                redirect = True
                                bpu.btb_misses += 1
                        if prediction != taken:
                            bpu.mispredicts += 1
                            b_misp += 1
                            pen_pos.append(len(rec) - 1)
                            pen_val.append(mispredict_penalty)
                        elif redirect:
                            b_redir += 1
                            pen_pos.append(len(rec) - 1)
                            pen_val.append(btb_redirect_penalty)
                    else:
                        mispredicted, redirect = bpu_predict(bpc, taken)
                        if mispredicted:
                            b_misp += 1
                            pen_pos.append(len(rec) - 1)
                            pen_val.append(mispredict_penalty)
                        elif redirect:
                            b_redir += 1
                            pen_pos.append(len(rec) - 1)
                            pen_val.append(btb_redirect_penalty)

                produced += col_ni[idx]
                if produced >= max_instructions:
                    _flush()
                    stream._cursor = cursor
                    bt._current = cur_trans
                    if cur_trans is not None:
                        bt._pos = cur_pos
                    return cycles
                idx = succ

            _flush()
            rec_append = rec.append
            stream._cursor = cursor
