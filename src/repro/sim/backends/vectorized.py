"""Vectorized batch-replay backend: record a burst once, evaluate it as arrays.

Where the ``fastpath`` backend fuses the reference loop but still walks one
access at a time, this backend splits each steady stretch of execution (a
*burst*) into two passes:

- **Pass A (scalar, lean).**  Walk the schedule exactly as the reference
  loop would — but with every per-block cost deferred and every branch
  outcome *pre-materialized*.  Biased/Random draws are bulk-evaluated from
  the model's own ``random.Random`` stream (:mod:`.rngkit` transplants the
  Mersenne-Twister state into numpy and back, bit-exactly), Loop/Pattern
  outcomes are closed-form over an index range, and GlobalCorrelated
  branches reduce to a popcount over the maintained history register — so
  the walk consumes precomputed (taken, successor) buffers and only
  steers the BT continuation (one index+compare against the current
  translation's block-pc tuple, with a per-run memo of region-cache
  entries) and the HTB window counter (hoisted dict ops) per block.  No
  predictor updates, no cycle math, no memory accesses: those are
  deferred to pass B.
- **Pass B (numpy).**  Gather per-block attribute columns
  (:meth:`CodeRegion.attr_arrays`) for the recorded indices and evaluate
  the whole burst at once: issue cycles as one elementwise product, the
  address stream in closed form (deterministic cursors, and — for
  ``random_frac > 0`` streams — a bulk RNG plan from
  :func:`rngkit.plan_stream_draws`), the cache walk via the **visit
  kernel**, and the whole branch-predictor batch via the **run-length
  kernels** below.  Monotonic counters land in one
  :meth:`PerfCounters.add_batch` / :meth:`SetAssocCache.charge_bulk`
  call per burst.

Branch-predictor kernels
    A two-bit saturating counter is a clamp map ``x -> min(B, max(A, x+s))``
    and clamp maps compose in closed form, so a whole burst of counter
    updates is a segmented prefix scan (:func:`_sat2_apply`; Hillis-Steele
    over ``(A, B, shift)`` triples, grouped by counter cell).  Per-cell
    history registers (local predictor) and the global history register
    (gshare) are B-bit sliding windows over the outcome bit-string, which
    one ``np.correlate`` against bit weights evaluates for every event at
    once (:func:`_local_kernel` / :func:`_gshare_kernel`).  The tournament
    chooser is another saturating-counter scan over the disagreement
    subsequence, and the BTB batch (:func:`_btb_batch`) resolves
    hit/miss/LRU order in closed form whenever the batch provably causes
    no evictions (falling back to an exact scalar walk near capacity).
    Every kernel returns *pre-update* predictions, so the composed batch
    is state- and output-identical to the sequential reference updates.

Visit kernel
    A *visit* is a maximal run of consecutive accesses to the same cache
    line (deterministic strided streams revisit each line
    ``line_size/stride`` times in a row).  Only the visit *head* has an
    uncertain hit/miss outcome; every tail access touches the line the
    head just made MRU, so it is an unconditional L1 hit whose only
    effect is a dirty-bit OR.  numpy finds the visit boundaries and
    per-visit write-ORs; a scalar loop then performs one *real* dict
    probe per visit, and on a miss walks an inlined copy of
    :meth:`CacheHierarchy.access_below_l1` (prefetcher scan, MLC/LLC
    probes) against the live structures.  Because the probes are real,
    the kernel is exact by construction — L1/MLC/LLC LRU order,
    writebacks, and prefetcher state evolve exactly as in the reference
    loop, at ~``line_size/stride`` fewer Python iterations.

Segment dispatch
    Before the per-visit scalar walk, each ascending run of lines is
    classified against a per-phase high-water mark (phases live in
    disjoint 1 GB slots; line-disjointness is verified once per run).  A
    **fresh** segment — every line above its stream's mark — misses every
    level by construction, so its L1/MLC/LLC insertions happen through
    :func:`_bulk_insert` (stable set-grouped batch insert with exact
    FIFO eviction and writeback counts) and the prefetcher's sequential
    hits collapse to a closed form once its window is verifiably
    engaged.  A **warm** segment — a loop-pattern revisit whose phases'
    combined MLC footprint fits the minimum gated MLC ways observed so
    far — is an L1-miss/MLC-hit run handled by :func:`_bulk_insert` plus
    :func:`_bulk_rehit` (batched MRU-touch with dirty-OR), with zero LLC
    events.  Runs straddling the mark split at it; the first head of a
    flush is forced onto the generic walk when it continues the previous
    flush's last line (that line is L1-MRU).  Everything else takes the
    generic per-head loop, so the dispatch is exact by construction.

Bit-exact cycle accounting
    Per-block cycles are assembled in reference order — base issue
    cycles, then memory stalls in access order, then the branch penalty —
    and folded into the running total with ``np.cumsum``, which performs
    the same left-to-right float64 additions as the reference loop's
    ``cycles += bc`` (verified bit-identical; numpy's pairwise summation
    applies to ``np.sum``, not ``cumsum``).  Translation charges are
    spliced in *before* their block's cycles, exactly where the reference
    loop adds them.

Burst boundaries and cross-window extension
    A burst ends when (a) the phase segment ends, (b) the instruction
    budget is reached, or (c) a translation entry triggers a PowerChop
    window end whose policy step is **not provably idle**.  A window end
    is idle — and the burst replays straight through it — when nothing
    the boundary does is observable: either the window is still inside
    the warmup epoch (the controller only flushes the HTB and keeps
    observing), or no measurement is pending (``_measuring is None``,
    ``force_small`` clear), the PVT holds a policy for the window's
    signature, and that policy matches the current unit states — then
    ``_apply_policy`` performs no transition and returns 0.0, and the
    skipped ``_window_stats`` snapshot is dead (its value is only
    consumed by a pending measurement, which idleness rules out; a
    measurement can only be armed at a non-idle boundary, which resets
    the snapshots before they are next read).  Idle boundaries replicate
    the observable effects inline — ``windows_seen``, the real
    ``pvt.lookup`` (LRU + stats), the HTB flush, the listener notes — and
    the burst continues.  Non-idle boundaries flush the burst first — so
    window stats read fully-updated counters and an exact cycle count —
    then run the boundary scalar (policy may re-gate units), and the
    triggering block executes scalar under the *post-policy*
    configuration.  ``collect_phase_vectors`` disables idle extension
    (every window logs a translation vector).

Proof certificates and walk-trace memoization
    When the simulator carries a :class:`ProfileCertificate`
    (``repro.staticcheck.proofs``), the run validates it once against the
    live workload (content fingerprint over block structure, branch-model
    parameters, and stream geometry).  A valid certificate replaces two
    runtime derivations with certified facts: the per-run phase-slot
    disjointness/MLC-occupancy scan (stream proof) and the HTB replay-time
    capacity check (window proof).  Region proofs unlock the **walk-trace
    memo**: in a certified fully-deterministic region (every branch
    closed-form Loop/Pattern), the pass-A trace from a given walk state —
    steering position plus the per-branch phase vector — is always the
    same, so the walk records the trace once (as deltas: record slice,
    outcome-consume counts, history fold, HTB/steering end state) and
    replays it with bulk list/int operations on every revisit.  Chunks are
    **anchored at visits to the region entry block**: keys are sampled
    only there, and a capture runs from one anchor to the first anchor at
    least ``_MEMO_CHUNK`` blocks later.  Anchoring matters — it aligns
    chunk boundaries with the orbit of the joint (block, phase-vector)
    dynamics, so keys recur with the orbit's natural period instead of
    its lcm with a fixed chunk size.  Chunks never span a window
    boundary, a budget stop, or any BT activity (captures straddling one
    are discarded; replays pre-check the distance to the next boundary),
    so replay is state-identical to walking.  A stale or inapplicable
    certificate falls back to the runtime checks and the plain walk —
    behaviour is bit-identical with proofs on, off, or rejected.

Fallbacks
    Probes delegate to the ``reference`` backend; full tracing and TIMEOUT
    mode (per-block gating decisions) delegate to ``fastpath``.  There is
    no per-access fallback anymore: ``random_frac > 0`` and pure-random
    streams batch through the RNG plan.
"""

from __future__ import annotations

import zlib
from itertools import repeat
from time import perf_counter
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.bt.runtime import ExecMode
from repro.isa.branches import (
    BiasedBranch,
    GlobalCorrelatedBranch,
    LoopBranch,
    PatternBranch,
    RandomBranch,
)
from repro.sim.backends.fastpath import run_fast
from repro.sim.backends.rngkit import bulk_randoms, plan_stream_draws
from repro.staticcheck.proofs import fingerprint_workload
from repro.workloads.generator import _PHASE_SLOT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import HybridSimulator

#: Sentinel for the allocation-free L1 dict probe (mirrors cache.py).
_MISSING = object()

_INTERPRETED = ExecMode.INTERPRETED

#: Walk-table resolver kinds (see :func:`_walk_table`).
_K_NONE = 0  # no branch
_K_BUFFERED = 1  # Biased/Random/Loop/Pattern: outcomes pre-materialized
_K_GLOBAL = 2  # GlobalCorrelatedBranch: popcount over the history register
_K_GENERIC = 3  # anything else: model.next_outcome(history)

#: Outcome-buffer refill sizing: start small (cold blocks waste few draws),
#: double up to a cap so hot blocks amortize the numpy call.
_CHUNK0 = 64
_CHUNK_MAX = 32768

#: Walk-trace memo sizing: a capture runs from an anchor (entry-block
#: visit) to the first anchor at least ``_MEMO_CHUNK`` blocks later, and
#: is discarded if no anchor appears within ``_MEMO_SPAN`` blocks.
#: ``_MEMO_CAP`` bounds recorded chunks per phase (beyond it the memo
#: still replays, but stops growing — a guard against state spaces that
#: never revisit).
_MEMO_CHUNK = 64
_MEMO_SPAN = 256
_MEMO_CAP = 8192


# --------------------------------------------------------------------------
# Branch-predictor array kernels
# --------------------------------------------------------------------------


def _sat2_apply(table, cells, tk):
    """Batched 2-bit saturating-counter update; returns pre-update values.

    ``table`` is the live Python counter list; ``cells``/``tk`` give the
    counter index and taken bit per event in time order.  Each update is
    the clamp map ``x -> min(3, max(0, x + d))`` with ``d = ±1``; clamp
    maps form a semigroup under composition —

        ``(g o f)(x) = min(Bg, max(Ag, min(Bf, max(Af, x+Sf)) + Sg))``
        with  ``S' = Sf+Sg``, ``A' = max(Ag, Af+Sg)``,
        ``B' = min(Bg, max(Ag, Bf+Sg))``

    — so the per-cell prefix compositions come from one segmented
    Hillis-Steele scan (events stably sorted by cell).  Pre-update values
    and final cell states are then closed-form applications of the
    composed maps to the table's start values.
    """
    n = len(cells)
    order = np.argsort(cells, kind="stable")
    sc = cells[order]
    d = tk[order].astype(np.int64) * 2 - 1
    seg_first = np.empty(n, dtype=bool)
    seg_first[0] = True
    seg_first[1:] = sc[1:] != sc[:-1]
    seg_id = np.cumsum(seg_first) - 1
    start_idx = np.flatnonzero(seg_first)
    seg_start = start_idx[seg_id]
    # Prefix maps: element i holds the composition of steps [seg_start..i].
    A = np.zeros(n, dtype=np.int64)
    B = np.full(n, 3, dtype=np.int64)
    S = d.copy()
    idx = np.arange(n, dtype=np.int64)
    # The scan only needs to reach the longest segment: once ``o`` is at
    # least that, ``idx - o`` falls before every segment start and the
    # remaining doubling rounds are all no-ops.
    max_seg = int(np.diff(np.append(start_idx, n)).max())
    o = 1
    while o < max_seg:
        can = (idx - o) >= seg_start
        if can.any():
            j = idx[can] - o
            Af, Bf, Sf = A[j], B[j], S[j]
            Ag, Bg, Sg = A[can], B[can], S[can]
            A[can] = np.maximum(Ag, Af + Sg)
            B[can] = np.minimum(Bg, np.maximum(Ag, Bf + Sg))
            S[can] = Sf + Sg
        o <<= 1
    groups = sc[start_idx].tolist()
    x0 = np.array([table[c] for c in groups], dtype=np.int64)
    x0g = x0[seg_id]
    pre = np.empty(n, dtype=np.int64)
    pre[seg_first] = x0
    nf = ~seg_first
    if nf.any():
        pj = idx[nf] - 1
        pre[nf] = np.minimum(B[pj], np.maximum(A[pj], x0g[nf] + S[pj]))
    end_idx = np.append(start_idx[1:], n) - 1
    finals = np.minimum(B[end_idx], np.maximum(A[end_idx], x0 + S[end_idx]))
    for c, v in zip(groups, finals.tolist()):
        table[c] = v
    out = np.empty(n, dtype=np.int64)
    out[order] = pre
    return out


def _local_kernel(pred, keys, tk):
    """Batched :meth:`LocalPredictor.predict_update`; returns predictions.

    Per-cell B-bit history registers are sliding windows over that cell's
    outcome bit-string: build one flat bit array — per history cell, the
    B bits of its start value (MSB first) followed by its taken bits in
    time order — and a single ``np.correlate`` against the bit weights
    yields every intermediate history value.  Counter updates (indexed by
    the pre-update histories, which may collide *across* cells) then go
    through :func:`_sat2_apply` in global time order.
    """
    n = len(keys)
    bits = pred.history_bits
    hidx = keys & pred._hist_mask
    order = np.argsort(hidx, kind="stable")
    sh = hidx[order]
    seg_first = np.empty(n, dtype=bool)
    seg_first[0] = True
    seg_first[1:] = sh[1:] != sh[:-1]
    start_idx = np.flatnonzero(seg_first)
    n_groups = len(start_idx)
    seg_id = np.cumsum(seg_first) - 1
    histories = pred._histories
    groups = sh[start_idx].tolist()
    h0 = np.array([histories[g] for g in groups], dtype=np.int64)
    flat = np.zeros(n + n_groups * bits, dtype=np.int64)
    starts_f = start_idx + np.arange(n_groups, dtype=np.int64) * bits
    for t in range(bits):
        flat[starts_f + t] = (h0 >> (bits - 1 - t)) & 1
    elem_pos = np.arange(n, dtype=np.int64) + (seg_id + 1) * bits
    flat[elem_pos] = tk[order]
    kern = 1 << np.arange(bits - 1, -1, -1, dtype=np.int64)
    winvals = np.correlate(flat, kern, "valid")
    hist_pre_s = winvals[elem_pos - bits]
    end_idx = np.append(start_idx[1:], n) - 1
    finals = winvals[elem_pos[end_idx] + 1 - bits]
    for g, v in zip(groups, finals.tolist()):
        histories[g] = v
    hist_pre = np.empty(n, dtype=np.int64)
    hist_pre[order] = hist_pre_s
    cidx = hist_pre & pred._pat_mask
    ctr_pre = _sat2_apply(pred._counters, cidx, tk)
    return ctr_pre >= 2


def _gshare_kernel(pred, keys, tk):
    """Batched :meth:`GSharePredictor.predict_update`; returns predictions.

    The global history register is one B-bit sliding window over the whole
    batch's outcome string (same correlate trick as :func:`_local_kernel`
    with a single group).
    """
    n = len(keys)
    bits = pred.history_bits
    flat = np.empty(n + bits, dtype=np.int64)
    g0 = pred.ghr
    for t in range(bits):
        flat[t] = (g0 >> (bits - 1 - t)) & 1
    flat[bits:] = tk
    kern = 1 << np.arange(bits - 1, -1, -1, dtype=np.int64)
    winvals = np.correlate(flat, kern, "valid")
    ghr_pre = winvals[:n]
    pred.ghr = int(winvals[n])
    gidx = (keys ^ ghr_pre) & pred._mask
    ctr_pre = _sat2_apply(pred._counters, gidx, tk)
    return ctr_pre >= 2


def _btb_batch(btb, pcs):
    """Batched :meth:`BranchTargetBuffer.touch`; returns per-event redirects.

    ``pcs`` holds the taken-branch pcs in time order.  When the batch's
    new entries provably fit without evicting (``len + new <= capacity``),
    the result is closed-form: each new pc misses exactly once (its first
    touch), everything else hits, and the final LRU order moves the
    touched pcs to the back ordered by *last* touch.  Near capacity the
    exact scalar walk runs instead (evictions interleave with touches).
    """
    n = len(pcs)
    entries = btb._entries
    redirect = np.zeros(n, dtype=bool)
    uniq, first_idx = np.unique(pcs, return_index=True)
    new_pcs = [p for p in uniq.tolist() if p not in entries]
    if len(entries) + len(new_pcs) <= btb.n_entries:
        if new_pcs:
            first_map = dict(zip(uniq.tolist(), first_idx.tolist()))
            for p in new_pcs:
                redirect[first_map[p]] = True
        btb.hits += n - len(new_pcs)
        btb.misses += len(new_pcs)
        rev_uniq, rev_idx = np.unique(pcs[::-1], return_index=True)
        last_pos = n - 1 - rev_idx
        for p in rev_uniq[np.argsort(last_pos)].tolist():
            entries.pop(p, None)
            entries[p] = 0
    else:  # pragma: no cover - needs a profile with >capacity branch pcs
        cap = btb.n_entries
        hits = misses = 0
        for i, p in enumerate(pcs.tolist()):
            if p in entries:
                entries.move_to_end(p)
                entries[p] = 0
                hits += 1
            else:
                misses += 1
                if len(entries) >= cap:
                    entries.popitem(last=False)
                entries[p] = 0
                redirect[i] = True
        btb.hits += hits
        btb.misses += misses
    return redirect


def _bpu_batch(bpu, keys, bpcs, tk):
    """Batched :meth:`BranchUnit.predict_and_update` over one burst.

    ``keys`` are the predictor indices (``pc >> 2``), ``bpcs`` the raw
    branch pcs (BTB keys), ``tk`` the taken bits, all in time order.
    Returns ``(mispredicted, redirected)`` bool arrays.  The three modes
    mirror the scalar unit exactly: hot (tournament + small-local
    training, large BTB), force-small (small predicts, large trains,
    small BTB), gated (small only).  The mode is constant within a burst
    — only window-end policy changes it, and that flushes first.
    """
    m = len(keys)
    bpu.lookups += m
    tkb = tk.astype(bool)
    if bpu.large_on:
        large = bpu.large
        lp = _local_kernel(large.local, keys, tk)
        gp = _gshare_kernel(large.global_pred, keys, tk)
        dis = lp != gp
        if dis.any():
            chidx = keys[dis] & large._chooser_mask
            gsel = gp[dis]
            ctk = (gsel == tkb[dis]).astype(np.int64)
            cpre = _sat2_apply(large._chooser, chidx, ctk)
        if not bpu.force_small:
            pred = lp.copy()
            if dis.any():
                pred[dis] = np.where(cpre >= 2, gsel, lp[dis])
            _local_kernel(bpu.small, keys, tk)
            btb = bpu.large_btb
        else:
            pred = _local_kernel(bpu.small, keys, tk)
            btb = bpu.small_btb
    else:
        pred = _local_kernel(bpu.small, keys, tk)
        btb = bpu.small_btb
    misp = pred != tkb
    bpu.mispredicts += int(misp.sum())
    redirect = np.zeros(m, dtype=bool)
    taken_pos = np.flatnonzero(tkb)
    if len(taken_pos):
        r = _btb_batch(btb, bpcs[taken_pos])
        redirect[taken_pos] = r
        bpu.btb_misses += int(r.sum())
    return misp, redirect


# --------------------------------------------------------------------------
# Walk table: per-region pass-A columns with pre-materialized outcomes
# --------------------------------------------------------------------------


def _bulk_insert(sets_map, mask, ways, ln_np, dt_np) -> int:
    """Apply a guaranteed-miss insert sequence to one cache level.

    Every line in ``ln_np`` must be absent from its set for the whole
    event slice — callers prove this with the segment classifier (fresh
    lines were never touched; warm-loop revisits are separated by at
    least ``ways`` same-set inserts, so the prior copy is already
    evicted).  Under that precondition each per-set dict behaves as a
    pure FIFO queue — append the new line, evict from the front while
    over capacity — so the batch effect is: keep the last
    ``min(ways, c)`` of the set's new events, evict everything older.
    Returns the number of dirty writebacks; the per-set dicts end
    key-for-key identical to the scalar insert/evict loop, insertion
    order included.
    """
    sids = ln_np & mask
    order = np.argsort(sids, kind="stable")
    ls = ln_np[order]
    ds = dt_np[order]
    sid_s = sids[order]
    n = len(ls)
    gstart = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.flatnonzero(np.diff(sid_s)) + 1)
    )
    gend = np.append(gstart[1:], n)
    cs = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(ds.astype(np.int64)))
    )
    ls_l = ls.tolist()
    ds_l = ds.tolist()
    wb = 0
    for gs, ge, sid in zip(gstart.tolist(), gend.tolist(), sid_s[gstart].tolist()):
        s = sets_map[sid]
        if ge - gs >= ways:
            # Every pre-existing entry and the oldest new events fall out.
            for v in s.values():
                if v:
                    wb += 1
            s.clear()
            ks = ge - ways
            wb += int(cs[ks] - cs[gs])
            for j in range(ks, ge):
                s[ls_l[j]] = ds_l[j]
        else:
            over = len(s) + (ge - gs) - ways
            while over > 0:
                over -= 1
                if s.pop(next(iter(s))):
                    wb += 1
            for j in range(gs, ge):
                s[ls_l[j]] = ds_l[j]
    return wb


def _bulk_rehit(sets_map, mask, ln_np, dt_np) -> None:
    """Apply a guaranteed-hit event sequence to one cache level.

    The scalar loop pops each line and re-inserts it with
    ``old_dirty or write``; after the whole sequence every distinct line
    sits behind the set's untouched entries, ordered by its *last*
    touch, with its dirty bit OR-ed over all its events.  Replaying one
    pop/re-insert per distinct line in last-touch order reproduces that
    final dict byte-for-byte.
    """
    rev = ln_np[::-1]
    uq, ridx = np.unique(rev, return_index=True)
    last = len(ln_np) - 1 - ridx
    order = np.argsort(last, kind="stable")
    so = np.argsort(ln_np, kind="stable")
    sdirty = dt_np[so]
    sl = ln_np[so]
    gstart = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.flatnonzero(np.diff(sl)) + 1)
    )
    anyw = np.logical_or.reduceat(sdirty, gstart)
    for ln, w in zip(uq[order].tolist(), anyw[order].tolist()):
        st = sets_map[ln & mask]
        st[ln] = st.pop(ln) or w


class _WalkAux:
    """Per-region pass-A side state (fused step tuples + outcome buffers).

    ``steps[i]`` is one tuple ``(kind, pc, n_instr, fall_succ, pay)`` so
    the walk unpacks a block's whole dispatch state in a single indexed
    load.  ``pay`` carries the kind-specific payload: buffered kinds get
    the mutable ``[pos, taken_buf, succ_buf, refill]`` list (``pays``
    collects every such buffer for compaction), global-correlated kinds
    get ``(mask, invert, noise_pay, taken_succ, fall_succ)``, generic
    kinds ``(model, taken_succ, fall_succ)``.
    """

    __slots__ = ("kinds_arr", "bpcs_arr", "otk", "steps", "pays")


def _make_biased_refill(otk, osucc, model, tsucc, fsucc):
    chunk = [_CHUNK0]

    def refill():
        c = chunk[0]
        if c < _CHUNK_MAX:
            chunk[0] = c * 2
        t = bulk_randoms(model._rng, c) < model.p_taken
        otk.extend(t.view(np.int8).tolist())
        osucc.extend(np.where(t, tsucc, fsucc).tolist())

    return refill


def _make_loop_refill(otk, osucc, model, tsucc, fsucc):
    chunk = [_CHUNK0]

    def refill():
        c = chunk[0]
        if c < _CHUNK_MAX:
            chunk[0] = c * 2
        period = model.period
        c0 = model._count
        # next_outcome: count wraps to 0 (not-taken) when it reaches the
        # period, so draw e from state c0 is taken iff (c0+1+e) % period.
        t = (c0 + 1 + np.arange(c, dtype=np.int64)) % period != 0
        model._count = (c0 + c) % period
        otk.extend(t.view(np.int8).tolist())
        osucc.extend(np.where(t, tsucc, fsucc).tolist())

    return refill


def _make_pattern_refill(otk, osucc, model, tsucc, fsucc):
    chunk = [_CHUNK0]
    pat = np.array(model.pattern, dtype=bool)
    length = len(pat)

    def refill():
        c = chunk[0]
        if c < _CHUNK_MAX:
            chunk[0] = c * 2
        p0 = model._pos
        t = pat[(p0 + np.arange(c, dtype=np.int64)) % length]
        model._pos = (p0 + c) % length
        otk.extend(t.view(np.int8).tolist())
        osucc.extend(np.where(t, tsucc, fsucc).tolist())

    return refill


def _make_noise_refill(otk, model):
    chunk = [_CHUNK0]

    def refill():
        c = chunk[0]
        if c < _CHUNK_MAX:
            chunk[0] = c * 2
        f = bulk_randoms(model._rng, c) < model.noise
        otk.extend(f.view(np.int8).tolist())

    return refill


def _walk_table(region):
    """Per-region pass-A step table (memoized on the region object).

    Returns ``(branches, aux)``: the branch-object column (pass B bumps
    ``branch.executions``) and a :class:`_WalkAux` with the fused step
    tuples, outcome-buffer pays, and the array forms of the kind/bpc
    columns.  Buffered kinds replicate each model's ``next_outcome``
    stream byte-for-byte — including RNG draw order — which the
    equivalence suite verifies; over-materialized draws only advance
    private model state (RNG word position, loop counter, pattern
    cursor) that nothing else observes, and buffers are valid
    continuations across bursts, segments, and windows.
    """
    try:
        return region._pass_a_columns
    except AttributeError:
        pass
    branches, bpcs, kinds = [], [], []
    steps: list = []
    pays: list = []
    n = len(region.blocks)
    aux = _WalkAux()
    aux.otk = [None] * n
    for i, block in enumerate(region.blocks):
        pc = block.pc
        ts = block.taken_succ
        fs = block.fall_succ
        ni = block.n_instr
        branch = block.branch
        branches.append(branch)
        if branch is None:
            bpcs.append(0)
            kinds.append(_K_NONE)
            steps.append((_K_NONE, pc, ni, fs, None))
            continue
        bpcs.append(branch.pc)
        model = branch.model
        tm = type(model)
        # Exact-type checks: a subclass could override next_outcome, so
        # only the leaf classes we replicate verbatim are batched.
        if tm is BiasedBranch or tm is RandomBranch:
            maker = _make_biased_refill
        elif tm is LoopBranch:
            maker = _make_loop_refill
        elif tm is PatternBranch:
            maker = _make_pattern_refill
        elif tm is GlobalCorrelatedBranch:
            kinds.append(_K_GLOBAL)
            mask = 0
            for off in model.offsets:
                mask |= 1 << off
            npay = None
            if model.noise:
                notk: list = []
                npay = [0, notk, None, _make_noise_refill(notk, model)]
                pays.append(npay)
            steps.append(
                (_K_GLOBAL, pc, ni, fs, (mask, int(model.invert), npay, ts, fs))
            )
            continue
        else:
            kinds.append(_K_GENERIC)
            steps.append((_K_GENERIC, pc, ni, fs, (model, ts, fs)))
            continue
        kinds.append(_K_BUFFERED)
        otk: list = []
        osucc: list = []
        aux.otk[i] = otk
        pay = [0, otk, osucc, maker(otk, osucc, model, ts, fs)]
        pays.append(pay)
        steps.append((_K_BUFFERED, pc, ni, fs, pay))
    aux.kinds_arr = np.array(kinds, dtype=np.int64)
    aux.bpcs_arr = np.array(bpcs, dtype=np.int64)
    aux.steps = steps
    aux.pays = pays
    table = (branches, aux)
    region._pass_a_columns = table
    return table


class VectorizedBackend:
    """Backend wrapper around :func:`run_vectorized` (see module docstring)."""

    name = "vectorized"
    needs_replay_state = True

    def run(
        self,
        simulator: "HybridSimulator",
        max_instructions: int,
        probes: Sequence = (),
    ) -> float:
        if probes:
            # Probe callbacks need the per-block BlockExec view; only the
            # reference loop provides it.
            from repro.sim.backends import get_backend

            return get_backend("reference").run(simulator, max_instructions, probes)
        if simulator.tracer.active or simulator.timeout_controller is not None:
            # Full event tracing wants per-block timestamps, and TIMEOUT
            # mode gates the VPU on per-block idle decisions — both are
            # inherently per-access; the fused scalar loop handles them.
            return run_fast(simulator, max_instructions)
        return run_vectorized(simulator, max_instructions)


def run_vectorized(simulator: "HybridSimulator", max_instructions: int) -> float:
    """Run the two-pass burst loop; returns total cycles.

    Drop-in replacement for the probe-free body of
    :meth:`HybridSimulator.run` — on return every component counter, the
    BT walk state, and the workload's address-stream cursors hold exactly
    the values the reference loop would have left.
    """
    workload = simulator.workload
    core = simulator.core
    bt = simulator.bt
    controller = simulator.controller
    counters = core.counters
    design = core.design
    hier = core.hierarchy
    l1 = hier.l1
    l1_sets = l1._sets
    line_shift = l1._line_shift
    set_mask = l1._set_mask
    l1_ways = l1.active_ways  # the L1 is never way-gated at runtime
    level_counts = hier.level_counts
    below = hier.access_below_l1
    prefetcher = hier.prefetcher
    mlc = hier.mlc
    llc = hier.llc
    mlc_latency = hier.mlc_latency
    llc_latency = hier.llc_latency
    memory_latency = hier.memory_latency
    prefetched_latency = hier.prefetched_latency
    stall_factor = core._stall_factor
    # Stall contributions are ``stall * stall_factor`` with stall drawn from
    # four constants; precomputing the products is float-identical.
    mlc_cost = mlc_latency * stall_factor
    llc_cost = llc_latency * stall_factor
    memory_cost = memory_latency * stall_factor
    prefetched_cost = prefetched_latency * stall_factor
    mlc_sets = mlc._sets
    mlc_shift = mlc._line_shift
    mlc_mask = mlc._set_mask
    if llc is not None:
        llc_sets = llc._sets
        llc_shift = llc._line_shift
        llc_mask = llc._set_mask
    if prefetcher is not None:
        pf_streams = prefetcher._streams
        pf_stamps = prefetcher._stamps
        pf_window = prefetcher.window
    vpu = core.vpu
    vpu_emul_extra = vpu.emulation_factor - 1
    bpu = core.bpu
    bpu_predict = core._bpu_predict_and_update
    issue_cpi = core._issue_cpi
    interp_cpi = design.interpreter_cpi
    mispredict_penalty = design.mispredict_penalty
    btb_redirect_penalty = design.btb_redirect_penalty

    fstate = simulator.fastpath_state

    history = workload.history
    history_mask = history._mask
    hbits = history.bits
    phases = workload.phases
    phase_order = workload._phase_order
    schedule = workload.schedule
    wseed = workload.seed

    htb = controller.htb if controller is not None else None
    on_entry = controller.on_translation_entry if controller is not None else None
    if controller is not None:
        window_size = htb.window_size
        hcounts = htb._instr_counts
        hexec = htb._exec_counts
        htb_cap = htb.n_entries
        htb_signature = htb.signature
        wexec = htb.window_executions
        pvt = controller.pvt
        pvt_peek = pvt.peek
        config = controller.config
        sig_len = config.signature_length
        warmup_windows = config.warmup_windows
        # Phase-vector collection logs every window; no boundary is idle.
        idle_ok = not config.collect_phase_vectors
        states = core.states
    else:
        wexec = 0
    bt_on_block = bt.on_block
    region_cache = bt.region_cache
    rc_get = region_cache._by_head.get
    rc_stats = region_cache.stats

    # ---- Proof-certificate validation (one fingerprint check per run).
    # A valid certificate supplies certified stream bounds, the set of
    # deterministic regions (walk-memo eligible), and the HTB head bound;
    # a stale one is rejected and every fact falls back to its runtime
    # derivation — behaviour is bit-identical either way.
    cert = getattr(simulator, "proof_certificate", None)
    cert_regions: Optional[frozenset] = None
    cert_stream = None
    cert_window_ok = False
    if cert is not None:
        fstate.proof_validations += 1
        if cert.workload_fingerprint == fingerprint_workload(workload):
            cert_regions = frozenset(
                r.region_id for r in cert.regions if r.deterministic
            )
            if cert.stream.slotted:
                cert_stream = cert.stream
            cert_window_ok = (
                controller is not None and cert.window.head_bound <= htb_cap
            )
        else:
            fstate.proof_rejections += 1
            cert = None

    # Per-phase walk-trace memos (chunk state -> recorded trace deltas).
    # Keys hold ``id(translation)`` and HTB tids, both stable for the
    # lifetime of one run, so the memo is per-run state.
    walk_memos: dict = {}

    # ---- Closed-form memory-kernel hoists (see _flush's segment
    # dispatch).  Each phase's address stream lives in its own slot, so
    # when the slots are line-disjoint a cache line belongs to exactly
    # one stream and a per-stream high-water mark classifies every
    # ascending run of lines as fresh (never touched -> every level
    # misses) or warm (loop revisit).  The warm form additionally needs
    # the loop phases' combined MLC footprint to fit the gated MLC.
    n_l1_sets = len(l1_sets)
    n_mlc_sets = len(mlc_sets)
    line_sz = 1 << line_shift
    mlc_occ: Optional[int] = 0
    if cert_stream is not None:
        # Certified slot geometry (validated against the live streams by
        # the fingerprint check above): slot-aligned bases with spans
        # inside their slot are pairwise disjoint and line-aligned for any
        # line size dividing the slot, and the occupancy bound is the same
        # arithmetic the runtime scan performs over identical spans.
        bases_disjoint = _PHASE_SLOT % line_sz == 0
        if cert_stream.any_stream_pattern:
            mlc_occ = None
        else:
            for _, _, span_p, _, _, _ in cert_stream.slots:
                lines_p = ((span_p + line_sz - 1) >> mlc_shift) + 1
                mlc_occ += -(-lines_p // n_mlc_sets)
    else:
        spans = []
        for pname, pidx in phase_order.items():
            st_p = phases[pname].address_stream(
                pidx, wseed ^ zlib.crc32(pname.encode()) & 0xFFFF
            )
            span_p = (
                st_p._stream_limit
                if st_p.behavior.pattern == "stream"
                else st_p._ws_bytes
            )
            spans.append((st_p.base, span_p))
            if st_p.behavior.pattern == "stream":
                mlc_occ = None  # unbounded footprint: warm form never applies
            elif mlc_occ is not None:
                # Max lines one MLC set can receive from a span_p-byte
                # range: a run of R consecutive lines covers each set <=
                # ceil(R/sets) times (line straddles add at most one).
                lines_p = ((span_p + line_sz - 1) >> mlc_shift) + 1
                mlc_occ += -(-lines_p // n_mlc_sets)
        spans.sort()
        bases_disjoint = all(b % line_sz == 0 for b, _ in spans) and all(
            spans[i][0] + spans[i][1] <= spans[i + 1][0]
            for i in range(len(spans) - 1)
        )
    mlc_ways_min = mlc.active_ways
    # Per-phase [high_water_line, last_touched_line] state.
    hw_map: dict = {}

    cycles = 0.0
    produced = 0

    # Hoisted BT walk state (synced back around every bt.on_block call).
    # Invariant: ``cur_pcs`` is ``()`` whenever ``cur_trans`` is None, so
    # the steering check is a bare index+compare (IndexError = miss).
    cur_trans = bt._current
    cur_pcs: tuple = ()
    cur_pos = 0
    if cur_trans is not None:  # pragma: no cover - fresh simulators start cold
        cur_pcs = cur_trans.block_pcs
        cur_pos = bt._pos

    # Per-run steering memo: head pc -> (translation, block_pcs, tid,
    # n_instr).  RegionCache never evicts and only inserts previously
    # missing pcs, so a memo hit is always current; it replaces a dict
    # probe plus three attribute loads (``tid`` is a computed property)
    # on every region entry.
    rc_memo: dict = {}
    rc_memo_get = rc_memo.get

    # Global-correlated / generic outcomes in walk order, consumed by the
    # flush's taken-bit gather (buffered kinds re-read their own buffers).
    g_takens: list = []
    g_takens_append = g_takens.append

    # Pass timing (pass A = total - pass B - scalar, settled in `finally`).
    pb_time = 0.0
    sc_time = 0.0
    t_run0 = perf_counter()

    try:
        while True:
            for phase_name, n_blocks in schedule:
                phase = phases[phase_name]
                # Seed expression mirrors SyntheticWorkload.trace exactly
                # (& binds tighter than ^).
                stream = phase.address_stream(
                    phase_order[phase_name],
                    wseed ^ zlib.crc32(phase_name.encode()) & 0xFFFF,
                )
                behavior = stream.behavior
                sbase = stream.base
                cursor = stream._cursor
                stride = behavior.stride
                random_frac = behavior.random_frac
                pattern = behavior.pattern
                ws_bytes = stream._ws_bytes
                limit = ws_bytes if pattern == "loop" else stream._stream_limit
                use_rng = random_frac > 0.0
                is_random = pattern == "random"
                plan_rng = use_rng or is_random
                # Bound draws replicating AddressStream.next's exact call
                # order for the residual scalar path (see fastpath.py).
                rng_random = stream._random  # lint: rng-mirrored
                rng_getrandbits = stream._rng.getrandbits  # lint: rng-mirrored
                ws_k = ws_bytes.bit_length()

                fstate.phase_resets += 1

                # Segment-dispatch eligibility: deterministic stream whose
                # line index advances monotonically between wraps, with all
                # levels sharing the L1's line indexing and this phase's
                # slot line-disjoint from every other phase's.
                seg_ok = (
                    not plan_rng
                    and bases_disjoint
                    and stride > 0
                    and mlc_shift == line_shift
                    and (llc is None or llc_shift == line_shift)
                    and sbase % line_sz == 0
                )
                warm_base = False
                if seg_ok and pattern == "loop" and mlc_occ is not None:
                    # Warm form: each wrap touches every line of the range
                    # in order (stride divides the line size, the range is
                    # line-aligned), and one wrap pushes >= ways+1 lines
                    # through each L1 set, so a revisited line is always
                    # evicted -- every head misses the L1, and (given the
                    # footprint fits the MLC) hits the MLC.
                    range_lines = limit >> line_shift
                    warm_base = (
                        stride <= line_sz
                        and line_sz % stride == 0
                        and limit % line_sz == 0
                        and (range_lines // n_l1_sets) >= l1_ways + 1
                    )
                space_hw = hw_map.setdefault(phase_name, [-1, -1])

                region = phase.region
                region_blocks = region.blocks
                region_len = len(region_blocks)
                attr_ni, attr_nm, attr_nl, attr_nv = region.attr_arrays()
                col_branch, aux = _walk_table(region)
                steps = aux.steps
                pays = aux.pays
                col_otk = aux.otk
                kinds_arr = aux.kinds_arr
                bpcs_arr = aux.bpcs_arr

                # Burst record.  ``rec`` holds block indices; side lists
                # carry the rare irregularities (interpreted blocks,
                # translation charges) by position in ``rec``.
                rec: list = []
                rec_append = rec.append
                interp_pos: list = []
                trans_list: list = []
                b_translated = b_entries = b_overflow = b_rc = 0
                c0 = cursor
                vpu_gated = vpu.gated_on  # constant within a burst

                # ---- Walk-trace memo eligibility.  Only certified
                # deterministic regions qualify; as defense in depth the
                # walk table must agree (a deterministic proof implies
                # every kind is none/buffered — if not, the certificate is
                # wrong and the memo stays off).
                memo = None
                if (
                    cert_regions is not None
                    and region.region_id in cert_regions
                    and bool((kinds_arr <= 1).all())
                ):
                    memo = walk_memos.get(phase_name)
                    if memo is None:
                        # Per-pay (model, period) metadata, aligned with
                        # ``pays`` (certified tables have no noise pays).
                        pay_meta = []
                        for bi, st in enumerate(steps):
                            if st[0] == 1:
                                m = col_branch[bi].model
                                if type(m) is LoopBranch:
                                    pay_meta.append((st[4], m, m.period, True))
                                else:
                                    pay_meta.append(
                                        (st[4], m, len(m.pattern), False)
                                    )
                        memo = (pay_meta, {})
                        walk_memos[phase_name] = memo

                def _flush() -> None:
                    """Pass B: evaluate and apply the recorded burst."""
                    nonlocal cycles, cursor, c0, pb_time, mlc_ways_min
                    nonlocal b_translated, b_entries, b_overflow, b_rc
                    t0 = perf_counter()
                    n = len(rec)
                    n_instr_sum = micro_sum = nv_sum = 0
                    N = 0
                    m = 0
                    b_misp = b_redir = 0
                    if n:
                        bidx = np.array(rec, dtype=np.int64)
                        # Batched branch.executions: one increment per
                        # dynamic execution of a branchy block.
                        counts = np.bincount(bidx, minlength=region_len)
                        for bi in np.flatnonzero(counts).tolist():
                            br = col_branch[bi]
                            if br is not None:
                                br.executions += int(counts[bi])
                        ni = attr_ni[bidx]
                        nm = attr_nm[bidx]
                        nv = attr_nv[bidx]
                        n_instr_sum = int(ni.sum())
                        nv_sum = int(nv.sum())
                        if nv_sum:
                            vpu.execute_bulk(nv_sum)
                            micro = ni if vpu_gated else ni + nv * vpu_emul_extra
                        else:
                            micro = ni
                        micro_sum = int(micro.sum())
                        # Base issue cycles (reference order: base first).
                        bc = (micro * issue_cpi).tolist()
                        for p in interp_pos:
                            b = region_blocks[rec[p]]
                            bnv = b.n_vec
                            if bnv and not vpu_gated:
                                bc[p] = (
                                    b.n_instr * interp_cpi
                                    + bnv * vpu_emul_extra * issue_cpi
                                )
                            else:
                                bc[p] = b.n_instr * interp_cpi

                        # Memory: visit kernel (stalls add in access order).
                        N = int(nm.sum())
                        if N:
                            starts = np.empty(n, dtype=np.int64)
                            starts[0] = 0
                            np.cumsum(nm[:-1], out=starts[1:])
                            owner = np.repeat(np.arange(n, dtype=np.int64), nm)
                            j = np.arange(N, dtype=np.int64)
                            if plan_rng:
                                # Mixed / pure-random stream: bulk RNG plan
                                # (advances stream._rng exactly as N scalar
                                # next() calls would).
                                is_rand, roff = plan_stream_draws(stream, N)
                                if is_random:
                                    addr = sbase + roff
                                else:
                                    det_cum = np.cumsum(~is_rand)
                                    curs = (c0 + stride * (det_cum - 1)) % limit
                                    addr = sbase + np.where(is_rand, roff, curs)
                                    cursor = int(
                                        (c0 + stride * int(det_cum[-1])) % limit
                                    )
                            else:
                                curs = (c0 + j * stride) % limit
                                addr = sbase + curs
                                cursor = int((c0 + N * stride) % limit)
                            lines = addr >> line_shift
                            li = j - starts[owner]
                            wr = li >= attr_nl[bidx][owner]
                            heads = np.concatenate(
                                (
                                    np.zeros(1, dtype=np.int64),
                                    np.flatnonzero(lines[1:] != lines[:-1]) + 1,
                                )
                            )
                            w_any = np.logical_or.reduceat(wr, heads)
                            vlens = np.diff(np.append(heads, N))
                            hl_np = lines[heads]
                            hw_np = wr[heads]
                            hl = hl_np.tolist()
                            ha = addr[heads].tolist()
                            hw = hw_np.tolist()
                            wa = w_any.tolist()
                            vo = owner[heads].tolist()
                            vl = vlens.tolist()
                            Hn = len(hl)
                            hits = misses = wb = 0
                            mlc_hits = mlc_misses = mlc_wb = 0
                            llc_hits = llc_misses = llc_wb = 0
                            lv_mlc = lv_llc = lv_mem = pf_covered = 0
                            pf_hits = pf_misses = 0
                            mlc_ways = mlc.active_ways
                            if mlc_ways < mlc_ways_min:
                                mlc_ways_min = mlc_ways
                            if llc is not None:
                                llc_ways = llc.active_ways
                            if prefetcher is not None:
                                pf_clock = prefetcher._clock

                            # ---- Segment dispatch: split the heads into
                            # ascending runs and classify each against the
                            # stream's high-water mark.  cls 2 = fresh
                            # (never touched: every level misses by
                            # construction), cls 1 = warm loop revisit
                            # (L1 miss + MLC hit by construction), cls 0 =
                            # exact scalar replay.
                            runs: list = []

                            def _emit(c_, a_, b_):
                                if b_ > a_:
                                    if runs and runs[-1][0] == c_:
                                        runs[-1][2] = b_
                                    else:
                                        runs.append([c_, a_, b_])

                            if seg_ok:
                                if Hn > 1:
                                    brk = (
                                        np.flatnonzero(np.diff(hl_np) < 1) + 1
                                    ).tolist()
                                else:
                                    brk = []
                                bounds = [0, *brk, Hn]
                                hw_s = space_hw[0]
                                warm_ok = (
                                    warm_base and mlc_occ <= mlc_ways_min
                                )
                                warm_cls = 1 if warm_ok else 0
                                sa0 = 0
                                if hl[0] == space_hw[1]:
                                    # Continuation revisit of the line
                                    # straddling the flush boundary: it is
                                    # still L1-MRU, so it must take the
                                    # exact path (head hit).
                                    _emit(0, 0, 1)
                                    sa0 = 1
                                for si in range(len(bounds) - 1):
                                    sa = bounds[si]
                                    if sa < sa0:
                                        sa = sa0
                                    sb = bounds[si + 1]
                                    if sa >= sb:
                                        continue
                                    hi = hl[sb - 1]
                                    if hl[sa] > hw_s:
                                        _emit(2, sa, sb)
                                        hw_s = hi
                                    elif hi <= hw_s:
                                        _emit(warm_cls, sa, sb)
                                    else:
                                        # Ascending run crossing the mark:
                                        # warm prefix, fresh suffix.
                                        mid = sa + int(
                                            np.searchsorted(
                                                hl_np[sa:sb],
                                                hw_s,
                                                side="right",
                                            )
                                        )
                                        _emit(warm_cls, sa, mid)
                                        _emit(2, mid, sb)
                                        hw_s = hi
                                space_hw[0] = hw_s
                                space_hw[1] = hl[-1]
                            else:
                                runs.append([0, 0, Hn])

                            for cls, ra, rb in runs:
                                Hr = rb - ra
                                if cls == 2:
                                    misses += Hr
                                    hits += int(vlens[ra:rb].sum()) - Hr
                                    wb += _bulk_insert(
                                        l1_sets,
                                        set_mask,
                                        l1_ways,
                                        hl_np[ra:rb],
                                        w_any[ra:rb],
                                    )
                                    mlc_misses += Hr
                                    mlc_wb += _bulk_insert(
                                        mlc_sets,
                                        mlc_mask,
                                        mlc_ways,
                                        hl_np[ra:rb],
                                        hw_np[ra:rb],
                                    )
                                    if llc is not None:
                                        llc_misses += Hr
                                        llc_wb += _bulk_insert(
                                            llc_sets,
                                            llc_mask,
                                            llc_ways,
                                            hl_np[ra:rb],
                                            hw_np[ra:rb],
                                        )
                                    lv_mem += Hr
                                    cost_hit = prefetched_cost
                                    cost_miss = memory_cost
                                    track_cov = True
                                elif cls == 1:
                                    misses += Hr
                                    hits += int(vlens[ra:rb].sum()) - Hr
                                    wb += _bulk_insert(
                                        l1_sets,
                                        set_mask,
                                        l1_ways,
                                        hl_np[ra:rb],
                                        w_any[ra:rb],
                                    )
                                    _bulk_rehit(
                                        mlc_sets,
                                        mlc_mask,
                                        hl_np[ra:rb],
                                        hw_np[ra:rb],
                                    )
                                    mlc_hits += Hr
                                    lv_mlc += Hr
                                    # An MLC hit costs mlc_cost whether or
                                    # not the prefetcher matched; the scan
                                    # below only keeps its stream state
                                    # and hit/miss stats exact.
                                    cost_hit = cost_miss = mlc_cost
                                    track_cov = False
                                else:
                                    for k in range(ra, rb):
                                        ln = hl[k]
                                        cache_set = l1_sets[ln & set_mask]
                                        dirty = cache_set.pop(ln, _MISSING)
                                        vn = vl[k]
                                        if dirty is not _MISSING:
                                            # Head hit: the whole visit
                                            # hits; the dirty bit ends
                                            # old | any-write.
                                            hits += vn
                                            cache_set[ln] = dirty or wa[k]
                                            continue
                                        # Head miss: real fill + eviction,
                                        # then an inlined access_below_l1
                                        # descent; tails hit the line the
                                        # head made MRU.
                                        misses += 1
                                        hits += vn - 1
                                        cache_set[ln] = wa[k]
                                        while len(cache_set) > l1_ways:
                                            if cache_set.pop(
                                                next(iter(cache_set))
                                            ):
                                                wb += 1
                                        hwk = hw[k]
                                        # Prefetcher scan (addr >>
                                        # line_shift == ln: the hierarchy
                                        # shares the L1's line shift).
                                        prefetched = False
                                        if prefetcher is not None:
                                            pf_clock += 1
                                            i = 0
                                            for head in pf_streams:
                                                delta = ln - head
                                                if 0 <= delta <= pf_window:
                                                    if delta:
                                                        pf_streams[i] = ln
                                                    pf_stamps[i] = pf_clock
                                                    pf_hits += 1
                                                    prefetched = True
                                                    break
                                                i += 1
                                            else:
                                                pf_misses += 1
                                                lru = pf_stamps.index(
                                                    min(pf_stamps)
                                                )
                                                pf_streams[lru] = ln
                                                pf_stamps[lru] = pf_clock
                                        a = ha[k]
                                        mln = a >> mlc_shift
                                        mset = mlc_sets[mln & mlc_mask]
                                        mdirty = mset.pop(mln, _MISSING)
                                        if mdirty is not _MISSING:
                                            mlc_hits += 1
                                            lv_mlc += 1
                                            mset[mln] = mdirty or hwk
                                            cost = mlc_cost
                                        else:
                                            mlc_misses += 1
                                            mset[mln] = hwk
                                            while len(mset) > mlc_ways:
                                                if mset.pop(next(iter(mset))):
                                                    mlc_wb += 1
                                            if llc is not None:
                                                lln = a >> llc_shift
                                                lset = llc_sets[lln & llc_mask]
                                                ldirty = lset.pop(
                                                    lln, _MISSING
                                                )
                                                if ldirty is not _MISSING:
                                                    llc_hits += 1
                                                    lv_llc += 1
                                                    lset[lln] = ldirty or hwk
                                                    if prefetched:
                                                        pf_covered += 1
                                                        cost = prefetched_cost
                                                    else:
                                                        cost = llc_cost
                                                else:
                                                    llc_misses += 1
                                                    lset[lln] = hwk
                                                    while len(lset) > llc_ways:
                                                        if lset.pop(
                                                            next(iter(lset))
                                                        ):
                                                            llc_wb += 1
                                                    lv_mem += 1
                                                    if prefetched:
                                                        pf_covered += 1
                                                        cost = prefetched_cost
                                                    else:
                                                        cost = memory_cost
                                            else:
                                                lv_mem += 1
                                                if prefetched:
                                                    pf_covered += 1
                                                    cost = prefetched_cost
                                                else:
                                                    cost = memory_cost
                                        if cost:
                                            bc[vo[k]] += cost
                                    continue

                                # Prefetcher + stall costs for the bulk
                                # classes (cls 2: miss-to-memory costs and
                                # coverage; cls 1: flat MLC cost, scan for
                                # stats only).  All bc additions stay in
                                # global head order, so the float fold is
                                # bit-identical to the scalar loop.
                                if prefetcher is None:
                                    if cost_miss:
                                        for k in range(ra, rb):
                                            bc[vo[k]] += cost_miss
                                    continue
                                if Hr > 1:
                                    subs = (
                                        np.flatnonzero(
                                            np.diff(hl_np[ra:rb]) < 1
                                        )
                                        + 1
                                        + ra
                                    ).tolist()
                                else:
                                    subs = []
                                sbounds = [ra, *subs, rb]
                                for zi in range(len(sbounds) - 1):
                                    za = sbounds[zi]
                                    zb = sbounds[zi + 1]
                                    # Visit 0: real scan (may allocate or
                                    # re-aim a stream).
                                    ln0 = hl[za]
                                    pf_clock += 1
                                    pf0 = False
                                    s_idx = 0
                                    i = 0
                                    for head in pf_streams:
                                        delta = ln0 - head
                                        if 0 <= delta <= pf_window:
                                            if delta:
                                                pf_streams[i] = ln0
                                            pf_stamps[i] = pf_clock
                                            pf_hits += 1
                                            pf0 = True
                                            s_idx = i
                                            break
                                        i += 1
                                    else:
                                        pf_misses += 1
                                        s_idx = pf_stamps.index(min(pf_stamps))
                                        pf_streams[s_idx] = ln0
                                        pf_stamps[s_idx] = pf_clock
                                    if pf0:
                                        if track_cov:
                                            pf_covered += 1
                                        c_ = cost_hit
                                    else:
                                        c_ = cost_miss
                                    if c_:
                                        bc[vo[za]] += c_
                                    rest = zb - za - 1
                                    if not rest:
                                        continue
                                    # Closed form: if every step fits the
                                    # window and no *other* stream head can
                                    # match any visited line, each later
                                    # visit extends the stream picked at
                                    # visit 0 (scan order is irrelevant:
                                    # competing matches are excluded).
                                    closed = bool(
                                        (
                                            np.diff(hl_np[za:zb]) <= pf_window
                                        ).all()
                                    )
                                    if closed:
                                        lo1 = hl[za + 1] - pf_window
                                        hi_ln = hl[zb - 1]
                                        i = 0
                                        for head in pf_streams:
                                            if i != s_idx and (
                                                lo1 <= head <= hi_ln
                                            ):
                                                closed = False
                                                break
                                            i += 1
                                    if closed:
                                        pf_hits += rest
                                        pf_clock += rest
                                        pf_streams[s_idx] = hi_ln
                                        pf_stamps[s_idx] = pf_clock
                                        if track_cov:
                                            pf_covered += rest
                                        if cost_hit:
                                            for k in range(za + 1, zb):
                                                bc[vo[k]] += cost_hit
                                    else:
                                        for k in range(za + 1, zb):
                                            ln = hl[k]
                                            pf_clock += 1
                                            i = 0
                                            for head in pf_streams:
                                                delta = ln - head
                                                if 0 <= delta <= pf_window:
                                                    if delta:
                                                        pf_streams[i] = ln
                                                    pf_stamps[i] = pf_clock
                                                    pf_hits += 1
                                                    if track_cov:
                                                        pf_covered += 1
                                                    c_ = cost_hit
                                                    break
                                                i += 1
                                            else:
                                                pf_misses += 1
                                                lru = pf_stamps.index(
                                                    min(pf_stamps)
                                                )
                                                pf_streams[lru] = ln
                                                pf_stamps[lru] = pf_clock
                                                c_ = cost_miss
                                            if c_:
                                                bc[vo[k]] += c_
                            l1.charge_bulk(hits, misses, wb)
                            level_counts[0] += hits
                            mlc.charge_bulk(mlc_hits, mlc_misses, mlc_wb)
                            level_counts[1] += lv_mlc
                            if llc is not None:
                                llc.charge_bulk(llc_hits, llc_misses, llc_wb)
                                level_counts[2] += lv_llc
                            level_counts[3] += lv_mem
                            hier.prefetch_covered += pf_covered
                            if prefetcher is not None:
                                prefetcher._clock = pf_clock
                                prefetcher.hits += pf_hits
                                prefetcher.misses += pf_misses

                        # Branch batch: gather taken bits (buffered blocks
                        # re-read their consumed prefix; history-coupled
                        # kinds drain g_takens), run the predictor kernels,
                        # add penalties after each block's memory stalls —
                        # the reference per-block assembly order.
                        bc_arr = np.array(bc, dtype=np.float64)
                        kinds_g = kinds_arr[bidx]
                        br_pos = np.flatnonzero(kinds_g)
                        m = len(br_pos)
                        if m:
                            bb = bidx[br_pos]
                            kb = kinds_g[br_pos]
                            tk = np.empty(m, dtype=np.int64)
                            mask_g = kb >= _K_GLOBAL
                            n_g = int(mask_g.sum())
                            if n_g:
                                tk[mask_g] = np.array(
                                    g_takens[:n_g], dtype=np.int64
                                )
                            if n_g < m:
                                mask_b = ~mask_g
                                b1 = bb[mask_b]
                                order1 = np.argsort(b1, kind="stable")
                                sb1 = b1[order1]
                                uq, su, cu = np.unique(
                                    sb1, return_index=True, return_counts=True
                                )
                                vals = np.empty(len(b1), dtype=np.int64)
                                for u, s, c in zip(
                                    uq.tolist(), su.tolist(), cu.tolist()
                                ):
                                    vals[s : s + c] = col_otk[u][:c]
                                tk1 = np.empty(len(b1), dtype=np.int64)
                                tk1[order1] = vals
                                tk[mask_b] = tk1
                            keys = bpcs_arr[bb] >> 2
                            misp, redirect = _bpu_batch(bpu, keys, bpcs_arr[bb], tk)
                            b_misp = int(misp.sum())
                            redir_only = redirect & ~misp
                            b_redir = int(redir_only.sum())
                            mp = br_pos[misp]
                            if len(mp):
                                bc_arr[mp] += mispredict_penalty
                            rp = br_pos[redir_only]
                            if len(rp):
                                bc_arr[rp] += btb_redirect_penalty

                        # Exact left-to-right cycle fold; translation
                        # charges splice in before their block's cycles.
                        if trans_list:
                            tpos = np.array(
                                [p for p, _ in trans_list], dtype=np.int64
                            )
                            tval = [v for _, v in trans_list]
                            arr = np.insert(bc_arr, tpos, tval)
                        else:
                            arr = bc_arr
                        arr[0] += cycles
                        cycles = float(np.cumsum(arr)[-1])
                        fstate.bursts_recorded += 1
                        fstate.blocks_vectorized += n
                    # Compact consumed outcome prefixes (including a
                    # window-trigger consumption not present in rec — its
                    # taken bit lives in the walk's local).
                    for pay in pays:
                        p = pay[0]
                        if p:
                            del pay[1][:p]
                            osu = pay[2]
                            if osu is not None:
                                del osu[:p]
                            pay[0] = 0
                    if g_takens:
                        del g_takens[:]
                    counters.add_batch(
                        instructions=n_instr_sum,
                        micro_ops=micro_sum,
                        simd_instructions=nv_sum,
                        branches=m,
                        mispredicts=b_misp,
                        btb_redirects=b_redir,
                        memory_ops=N,
                    )
                    bt.translated_blocks += b_translated
                    if b_entries:
                        controller.translation_executions += b_entries
                    if b_overflow:
                        htb.overflowed += b_overflow
                    if b_rc:
                        rc_stats.lookups += b_rc
                        rc_stats.hits += b_rc
                    del rec[:]
                    del interp_pos[:]
                    del trans_list[:]
                    b_translated = b_entries = b_overflow = b_rc = 0
                    c0 = cursor
                    pb_time += perf_counter() - t0

                def _exec_block_scalar(block, taken) -> None:
                    """Execute one (translated) block under the live config.

                    Used for the window-triggering block, which must run
                    with the *post-policy* gating state.  Address
                    generation mirrors ``AddressStream.next()`` exactly —
                    including the RNG draw order on mixed streams (the
                    flush's RNG plan advanced ``stream._rng`` through the
                    flushed accesses only).
                    """
                    nonlocal cycles, cursor
                    n_vec = block.n_vec
                    n_instr = block.n_instr
                    if n_vec:
                        extra_ops = vpu.execute(n_vec)
                        micro_ops = n_instr + extra_ops
                        counters.simd_instructions += n_vec
                        bc = micro_ops * issue_cpi
                    else:
                        micro_ops = n_instr
                        bc = n_instr * issue_cpi
                    n_mem = block.n_mem
                    if n_mem:
                        n_loads = block.n_loads
                        for i in range(n_mem):
                            if use_rng and rng_random() < random_frac:
                                r = rng_getrandbits(ws_k)
                                while r >= ws_bytes:
                                    r = rng_getrandbits(ws_k)
                                a = sbase + r
                            elif is_random:
                                r = rng_getrandbits(ws_k)
                                while r >= ws_bytes:
                                    r = rng_getrandbits(ws_k)
                                a = sbase + r
                            else:
                                a = sbase + cursor
                                cursor += stride
                                if cursor >= limit:
                                    cursor -= limit
                            is_write = i >= n_loads
                            line = a >> line_shift
                            if seg_ok:
                                # Keep the segment classifier's view of the
                                # stream current (scalar accesses are part
                                # of the same line sequence).
                                if line > space_hw[0]:
                                    space_hw[0] = line
                                space_hw[1] = line
                            cache_set = l1_sets[line & set_mask]
                            dirty = cache_set.pop(line, _MISSING)
                            if dirty is not _MISSING:
                                l1.hits += 1
                                level_counts[0] += 1
                                cache_set[line] = dirty or is_write
                            else:
                                l1.misses += 1
                                cache_set[line] = is_write
                                while len(cache_set) > l1_ways:
                                    if cache_set.pop(next(iter(cache_set))):
                                        l1.writebacks += 1
                                stall, _level = below(a, is_write)
                                if stall:
                                    bc += stall * stall_factor
                        counters.memory_ops += n_mem
                    branch = block.branch
                    if branch is not None:
                        counters.branches += 1
                        mispredicted, redirect = bpu_predict(branch.pc, taken)
                        if mispredicted:
                            counters.mispredicts += 1
                            bc += mispredict_penalty
                        elif redirect:
                            counters.btb_redirects += 1
                            bc += btb_redirect_penalty
                    counters.instructions += n_instr
                    counters.micro_ops += micro_ops
                    cycles += bc

                idx = region.entry
                if memo is not None:
                    # ---- Certified walk with trace memoization.  Chunk
                    # keys are sampled only at *anchors* — visits to the
                    # region entry block — and cover the complete walk
                    # state of a deterministic region there: steering
                    # identity/position and each closed-form model's
                    # phase (consumed-outcome position mod period).  From
                    # equal states the plain walk provably retraces the
                    # same blocks, so a recorded chunk replays as deltas.
                    # Anchoring chunk boundaries to entry visits aligns
                    # them with the joint-orbit period, which is what
                    # makes keys recur.  The inner block body is a copy
                    # of the plain loop below (restricted to kinds 0/1 —
                    # guaranteed by the eligibility check); keep the two
                    # in sync.
                    pay_meta, chunks = memo
                    chunk_get = chunks.get
                    entry_idx = idx
                    remaining = n_blocks
                    while remaining:
                        capturing = False
                        chunk = None
                        n_cap = remaining
                        chunk_min = 1
                        if idx == entry_idx:
                            key = (
                                id(cur_trans),
                                cur_pos,
                            ) + tuple(
                                (
                                    (m._count if il else m._pos)
                                    - (len(mp[1]) - mp[0])
                                )
                                % per
                                for mp, m, per, il in pay_meta
                            )
                            chunk = chunk_get(key)
                        if chunk is not None:
                            (
                                n_steps,
                                idx_list,
                                end_idx,
                                d_instr,
                                shift,
                                packed,
                                pay_counts,
                                entries,
                                d_tr,
                                d_rc,
                                upd,
                                ins,
                                end_trans,
                                end_pcs,
                                end_pos,
                                clear_bt,
                            ) = chunk
                            # Replay preconditions: the chunk must fit the
                            # segment and the budget, stay short of the
                            # window boundary, and find the HTB exactly as
                            # recorded (updates present, inserts absent,
                            # capacity certified or checked).  Otherwise
                            # the plain body runs the same blocks.
                            if (
                                n_steps <= remaining
                                and produced + d_instr < max_instructions
                                and (
                                    entries == 0
                                    or (
                                        wexec + entries < window_size
                                        and all(
                                            t in hcounts for t, _, _ in upd
                                        )
                                        and (
                                            not ins
                                            or (
                                                all(
                                                    t not in hcounts
                                                    for t, _, _ in ins
                                                )
                                                and (
                                                    cert_window_ok
                                                    or len(hcounts)
                                                    + len(ins)
                                                    <= htb_cap
                                                )
                                            )
                                        )
                                    )
                                )
                            ):
                                rec.extend(idx_list)
                                produced += d_instr
                                for (mp, _m, _p, _il), cnt in zip(
                                    pay_meta, pay_counts
                                ):
                                    if cnt:
                                        # The flush gathers consumed
                                        # outcome prefixes, so buffers
                                        # must really be filled.
                                        while len(mp[1]) - mp[0] < cnt:
                                            mp[3]()
                                        mp[0] += cnt
                                hbits = (
                                    (hbits << shift) | packed
                                ) & history_mask
                                b_translated += d_tr
                                b_rc += d_rc
                                if entries:
                                    b_entries += entries
                                    wexec += entries
                                    for t, dni, dex in upd:
                                        hcounts[t] += dni
                                        hexec[t] += dex
                                    for t, ni2, ex2 in ins:
                                        hcounts[t] = ni2
                                        hexec[t] = ex2
                                cur_trans = end_trans
                                cur_pcs = end_pcs
                                cur_pos = end_pos
                                if clear_bt:
                                    bt._current = None
                                idx = end_idx
                                remaining -= n_steps
                                fstate.walk_memo_hits += 1
                                fstate.walk_memo_blocks += n_steps
                                continue
                            # Replay precheck failed (boundary/budget
                            # proximity): plain-walk to the next anchor
                            # and re-key there.
                        elif (
                            idx == entry_idx
                            and remaining >= _MEMO_SPAN
                            and len(chunks) < _MEMO_CAP
                        ):
                            capturing = True
                            n_cap = _MEMO_SPAN
                            chunk_min = _MEMO_CHUNK
                            s_rec = len(rec)
                            s_produced = produced
                            s_tr = b_translated
                            s_en = b_entries
                            s_ov = b_overflow
                            s_rc = b_rc
                            s_lookups = rc_stats.lookups
                            s_tl = len(trans_list)
                            s_ip = len(interp_pos)
                            s_pp = [mp[0] for mp, _m, _p, _il in pay_meta]
                            s_none = cur_trans is None
                            if on_entry is not None:
                                s_hc = dict(hcounts)
                                s_he = dict(hexec)
                                s_wc = htb.windows_completed
                        # The walk stretch: captures run until the first
                        # anchor past ``chunk_min`` blocks (discarded at
                        # ``n_cap`` without one); plain stretches stop at
                        # the next anchor so it can be keyed.  Both make
                        # progress even when starting on the anchor.
                        steps_done = 0
                        while steps_done < n_cap and (
                            steps_done < chunk_min or idx != entry_idx
                        ):
                            kind, pc, ni_b, succ, pay = steps[idx]
                            if kind == 1:
                                p = pay[0]
                                buf = pay[1]
                                if p == len(buf):
                                    pay[3]()
                                taken = buf[p]
                                pay[0] = p + 1
                                succ = pay[2][p]
                                hbits = ((hbits << 1) | taken) & history_mask
                            else:
                                taken = 0

                            try:
                                steer_hit = cur_pcs[cur_pos] == pc
                            except IndexError:
                                steer_hit = False
                            if steer_hit:
                                cur_pos += 1
                                b_translated += 1
                            else:
                                if cur_trans is not None:
                                    bt._current = None
                                mem = rc_memo_get(pc)
                                if mem is None:
                                    entered = rc_get(pc)
                                    if entered is not None:
                                        mem = (
                                            entered,
                                            entered.block_pcs,
                                            entered.tid,
                                            entered.n_instr,
                                        )
                                        rc_memo[pc] = mem
                                if mem is not None:
                                    entered, cur_pcs, tid, n_i = mem
                                    b_rc += 1
                                    cur_trans = entered
                                    cur_pos = 1
                                    b_translated += 1
                                    if on_entry is not None:
                                        if tid in hcounts:
                                            hcounts[tid] += n_i
                                            hexec[tid] += 1
                                            rec_kind = 0
                                        elif len(hcounts) < htb_cap:
                                            hcounts[tid] = n_i
                                            hexec[tid] = 1
                                            rec_kind = 1
                                        else:
                                            rec_kind = 2
                                        if wexec + 1 >= window_size:
                                            idle = False
                                            warm = (
                                                controller.windows_seen
                                                < warmup_windows
                                            )
                                            if idle_ok:
                                                if warm:
                                                    idle = True
                                                elif (
                                                    controller._measuring
                                                    is None
                                                    and not bpu.force_small
                                                ):
                                                    sig = htb_signature(
                                                        sig_len
                                                    )
                                                    pol = pvt_peek(sig)
                                                    if (
                                                        pol is not None
                                                        and pol.vpu_on
                                                        == states.vpu_on
                                                        and pol.bpu_on
                                                        == states.bpu_large_on
                                                        and pol.mlc_ways
                                                        == states.mlc_ways
                                                    ):
                                                        idle = True
                                            if idle:
                                                b_entries += 1
                                                if rec_kind == 2:
                                                    b_overflow += 1
                                                controller.windows_seen += 1
                                                fstate.note_window()
                                                if not warm:
                                                    pvt.lookup(sig)
                                                    fstate.note_policy_action()
                                                hcounts.clear()
                                                hexec.clear()
                                                htb.windows_completed += 1
                                                wexec = 0
                                            else:
                                                if rec_kind == 0:
                                                    hcounts[tid] -= n_i
                                                    hexec[tid] -= 1
                                                elif rec_kind == 1:
                                                    del hcounts[tid]
                                                    del hexec[tid]
                                                _flush()
                                                t_sc = perf_counter()
                                                htb.window_executions = wexec
                                                stall = on_entry(
                                                    entered, cycles
                                                )
                                                if stall:
                                                    cycles += stall
                                                wexec = 0
                                                block = region_blocks[idx]
                                                if kind:
                                                    col_branch[
                                                        idx
                                                    ].executions += 1
                                                _exec_block_scalar(
                                                    block, taken
                                                )
                                                if g_takens:
                                                    del g_takens[:]
                                                for bpay in pays:
                                                    bp = bpay[0]
                                                    if bp:
                                                        del bpay[1][:bp]
                                                        osu = bpay[2]
                                                        if osu is not None:
                                                            del osu[:bp]
                                                        bpay[0] = 0
                                                c0 = cursor
                                                vpu_gated = vpu.gated_on
                                                sc_time += (
                                                    perf_counter() - t_sc
                                                )
                                                produced += block.n_instr
                                                if (
                                                    produced
                                                    >= max_instructions
                                                ):
                                                    stream._cursor = cursor
                                                    bt._current = cur_trans
                                                    if cur_trans is not None:
                                                        bt._pos = cur_pos
                                                    history.bits = hbits
                                                    return cycles
                                                idx = succ
                                                steps_done += 1
                                                continue
                                        else:
                                            wexec += 1
                                            b_entries += 1
                                            if rec_kind == 2:
                                                b_overflow += 1
                                else:
                                    block = region_blocks[idx]
                                    exec_mode, bt_cycles, entered = (
                                        bt_on_block(block)
                                    )
                                    if bt_cycles:
                                        trans_list.append(
                                            (len(rec), bt_cycles)
                                        )
                                    cur_trans = bt._current
                                    if cur_trans is not None:
                                        cur_pcs = cur_trans.block_pcs
                                        cur_pos = bt._pos
                                    else:
                                        cur_pcs = ()
                                    if exec_mode is _INTERPRETED:
                                        interp_pos.append(len(rec))

                            rec_append(idx)

                            produced += ni_b
                            if produced >= max_instructions:
                                _flush()
                                stream._cursor = cursor
                                bt._current = cur_trans
                                if cur_trans is not None:
                                    bt._pos = cur_pos
                                history.bits = hbits
                                if htb is not None:
                                    htb.window_executions = wexec
                                return cycles
                            idx = succ
                            steps_done += 1

                        remaining -= steps_done
                        # Finalize the capture: discard it if it did not
                        # end on an anchor (ran into ``n_cap``), or if
                        # anything non-replayable happened inside — a
                        # flush or non-idle boundary (record length
                        # short), an idle window flush (windows count), a
                        # BT lookup/translation, or an HTB overflow.
                        if capturing and (
                            idx == entry_idx
                            and len(rec) == s_rec + steps_done
                            and rc_stats.lookups == s_lookups
                            and len(trans_list) == s_tl
                            and len(interp_pos) == s_ip
                            and b_overflow == s_ov
                            and (
                                on_entry is None
                                or htb.windows_completed == s_wc
                            )
                        ):
                            entries_d = b_entries - s_en
                            upd = []
                            ins = []
                            if entries_d:
                                # First-touch order: new dict keys land at
                                # the end, preserving insertion order for
                                # replayed signature tie-breaks.
                                for t, v in hcounts.items():
                                    sv = s_hc.get(t)
                                    if sv is None:
                                        ins.append((t, v, hexec[t]))
                                    elif v != sv or hexec[t] != s_he[t]:
                                        upd.append(
                                            (t, v - sv, hexec[t] - s_he[t])
                                        )
                            pay_counts = tuple(
                                mp[0] - s
                                for (mp, _m, _p, _il), s in zip(
                                    pay_meta, s_pp
                                )
                            )
                            n_out = sum(pay_counts)
                            # History fold: n_out outcome bits entered the
                            # register; its masked end value replays them
                            # (shift capped past the register depth).
                            shift = n_out if n_out < 17 else 17
                            d_rc = b_rc - s_rc
                            chunks[key] = (
                                steps_done,
                                rec[s_rec:],
                                idx,
                                produced - s_produced,
                                shift,
                                hbits & ((1 << shift) - 1) & history_mask,
                                pay_counts,
                                entries_d,
                                b_translated - s_tr,
                                d_rc,
                                tuple(upd),
                                tuple(ins),
                                cur_trans,
                                cur_pcs,
                                cur_pos,
                                d_rc >= (2 if s_none else 1),
                            )
                            fstate.walk_memo_records += 1
                    _flush()
                    stream._cursor = cursor
                    continue
                for _ in repeat(None, n_blocks):
                    kind, pc, ni_b, succ, pay = steps[idx]
                    if kind == 1:
                        p = pay[0]
                        buf = pay[1]
                        if p == len(buf):
                            pay[3]()
                        taken = buf[p]
                        pay[0] = p + 1
                        succ = pay[2][p]
                        hbits = ((hbits << 1) | taken) & history_mask
                    elif kind == 0:
                        taken = 0
                    elif kind == 2:
                        gm, gi, npay, ts2, fs2 = pay
                        taken = ((hbits & gm).bit_count() & 1) ^ gi
                        if npay is not None:
                            p = npay[0]
                            buf = npay[1]
                            if p == len(buf):
                                npay[3]()
                            taken ^= buf[p]
                            npay[0] = p + 1
                        g_takens_append(taken)
                        hbits = ((hbits << 1) | taken) & history_mask
                        succ = ts2 if taken else fs2
                    else:
                        model, ts2, fs2 = pay
                        history.bits = hbits
                        taken = model.next_outcome(history)
                        hbits = ((history.bits << 1) | taken) & history_mask
                        g_takens_append(int(taken))
                        succ = ts2 if taken else fs2

                    # ---- BT steering (inlined continuation walk) ----
                    try:
                        steer_hit = cur_pcs[cur_pos] == pc
                    except IndexError:
                        steer_hit = False
                    if steer_hit:
                        cur_pos += 1
                        b_translated += 1
                    else:
                        if cur_trans is not None:
                            bt._current = None
                        mem = rc_memo_get(pc)
                        if mem is None:
                            entered = rc_get(pc)
                            if entered is not None:
                                mem = (
                                    entered,
                                    entered.block_pcs,
                                    entered.tid,
                                    entered.n_instr,
                                )
                                rc_memo[pc] = mem
                        if mem is not None:
                            entered, cur_pcs, tid, n_i = mem
                            b_rc += 1
                            cur_trans = entered
                            cur_pos = 1
                            b_translated += 1
                            if on_entry is not None:
                                # Inlined HTB record (hoisted dicts);
                                # reverted below if the boundary is not
                                # idle (on_entry then re-records it).
                                if tid in hcounts:
                                    hcounts[tid] += n_i
                                    hexec[tid] += 1
                                    rec_kind = 0
                                elif len(hcounts) < htb_cap:
                                    hcounts[tid] = n_i
                                    hexec[tid] = 1
                                    rec_kind = 1
                                else:
                                    rec_kind = 2
                                if wexec + 1 >= window_size:
                                    # ---- window boundary ----
                                    idle = False
                                    warm = (
                                        controller.windows_seen < warmup_windows
                                    )
                                    if idle_ok:
                                        if warm:
                                            idle = True
                                        elif (
                                            controller._measuring is None
                                            and not bpu.force_small
                                        ):
                                            sig = htb_signature(sig_len)
                                            pol = pvt_peek(sig)
                                            if (
                                                pol is not None
                                                and pol.vpu_on == states.vpu_on
                                                and pol.bpu_on
                                                == states.bpu_large_on
                                                and pol.mlc_ways
                                                == states.mlc_ways
                                            ):
                                                idle = True
                                    if idle:
                                        # Replicate the boundary's
                                        # observable effects; the burst
                                        # replays straight through.
                                        b_entries += 1
                                        if rec_kind == 2:
                                            b_overflow += 1
                                        controller.windows_seen += 1
                                        fstate.note_window()
                                        if not warm:
                                            pvt.lookup(sig)
                                            fstate.note_policy_action()
                                        hcounts.clear()
                                        hexec.clear()
                                        htb.windows_completed += 1
                                        wexec = 0
                                    else:
                                        if rec_kind == 0:
                                            hcounts[tid] -= n_i
                                            hexec[tid] -= 1
                                        elif rec_kind == 1:
                                            del hcounts[tid]
                                            del hexec[tid]
                                        # Flush the burst so window stats
                                        # and cycles are exact, run the
                                        # boundary scalar, execute this
                                        # block post-policy, then start a
                                        # fresh burst.
                                        _flush()
                                        t_sc = perf_counter()
                                        htb.window_executions = wexec
                                        stall = on_entry(entered, cycles)
                                        if stall:
                                            cycles += stall
                                        wexec = 0
                                        block = region_blocks[idx]
                                        if kind:
                                            # Not in the flushed record:
                                            # the trigger runs scalar.
                                            col_branch[idx].executions += 1
                                        _exec_block_scalar(block, taken)
                                        if g_takens:
                                            del g_takens[:]
                                        for bpay in pays:
                                            bp = bpay[0]
                                            if bp:
                                                del bpay[1][:bp]
                                                osu = bpay[2]
                                                if osu is not None:
                                                    del osu[:bp]
                                                bpay[0] = 0
                                        c0 = cursor
                                        vpu_gated = vpu.gated_on
                                        sc_time += perf_counter() - t_sc
                                        produced += block.n_instr
                                        if produced >= max_instructions:
                                            stream._cursor = cursor
                                            bt._current = cur_trans
                                            if cur_trans is not None:
                                                bt._pos = cur_pos
                                            history.bits = hbits
                                            return cycles
                                        idx = succ
                                        continue
                                else:
                                    wexec += 1
                                    b_entries += 1
                                    if rec_kind == 2:
                                        b_overflow += 1
                        else:
                            block = region_blocks[idx]
                            exec_mode, bt_cycles, entered = bt_on_block(block)
                            if bt_cycles:
                                trans_list.append((len(rec), bt_cycles))
                            cur_trans = bt._current
                            if cur_trans is not None:
                                cur_pcs = cur_trans.block_pcs
                                cur_pos = bt._pos
                            else:
                                cur_pcs = ()
                            if exec_mode is _INTERPRETED:
                                interp_pos.append(len(rec))

                    rec_append(idx)

                    produced += ni_b
                    if produced >= max_instructions:
                        _flush()
                        stream._cursor = cursor
                        bt._current = cur_trans
                        if cur_trans is not None:
                            bt._pos = cur_pos
                        history.bits = hbits
                        if htb is not None:
                            htb.window_executions = wexec
                        return cycles
                    idx = succ

                _flush()
                stream._cursor = cursor
    finally:
        history.bits = hbits
        if htb is not None:
            htb.window_executions = wexec
        total = perf_counter() - t_run0
        fstate.pass_b_seconds += pb_time
        fstate.scalar_seconds += sc_time
        pa = total - pb_time - sc_time
        if pa > 0.0:
            fstate.pass_a_seconds += pa
