"""Bulk materialization of CPython ``random.Random`` streams (bit-exact).

The workload generator owns many small ``random.Random`` instances — one
per biased/random branch model, one per address stream — and the reference
loop consumes them one draw at a time.  Those draws are pure functions of
the Mersenne Twister 32-bit word stream: ``random()`` is ``genrand_res53``
over two consecutive words and ``getrandbits(k <= 32)`` is one word shifted
down by ``32 - k``.  NumPy's ``MT19937`` bit generator exposes exactly that
word stream (``random_raw``), and its 624-word key + position state is the
same structure ``random.Random.getstate()`` returns.

This module transplants a ``random.Random`` state into ``np.random.MT19937``,
materializes a block of raw words / doubles as arrays, and writes the
advanced state back — so the vectorized backend can evaluate thousands of
draws per NumPy call while the ``random.Random`` object is left exactly
where the equivalent scalar loop would have left it.  Stream identity
(word-for-word, draw-for-draw, including the state round-trip) is pinned by
``tests/test_rngkit.py``.

:func:`plan_stream_draws` builds on the word stream to replay the *control
flow* of ``AddressStream.next()`` for mixed (``random_frac > 0``) and pure
random streams without a scalar loop: each access consumes a variable
number of words (a 2-word uniform draw for the mix test, then a rejection
loop of 1-word ``randrange`` attempts on the random path), so the access
start positions form an orbit of a per-position jump function, which is
evaluated by pointer doubling over the materialized words.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.random import MT19937

__all__ = ["raw_words", "peek_words", "write_back", "bulk_randoms", "plan_stream_draws"]

#: ``genrand_res53`` scale: doubles are ``(a*2**26 + b) / 2**53`` with
#: ``a = word >> 5`` and ``b = word >> 6`` (CPython ``_randommodule.c``).
_RES53_SCALE = 1.0 / 9007199254740992.0

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def _transplant(state) -> MT19937:
    """NumPy MT19937 bit generator positioned at a ``getstate()`` tuple."""
    version, internal, _gauss = state
    if version != 3 or len(internal) != 625:  # pragma: no cover - defensive
        raise ValueError("unsupported random.Random state version")
    bg = MT19937()
    st = bg.state
    st["state"]["key"] = np.asarray(internal[:-1], dtype=np.uint64)
    st["state"]["pos"] = internal[-1]
    bg.state = st
    return bg


def _read_state(bg: MT19937, gauss) -> tuple:
    st = bg.state["state"]
    # .tolist() converts the 624-word key to Python ints in C; a genexpr
    # of int() calls here is measurable (refills run this per chunk).
    return (3, tuple(st["key"].tolist()) + (int(st["pos"]),), gauss)


def _mirror(rng, state) -> MT19937:
    """A positioned bit generator for ``rng``, reusing the cached mirror.

    Building an ``MT19937`` and loading its state costs ~350us; a cached
    mirror is already positioned, so when ``rng`` hasn't been drawn from
    since we last wrote its state back (checked with one C-level tuple
    compare, ~12us) the transplant is skipped entirely.  Any foreign draw
    changes the state tuple and falls back to a fresh transplant.
    """
    cached = getattr(rng, "_rk_mirror", None)
    if cached is not None and cached[1] == state:
        return cached[0]
    return _transplant(state)


def peek_words(state, n: int) -> np.ndarray:
    """The ``n`` 32-bit outputs following ``state``, without advancing it."""
    if n <= 0:
        return _EMPTY_I64
    return _transplant(state).random_raw(n).astype(np.int64)


def write_back(rng, state, n_words: int) -> None:
    """Set ``rng`` to ``state`` advanced by exactly ``n_words`` outputs."""
    if n_words <= 0:
        rng.setstate(state)
        return
    bg = _mirror(rng, state)
    bg.random_raw(n_words)
    new_state = _read_state(bg, state[2])
    rng.setstate(new_state)
    rng._rk_mirror = (bg, new_state)


def raw_words(rng, n: int) -> np.ndarray:
    """The next ``n`` 32-bit outputs of ``rng``, advancing it past them.

    Word ``i`` equals what ``rng.getrandbits(32)`` would have returned on
    the ``i``-th call.
    """
    if n <= 0:
        return _EMPTY_I64
    state = rng.getstate()
    bg = _mirror(rng, state)
    words = bg.random_raw(n).astype(np.int64)
    new_state = _read_state(bg, state[2])
    rng.setstate(new_state)
    rng._rk_mirror = (bg, new_state)
    return words


def bulk_randoms(rng, n: int) -> np.ndarray:
    """The next ``n`` values of ``rng.random()`` as a float64 array.

    Consumes ``2 * n`` words; each value is bit-identical to the scalar
    call (both sides compute ``(a*2**26 + b) * 2**-53`` on exact integers).
    """
    w = raw_words(rng, 2 * n)
    a = w[0::2] >> 5
    b = w[1::2] >> 6
    return (a * 67108864 + b) * _RES53_SCALE


def _parse_draws(w, n, frac, ws, k, pure_random):
    """One parse attempt over ``len(w)`` materialized words.

    Returns ``(used_words, is_rand, rand_off)`` or ``None`` when ``w`` is
    too short for ``n`` accesses (the caller regrows and retries).
    """
    W = len(w)
    idx = np.arange(W, dtype=np.int64)
    v = w >> (32 - k)  # randrange candidate values (one word per attempt)
    big = np.int64(2 * W + 4)
    # nxt[j]: index of the first *accepted* randrange word at or after j.
    nxt = np.minimum.accumulate(np.where(v < ws, idx, big)[::-1])[::-1]
    sent = W + 1  # sticky overflow sentinel for the jump function
    g = np.full(W + 2, sent, dtype=np.int64)
    d = None
    if frac:
        # Every access starts with a random() draw over words (i, i+1).
        a = w[:-1] >> 5
        b = w[1:] >> 6
        d = (a * 67108864 + b) * _RES53_SCALE
        scan = np.full(W + 2, big, dtype=np.int64)
        scan[:W] = nxt
        acc2 = scan[2 : W + 2]  # accepted randrange word for a scan from i+2
        have_pair = idx + 1 < W
        if pure_random:
            # Both branches of next() reach randrange on a pure-random
            # pattern, so every access is 2 words + a rejection scan.
            ok = have_pair & (acc2 < big)
            g[:W] = np.where(ok, acc2 + 1, sent)
        else:
            take_rand = np.zeros(W, dtype=bool)
            take_rand[: W - 1] = d < frac
            ok = have_pair & np.where(take_rand, acc2 < big, True)
            g[:W] = np.where(ok, np.where(take_rand, acc2 + 1, idx + 2), sent)
    else:
        # Pure random pattern without a mix test: one rejection scan each.
        ok = nxt < big
        g[:W] = np.where(ok, nxt + 1, sent)

    # Access start positions = orbit of the jump function from 0, via
    # pointer doubling (g is strictly increasing until the sticky sentinel).
    starts = np.zeros(1, dtype=np.int64)
    jump = g
    while len(starts) < n:
        starts = np.concatenate((starts, jump[starts]))
        jump = jump[jump]
    starts = starts[:n]
    last = int(starts[-1])
    if last >= W:
        return None
    used = int(g[last])
    if used > W:
        return None

    if frac and not pure_random:
        is_rand = d[starts] < frac
        acc_idx = np.where(is_rand, g[starts] - 1, 0)
        rand_off = np.where(is_rand, v[acc_idx], 0)
    else:
        is_rand = np.ones(n, dtype=bool)
        rand_off = v[g[starts] - 1]
    return used, is_rand, rand_off


def plan_stream_draws(stream, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Plan the RNG-dependent part of the next ``n`` ``AddressStream`` draws.

    Returns ``(is_rand, rand_off)``: per access, whether it takes the
    uniform-random path, and — where it does — the ``randrange(ws_bytes)``
    value (zero elsewhere).  ``stream._rng`` is advanced exactly as ``n``
    scalar ``next()`` calls would advance it; applying the deterministic
    cursor advance for the ``~is_rand`` accesses is the caller's job.
    """
    behavior = stream.behavior
    frac = behavior.random_frac
    ws = stream._ws_bytes
    k = ws.bit_length()
    pure_random = behavior.pattern == "random"
    state = stream._rng.getstate()
    attempts = float(1 << k) / float(ws)  # expected randrange words/draw
    if frac and not pure_random:
        per = 2.0 + frac * attempts
    elif frac:
        per = 2.0 + attempts
    else:
        per = attempts
    need = int(n * per * 1.10) + 80
    while True:
        words = peek_words(state, need)
        plan = _parse_draws(words, n, frac, ws, k, pure_random)
        if plan is not None:
            break
        need += (need >> 1) + 80
    used, is_rand, rand_off = plan
    write_back(stream._rng, state, used)
    return is_rand, rand_off
