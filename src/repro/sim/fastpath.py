"""Deprecated shim: the fast path now lives in :mod:`repro.sim.backends`.

The fused steady-phase loop moved to :mod:`repro.sim.backends.fastpath`
when backend selection became first-class (``reference`` / ``fastpath`` /
``vectorized``).  This module re-exports its public names so existing
imports keep working; new code should select backends by name through
:func:`repro.sim.backends.get_backend` instead.
"""

from __future__ import annotations

from repro.sim.backends.fastpath import (  # noqa: F401
    K_STREAK,
    FastPathBackend,
    FastPathState,
    run_fast,
)

__all__ = ["K_STREAK", "FastPathBackend", "FastPathState", "run_fast"]
