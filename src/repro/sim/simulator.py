"""The top-level hybrid processor simulator."""

from __future__ import annotations

from enum import Enum
from typing import Optional, Sequence, Union

from repro.bt.runtime import BTRuntime
from repro.core.config import PowerChopConfig
from repro.core.controller import PowerChopController
from repro.core.timeout import TimeoutVPUController
from repro.obs.collect import collect_metrics
from repro.obs.tracer import DEFAULT_CAPACITY, Tracer
from repro.power.accounting import EnergyAccounting
from repro.sim.backends import get_backend, resolve_backend_name
from repro.sim.backends.fastpath import FastPathState
from repro.sim.results import SimulationResult
from repro.staticcheck.hints import build_hints
from repro.uarch.config import DesignPoint
from repro.uarch.core import CoreModel
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import BenchmarkProfile, build_workload, regions_of


class GatingMode(Enum):
    """The run configurations evaluated in the paper."""

    FULL = "full"  # all units at full power throughout (baseline)
    MINIMAL = "minimal"  # all units in their lowest-power state throughout
    POWERCHOP = "powerchop"  # phase-triggered management
    TIMEOUT = "timeout"  # HW-only VPU idleness timeout (§V-E baseline)


class HybridSimulator:
    """One simulation run of a workload on a hybrid processor design.

    The simulator threads every dynamic basic block through the BT runtime
    (interpret / translate / execute from the region cache), charges cycles
    through the core timing model, lets the active gating controller react,
    and integrates energy.  Instances are single-use, like the stateful
    workloads they consume.
    """

    def __init__(
        self,
        design: DesignPoint,
        workload: SyntheticWorkload,
        mode: GatingMode = GatingMode.FULL,
        powerchop_config: Optional[PowerChopConfig] = None,
        timeout_cycles: float = 20_000.0,
        obs_level: str = "off",
        obs_capacity: int = DEFAULT_CAPACITY,
        fastpath: Optional[bool] = None,
        backend: Optional[str] = None,
        proofs=None,
    ) -> None:
        self.design = design
        self.workload = workload
        self.mode = mode
        #: Optional proof certificate (``repro.staticcheck.proofs``).
        #: Advisory: the vectorized backend validates it against the live
        #: workload and silently falls back to runtime checks when it is
        #: stale or inapplicable; other backends ignore it.
        self.proof_certificate = proofs
        #: Execution backend (:mod:`repro.sim.backends`): every registered
        #: backend is bit-identical to ``reference``, so the default is the
        #: fastest always-applicable one.  ``fastpath`` is the deprecated
        #: boolean spelling (True → "fastpath", False → "reference") kept
        #: for callers that predate the registry.
        self.backend_name = resolve_backend_name(backend, fastpath)
        self.backend = get_backend(self.backend_name)
        self.fastpath = self.backend_name != "reference"
        self.fastpath_state = (
            FastPathState() if self.backend.needs_replay_state else None
        )
        #: The run's observability handle (``off``: inert — the run loop
        #: and every instrumented component pay one branch at most;
        #: ``metrics``: the registry snapshot lands on the result;
        #: ``full``: typed events stream into the tracer's ring buffer).
        self.tracer = Tracer(obs_level, obs_capacity)
        self.core = CoreModel(design, tracer=self.tracer)

        config: Optional[PowerChopConfig] = None
        static_hints = None
        regions = regions_of(workload)
        if mode is GatingMode.POWERCHOP:
            config = powerchop_config or PowerChopConfig()
            if config.use_static_hints:
                # The ahead-of-execution pass the binary translator could
                # run over every region it will ever translate.
                static_hints = build_hints(regions)
        self.bt = BTRuntime(
            design,
            regions,
            static_hints=static_hints,
            tracer=self.tracer,
        )

        if mode is GatingMode.MINIMAL:
            self.core.apply_vpu_state(False)
            self.core.apply_bpu_state(False)
            self.core.apply_mlc_state(1)

        # The accountant snapshots initial unit states, so it must be
        # created after the mode's initial configuration is applied.
        self.accountant = EnergyAccounting(design, self.core)

        self.controller: Optional[PowerChopController] = None
        self.timeout_controller: Optional[TimeoutVPUController] = None
        if mode is GatingMode.POWERCHOP:
            assert config is not None
            self.controller = PowerChopController(
                config,
                design,
                self.core,
                self.bt.nucleus,
                self.accountant,
                tracer=self.tracer,
            )
        elif mode is GatingMode.TIMEOUT:
            self.timeout_controller = TimeoutVPUController(
                design, self.core, timeout_cycles, self.accountant,
                tracer=self.tracer,
            )

        if self.fastpath_state is not None:
            # Attached after the mode's initial gating so construction-time
            # transitions don't count as runtime invalidations.
            self.core.fastpath_listener = self.fastpath_state

        self.cycles = 0.0
        self._ran = False

    def run(
        self, max_instructions: int = 1_000_000, probes: Sequence = ()
    ) -> SimulationResult:
        """Execute up to ``max_instructions`` guest instructions.

        ``probes`` are :class:`~repro.sim.probes.ProbeState` observers: each
        gets ``attach`` before the first block, ``on_block`` after every
        executed block, ``on_window`` at each completed PowerChop window,
        and ``finish`` once the result is built.  The probe-free path stays
        a tight loop.
        """
        if self._ran:
            raise RuntimeError("HybridSimulator instances are single-use")
        self._ran = True
        if max_instructions < 1:
            raise ValueError("max_instructions must be >= 1")

        # Every backend is bit-identical to the reference loop (including
        # the obs_level="full" event stream); backends that don't support a
        # feature (probes, tracing, TIMEOUT mode) delegate internally.
        cycles = self.backend.run(self, max_instructions, probes)

        self.cycles = cycles
        self.tracer.now = cycles
        result = self._build_result()
        for probe in probes:
            probe.finish(self, result)
        return result

    def _build_result(self) -> SimulationResult:
        core = self.core
        energy = self.accountant.finalize(self.cycles)
        l1 = core.hierarchy.l1
        mlc = core.hierarchy.mlc
        result = SimulationResult(
            benchmark=self.workload.name,
            suite=self.workload.suite,
            design=self.design.name,
            mode=self.mode.value,
            instructions=core.counters.instructions,
            micro_ops=core.counters.micro_ops,
            cycles=self.cycles,
            energy=energy,
            branches=core.counters.branches,
            mispredicts=core.counters.mispredicts,
            l1_hits=l1.hits,
            l1_misses=l1.misses,
            mlc_hits=mlc.hits,
            mlc_misses=mlc.misses,
            mlc_writebacks=mlc.writebacks,
            interpreted_instructions=self.bt.interpreter.interpreted_instructions,
            translations_built=self.bt.translator.translations_built,
            switch_counts=dict(energy.switch_counts),
        )
        result.extra["nucleus_cycles"] = self.bt.nucleus.cycles
        result.extra["translation_cycles"] = self.bt.translation_cycles
        result.extra["prefetch_covered"] = float(core.hierarchy.prefetch_covered)
        controller = self.controller
        if controller is not None:
            result.translation_executions = controller.translation_executions
            result.windows = controller.windows_seen
            result.pvt_lookups = controller.pvt.lookups
            result.pvt_hits = controller.pvt.hits
            result.pvt_misses = controller.pvt.misses
            result.pvt_evictions = controller.pvt.evictions
            result.cde_invocations = controller.cde.invocations
            result.new_phases = controller.cde.new_phases
            result.extra["static_vpu_phases"] = float(
                controller.cde.static_vpu_phases
            )
            result.extra["static_vpu_windows_skipped"] = float(
                controller.cde.static_vpu_windows_skipped
            )
        if self.tracer.metrics_on:
            result.metrics = collect_metrics(self, result).snapshot()
        return result


def run_simulation(
    design: DesignPoint,
    workload: Union[BenchmarkProfile, SyntheticWorkload],
    mode: GatingMode = GatingMode.FULL,
    max_instructions: int = 1_000_000,
    powerchop_config: Optional[PowerChopConfig] = None,
    timeout_cycles: float = 20_000.0,
    seed: Optional[int] = None,
    obs_level: str = "off",
    fastpath: Optional[bool] = None,
    backend: Optional[str] = None,
    proofs=None,
) -> SimulationResult:
    """Convenience wrapper: build the workload, run once, return the result.

    Passing a :class:`BenchmarkProfile` (rather than a pre-built workload)
    guarantees a fresh instruction stream, so repeated calls with different
    ``mode`` values compare configurations on identical traces.  ``backend``
    names an execution backend (``reference`` / ``fastpath`` /
    ``vectorized``); ``fastpath`` is the deprecated boolean spelling.
    ``proofs`` optionally attaches a
    :class:`~repro.staticcheck.proofs.ProfileCertificate`.
    """
    if isinstance(workload, BenchmarkProfile):
        workload = build_workload(workload, seed)
    simulator = HybridSimulator(
        design,
        workload,
        mode=mode,
        powerchop_config=powerchop_config,
        timeout_cycles=timeout_cycles,
        obs_level=obs_level,
        fastpath=fastpath,
        backend=backend,
        proofs=proofs,
    )
    return simulator.run(max_instructions)
