"""Whole-profile analysis: verify + summarize every region of a benchmark.

This is the entry point behind ``python -m repro staticcheck``: it
instantiates a profile's regions exactly as a simulation would (the region
builder is seeded, so the analyzed CFGs are the CFGs that run) and applies
the CFG verifier and the dataflow pass to each, folding the results into a
JSON-/text-renderable report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.blocks import CodeRegion
from repro.staticcheck.cfg import verify_region
from repro.staticcheck.dataflow import RegionSummary, summarize_region
from repro.staticcheck.diagnostics import Diagnostic, Severity, info
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import BenchmarkProfile, build_workload

__all__ = ["RegionAnalysis", "ProfileAnalysis", "analyze_region", "analyze_workload", "analyze_profile"]


def analyze_region(
    region: CodeRegion, phase: str = ""
) -> "RegionAnalysis":
    """Verify one region's CFG and compute its static summary."""
    diagnostics = list(verify_region(region))
    summary = summarize_region(region)
    if summary.vpu_dead:
        diagnostics.append(
            info(
                "I-VPU-DEAD",
                "region issues zero reachable vector ops; the VPU is "
                "statically non-critical for phases confined to it",
                region.region_id,
            )
        )
    return RegionAnalysis(
        phase=phase,
        region_id=region.region_id,
        diagnostics=diagnostics,
        summary=summary,
    )


@dataclass
class RegionAnalysis:
    """Verifier diagnostics plus the dataflow summary for one region."""

    phase: str
    region_id: int
    diagnostics: List[Diagnostic]
    summary: RegionSummary

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    def to_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "region_id": self.region_id,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": self.summary.to_dict(),
        }


@dataclass
class ProfileAnalysis:
    """The full static-analysis report for one benchmark profile."""

    benchmark: str
    suite: str
    regions: List[RegionAnalysis]

    def count(self, severity: Severity) -> int:
        return sum(r.count(severity) for r in self.regions)

    @property
    def n_errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def n_warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def ok(self) -> bool:
        return self.n_errors == 0

    @property
    def vpu_dead_regions(self) -> Tuple[int, ...]:
        return tuple(r.region_id for r in self.regions if r.summary.vpu_dead)

    def diagnostics(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for region in self.regions:
            out.extend(region.diagnostics)
        return sorted(out, key=lambda d: (-d.severity.rank, d.region_id, d.block or -1))

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "suite": self.suite,
            "errors": self.n_errors,
            "warnings": self.n_warnings,
            "vpu_dead_regions": list(self.vpu_dead_regions),
            "regions": [r.to_dict() for r in self.regions],
        }

    def render(self, verbose: bool = False) -> str:
        """Human-readable report; ``verbose`` includes per-region summaries."""
        lines = [
            f"{self.benchmark} ({self.suite}): {len(self.regions)} region(s), "
            f"{self.n_errors} error(s), {self.n_warnings} warning(s), "
            f"VPU-dead regions: {list(self.vpu_dead_regions) or 'none'}"
        ]
        for diag in self.diagnostics():
            if diag.severity is Severity.INFO and not verbose:
                continue
            lines.append(f"  {diag.render()}")
        if verbose:
            for region in self.regions:
                s = region.summary
                lines.append(
                    f"  region {s.region_id} ({region.phase}): "
                    f"{s.n_reachable}/{s.n_blocks} blocks reachable, "
                    f"{s.static_vector_ops} static vector ops, "
                    f"vec {s.vector_frac:.3f} ld {s.load_density:.3f} "
                    f"st {s.store_density:.3f} "
                    f"H(branch) {s.branch_entropy_bits:.3f} bits"
                )
        return "\n".join(lines)


def analyze_workload(workload: SyntheticWorkload) -> List[RegionAnalysis]:
    """Analyze every region of an instantiated workload."""
    return [
        analyze_region(spec.region, phase=name)
        for name, spec in workload.phases.items()
    ]


def analyze_profile(
    profile: BenchmarkProfile, seed: Optional[int] = None
) -> ProfileAnalysis:
    """Instantiate a profile's regions (seeded, as a run would) and analyze."""
    workload = build_workload(profile, seed)
    return ProfileAnalysis(
        benchmark=profile.name,
        suite=profile.suite,
        regions=analyze_workload(workload),
    )
