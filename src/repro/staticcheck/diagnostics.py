"""Diagnostic records emitted by the static-analysis passes.

Every pass reports through the same vocabulary: a :class:`Diagnostic` pins a
finding to a region (and optionally a block index) with a stable code and a
:class:`Severity`.  Codes starting with ``E`` are errors (the region would
misbehave under simulation), ``W`` are warnings (suspicious but executable),
``I`` are informational facts other subsystems may exploit (e.g. a statically
VPU-dead region).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional


class Severity(Enum):
    """Diagnostic severity, ordered ERROR > WARNING > INFO."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass."""

    severity: Severity
    code: str
    message: str
    region_id: int = -1
    block: Optional[int] = None

    def render(self) -> str:
        location = f"region {self.region_id}"
        if self.block is not None:
            location += f" block {self.block}"
        return f"{self.severity.value:<7} {self.code} [{location}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "severity": self.severity.value,
            "code": self.code,
            "message": self.message,
            "region_id": self.region_id,
            "block": self.block,
        }


def error(code: str, message: str, region_id: int = -1, block: Optional[int] = None) -> Diagnostic:
    return Diagnostic(Severity.ERROR, code, message, region_id, block)


def warning(code: str, message: str, region_id: int = -1, block: Optional[int] = None) -> Diagnostic:
    return Diagnostic(Severity.WARNING, code, message, region_id, block)


def info(code: str, message: str, region_id: int = -1, block: Optional[int] = None) -> Diagnostic:
    return Diagnostic(Severity.INFO, code, message, region_id, block)
