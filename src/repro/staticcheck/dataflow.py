"""Static dataflow over region CFGs: unit-usage summaries before execution.

The binary translator sees a region's code before it runs, so properties of
the *static* CFG can be proven ahead of any profiling window.  This pass
computes, per region:

- the reachable block set and its static instruction/vector-op totals —
  ``static_vector_ops == 0`` is a *proof* that the region can never issue a
  vector instruction, making the VPU trivially non-critical for every phase
  confined to the region (the fact :mod:`repro.staticcheck.hints` exports);
- estimated steady-state block visit frequencies, via damped fixpoint
  iteration over the CFG's edge probabilities (each
  :class:`~repro.isa.branches.BranchModel` exposes a static taken
  probability: a loop backedge is taken ``(period-1)/period`` of the time, a
  biased branch follows its bias, correlated/random branches split 50/50);
- frequency-weighted load/store densities and vector fraction — static
  *estimates* of the dynamic quantities the CDE measures; and
- a branch-entropy bound (expected bits of irreducible outcome entropy per
  branch): deterministic loop/pattern models contribute 0 bits, a biased
  branch its Bernoulli entropy, a correlated branch only its noise term
  (a global predictor can learn the parity function), a random branch a
  full bit.

The visit-frequency fixpoint uses a restart ("damping") term at the region
entry, which guarantees geometric convergence even on purely deterministic
cycles where the undamped power iteration would oscillate forever.  The
frequencies are therefore estimates — but the soundness-critical facts
(reachability, ``vpu_dead``) never depend on them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.isa.blocks import CodeRegion
from repro.isa.branches import (
    BiasedBranch,
    BranchModel,
    GlobalCorrelatedBranch,
    LoopBranch,
    PatternBranch,
)
from repro.staticcheck.cfg import block_successors, reachable_blocks

__all__ = [
    "RegionSummary",
    "summarize_region",
    "static_taken_probability",
    "branch_entropy_bits",
]

#: Restart weight of the visit-frequency fixpoint (mass teleported back to
#: the region entry each step); the complement damps the CFG transition.
DAMPING = 0.9


def _bernoulli_entropy(p: float) -> float:
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


def static_taken_probability(model: BranchModel) -> float:
    """Long-run taken probability of a branch model, read off statically."""
    if isinstance(model, LoopBranch):
        return (model.period - 1) / model.period
    if isinstance(model, PatternBranch):
        return sum(model.pattern) / len(model.pattern)
    if isinstance(model, GlobalCorrelatedBranch):
        return 0.5
    if isinstance(model, BiasedBranch):  # includes RandomBranch
        return model.p_taken
    return 0.5


def branch_entropy_bits(model: BranchModel) -> float:
    """Upper bound on irreducible outcome entropy, in bits per execution.

    "Irreducible" means entropy no predictor can remove: deterministic
    models carry none, a correlated branch only its noise flips (its parity
    function is learnable from global history), a biased branch its full
    Bernoulli entropy.
    """
    if isinstance(model, (LoopBranch, PatternBranch)):
        return 0.0
    if isinstance(model, GlobalCorrelatedBranch):
        return _bernoulli_entropy(model.noise)
    if isinstance(model, BiasedBranch):
        return _bernoulli_entropy(model.p_taken)
    return 1.0


@dataclass(frozen=True)
class RegionSummary:
    """Static unit-usage summary of one code region."""

    region_id: int
    n_blocks: int
    n_reachable: int
    #: Static instruction / vector-op totals over *reachable* blocks only.
    static_instructions: int
    static_vector_ops: int
    #: Proof bit: no reachable block contains a vector instruction, so the
    #: VPU is non-critical for any phase confined to this region.
    vpu_dead: bool
    #: Frequency-weighted estimates of dynamic per-instruction fractions.
    vector_frac: float
    load_density: float
    store_density: float
    #: Expected irreducible branch-outcome entropy, bits per branch.
    branch_entropy_bits: float
    iterations: int
    converged: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "region_id": self.region_id,
            "n_blocks": self.n_blocks,
            "n_reachable": self.n_reachable,
            "static_instructions": self.static_instructions,
            "static_vector_ops": self.static_vector_ops,
            "vpu_dead": self.vpu_dead,
            "vector_frac": self.vector_frac,
            "load_density": self.load_density,
            "store_density": self.store_density,
            "branch_entropy_bits": self.branch_entropy_bits,
            "iterations": self.iterations,
            "converged": self.converged,
        }


def _edge_weights(region: CodeRegion, index: int) -> List[tuple[int, float]]:
    """Out-edges of one block as (successor, probability); invalid successor
    indices are dropped (the CFG verifier reports them separately)."""
    block = region.blocks[index]
    succs = block_successors(region, index)
    if not succs:
        return []
    if block.branch is None or len(succs) == 1:
        return [(succs[0], 1.0)]
    p_taken = static_taken_probability(block.branch.model)
    return [(block.taken_succ, p_taken), (block.fall_succ, 1.0 - p_taken)]


def summarize_region(
    region: CodeRegion, *, tol: float = 1e-10, max_iter: int = 300
) -> RegionSummary:
    """Compute the static summary via damped fixpoint iteration."""
    reachable = sorted(reachable_blocks(region))
    blocks = region.blocks
    static_instr = sum(blocks[i].n_instr for i in reachable)
    static_vec = sum(blocks[i].n_vec for i in reachable)

    # Visit-frequency fixpoint over the reachable subgraph.
    freq: Dict[int, float] = {i: 0.0 for i in reachable}
    if reachable:
        freq[region.entry] = 1.0
    edges = {i: _edge_weights(region, i) for i in reachable}
    iterations = 0
    converged = not reachable
    for iterations in range(1, (max_iter if reachable else 0) + 1):
        nxt = {i: 0.0 for i in reachable}
        lost = 0.0  # mass on dropped (invalid) edges, teleported to entry
        for i in reachable:
            mass = freq[i]
            if not mass:
                continue
            out = edges[i]
            if not out:
                lost += mass
                continue
            total = sum(weight for _succ, weight in out)
            for succ, weight in out:
                nxt[succ] += mass * weight / total
            if total < 1.0:
                lost += mass * (1.0 - total)
        nxt[region.entry] += lost
        damped = {
            i: (1.0 - DAMPING) * (1.0 if i == region.entry else 0.0)
            + DAMPING * nxt[i]
            for i in reachable
        }
        delta = sum(abs(damped[i] - freq[i]) for i in reachable)
        freq = damped
        if delta < tol:
            converged = True
            break

    weighted_instr = sum(freq[i] * blocks[i].n_instr for i in reachable)
    weighted_vec = sum(freq[i] * blocks[i].n_vec for i in reachable)
    weighted_loads = sum(freq[i] * blocks[i].n_loads for i in reachable)
    weighted_stores = sum(
        freq[i] * (blocks[i].n_mem - blocks[i].n_loads) for i in reachable
    )
    branch_mass = sum(freq[i] for i in reachable if blocks[i].branch is not None)
    weighted_entropy = sum(
        freq[i] * branch_entropy_bits(blocks[i].branch.model)
        for i in reachable
        if blocks[i].branch is not None
    )

    return RegionSummary(
        region_id=region.region_id,
        n_blocks=len(blocks),
        n_reachable=len(reachable),
        static_instructions=static_instr,
        static_vector_ops=static_vec,
        vpu_dead=static_vec == 0,
        vector_frac=weighted_vec / weighted_instr if weighted_instr else 0.0,
        load_density=weighted_loads / weighted_instr if weighted_instr else 0.0,
        store_density=weighted_stores / weighted_instr if weighted_instr else 0.0,
        branch_entropy_bits=weighted_entropy / branch_mass if branch_mass else 0.0,
        iterations=iterations,
        converged=converged,
    )
