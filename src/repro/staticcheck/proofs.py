"""Proof certificates: certified region/stream properties for the runtime.

The fourth staticcheck pass.  Where passes 1-3 diagnose and summarize, this
pass *certifies*: an abstract interpretation over a workload's CFGs, branch
models, and address-stream specs emits a versioned, content-hashed
:class:`ProfileCertificate` whose facts the vectorized backend consumes
instead of re-deriving them per run:

- :class:`RegionProof` — classifies every reachable branch model on the
  outcome lattice ``closed_form < buffered_stochastic < history_coupled <
  opaque``.  A region whose reachable branches are all closed-form
  (:class:`~repro.isa.branches.LoopBranch` /
  :class:`~repro.isa.branches.PatternBranch`) is **deterministic**: its walk
  trace is a pure function of the entry block and the branch-phase vector,
  which licenses the backend's walk-trace memo (record each pass-A chunk
  once per phase state, replay as bulk list/int operations thereafter).
- :class:`StreamProof` — per-phase address bounds: every stream lives in
  its own ``_PHASE_SLOT``-aligned slot and its span stays inside the slot.
  From those certified bounds the backend derives phase-slot
  line-disjointness (for any line size dividing the slot size) and the
  MLC-occupancy bound arithmetically, subsuming the per-run
  ``bases_disjoint`` scan.
- :class:`WindowProof` — idle-window safety preconditions for cross-window
  burst replay: a bound on the distinct translation heads the schedule can
  ever expose.  When the bound fits the HTB, hot-table overflow is
  impossible, so memoized chunks that insert HTB entries replay safely and
  the replay-time capacity check is certified away.

Certificates are *advisory*: the backend validates each one against the
live workload (content fingerprints over block structure, branch-model
parameters, and stream geometry) and falls back to the existing runtime
checks whenever validation fails, so behaviour is bit-identical with
proofs on, off, or stale.

:class:`ProofStore` persists certificates on disk, keyed like the engine's
result cache (schema + package version salted, ``REPRO_CACHE_DIR`` rooted,
``REPRO_CACHE=0`` disabled); ``python -m repro staticcheck --prove`` builds
and reports them for every profile.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass, field
from math import lcm
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from repro.isa.blocks import CodeRegion
from repro.isa.branches import (
    BiasedBranch,
    GlobalCorrelatedBranch,
    LoopBranch,
    PatternBranch,
    RandomBranch,
)
from repro.staticcheck.cfg import reachable_blocks
from repro.workloads.generator import _PHASE_SLOT, SyntheticWorkload
from repro.workloads.profiles import BenchmarkProfile, build_workload

__all__ = [
    "PROOF_SCHEMA_VERSION",
    "RegionProof",
    "StreamProof",
    "WindowProof",
    "ProfileCertificate",
    "ProofStore",
    "classify_model",
    "fingerprint_region",
    "fingerprint_workload",
    "prove_region",
    "prove_streams",
    "prove_window",
    "certify_workload",
]

#: Bump when certificate structure or proof semantics change; stale stored
#: certificates self-invalidate (the store treats them as misses).
PROOF_SCHEMA_VERSION = 1

#: Outcome-closed-form classes, weakest knowledge last.
CLOSED_FORM = "closed_form"
BUFFERED = "buffered_stochastic"
HISTORY_COUPLED = "history_coupled"
OPAQUE = "opaque"

#: Joint branch-phase periods beyond this are reported as unbounded: the
#: walk-trace memo would never revisit a state within a realistic budget.
_PERIOD_CAP = 1 << 20


def _proof_code_version() -> str:
    from repro import __version__

    return __version__


def classify_model(model) -> str:
    """Place one branch model on the outcome-knowledge lattice.

    Exact-type dispatch, mirroring the vectorized walk table: a *subclass*
    of a known model could override ``next_outcome`` arbitrarily, so it
    classifies as opaque rather than inheriting its parent's class.
    """
    tm = type(model)
    if tm is LoopBranch or tm is PatternBranch:
        return CLOSED_FORM
    if tm is BiasedBranch or tm is RandomBranch:
        return BUFFERED
    if tm is GlobalCorrelatedBranch:
        return HISTORY_COUPLED
    return OPAQUE


def _model_signature(model) -> tuple:
    """Canonical, state-free description of a branch model's parameters."""
    if model is None:
        return ("none",)
    tm = type(model)
    if tm is LoopBranch:
        return ("loop", model.period)
    if tm is PatternBranch:
        return ("pattern", tuple(int(b) for b in model.pattern))
    if tm is RandomBranch:
        return ("random", model.seed)
    if tm is BiasedBranch:
        return ("biased", model.p_taken, model.seed)
    if tm is GlobalCorrelatedBranch:
        return ("global", model.offsets, model.noise, model.invert, model.seed)
    return ("opaque", tm.__name__)


def fingerprint_region(region: CodeRegion) -> str:
    """Content hash of a region's structure and branch-model parameters.

    Covers exactly the facts region proofs depend on: block layout (pcs,
    sizes, memory/vector mix), successor wiring, the entry block, and each
    branch's model signature.  Mutating any of them — e.g. flipping a model
    to :class:`BiasedBranch` after certification — changes the fingerprint,
    so the stale certificate is rejected at validation time.
    """
    parts = [region.region_id, region.entry]
    for block in region.blocks:
        parts.append(
            (
                block.pc,
                block.n_instr,
                block.n_mem,
                block.n_loads,
                block.n_vec,
                block.taken_succ,
                block.fall_succ,
                _model_signature(block.branch.model if block.branch else None),
            )
        )
    return hashlib.sha256(repr(tuple(parts)).encode()).hexdigest()


@dataclass(frozen=True)
class RegionProof:
    """Determinism verdict for one region, with the evidence behind it."""

    phase: str
    region_id: int
    deterministic: bool
    classes: Mapping[str, int]  # lattice class -> reachable branch count
    reasons: Tuple[str, ...]  # why not deterministic (empty when it is)
    period_lcm: Optional[int]  # joint phase period bound; None if unbounded
    fingerprint: str

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "region_id": self.region_id,
            "deterministic": self.deterministic,
            "classes": dict(self.classes),
            "reasons": list(self.reasons),
            "period_lcm": self.period_lcm,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RegionProof":
        return cls(
            phase=data["phase"],
            region_id=int(data["region_id"]),
            deterministic=bool(data["deterministic"]),
            classes={str(k): int(v) for k, v in data["classes"].items()},
            reasons=tuple(data["reasons"]),
            period_lcm=data["period_lcm"],
            fingerprint=data["fingerprint"],
        )


@dataclass(frozen=True)
class StreamProof:
    """Certified per-phase address bounds and slot geometry.

    ``slots`` holds one ``(phase, base, span, pattern, stride, random_frac)``
    tuple per phase, in phase order.  ``slotted`` asserts the geometric
    invariant the backend's disjointness fact follows from: base ``i`` is
    exactly ``(i + 1) * _PHASE_SLOT`` and every span fits inside its slot —
    therefore the phases' address ranges are pairwise disjoint and
    line-aligned for *any* line size dividing the slot size.
    """

    slots: Tuple[Tuple[str, int, int, str, int, float], ...]
    slotted: bool
    any_stream_pattern: bool

    def to_dict(self) -> dict:
        return {
            "slots": [list(s) for s in self.slots],
            "slotted": self.slotted,
            "any_stream_pattern": self.any_stream_pattern,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamProof":
        return cls(
            slots=tuple(
                (str(n), int(b), int(s), str(p), int(st), float(rf))
                for n, b, s, p, st, rf in data["slots"]
            ),
            slotted=bool(data["slotted"]),
            any_stream_pattern=bool(data["any_stream_pattern"]),
        )


@dataclass(frozen=True)
class WindowProof:
    """Idle-window safety precondition for cross-window burst replay.

    ``head_bound`` is the number of distinct translation heads the schedule
    can ever expose (every block of every scheduled region, since any block
    may head a translation).  A consumer whose HTB capacity is at least the
    bound has a certificate that hot-table overflow is impossible, so
    memoized walk chunks carrying HTB inserts replay safely across idle
    window boundaries without a per-replay capacity check.
    """

    head_bound: int
    n_regions: int

    def to_dict(self) -> dict:
        return {"head_bound": self.head_bound, "n_regions": self.n_regions}

    @classmethod
    def from_dict(cls, data: dict) -> "WindowProof":
        return cls(head_bound=int(data["head_bound"]), n_regions=int(data["n_regions"]))


def prove_region(phase: str, region: CodeRegion) -> RegionProof:
    """Abstractly interpret one region's branches into a determinism proof."""
    reachable = reachable_blocks(region)
    classes: Dict[str, int] = {}
    reasons = []
    periods = []
    for idx in sorted(reachable):
        block = region.blocks[idx]
        if block.branch is None:
            continue
        cls_name = classify_model(block.branch.model)
        classes[cls_name] = classes.get(cls_name, 0) + 1
        if cls_name == CLOSED_FORM:
            model = block.branch.model
            periods.append(
                model.period if type(model) is LoopBranch else len(model.pattern)
            )
        else:
            reasons.append(
                f"block {idx}: {type(block.branch.model).__name__} is {cls_name}"
            )
    deterministic = not reasons
    period_lcm: Optional[int] = None
    if deterministic and periods:
        joint = lcm(*periods)
        if joint <= _PERIOD_CAP:
            period_lcm = joint
    return RegionProof(
        phase=phase,
        region_id=region.region_id,
        deterministic=deterministic,
        classes=classes,
        reasons=tuple(reasons),
        period_lcm=period_lcm,
        fingerprint=fingerprint_region(region),
    )


def stream_slots(
    workload: SyntheticWorkload,
) -> Tuple[Tuple[str, int, int, str, int, float], ...]:
    """Live per-phase stream geometry, in phase order.

    Shared between certification and runtime validation so the two sides
    compare exactly the same facts.  Span mirrors the vectorized backend's
    hoist: the stream limit for unbounded ``stream`` patterns, the working
    set for bounded ones.
    """
    slots = []
    for name, idx in workload._phase_order.items():
        # Same seed expression as SyntheticWorkload.trace / the backends.
        stream = workload.phases[name].address_stream(
            idx, workload.seed ^ zlib.crc32(name.encode()) & 0xFFFF
        )
        behavior = stream.behavior
        span = (
            stream._stream_limit
            if behavior.pattern == "stream"
            else stream._ws_bytes
        )
        slots.append(
            (
                name,
                stream.base,
                span,
                behavior.pattern,
                behavior.stride,
                behavior.random_frac,
            )
        )
    return tuple(slots)


def prove_streams(workload: SyntheticWorkload) -> StreamProof:
    slots = stream_slots(workload)
    slotted = all(
        base == (i + 1) * _PHASE_SLOT and 0 < span <= _PHASE_SLOT
        for i, (_, base, span, _, _, _) in enumerate(slots)
    )
    return StreamProof(
        slots=slots,
        slotted=slotted,
        any_stream_pattern=any(s[3] == "stream" for s in slots),
    )


def prove_window(workload: SyntheticWorkload) -> WindowProof:
    regions = {p.region.region_id: p.region for p in workload.phases.values()}
    return WindowProof(
        head_bound=sum(len(r.blocks) for r in regions.values()),
        n_regions=len(regions),
    )


def fingerprint_workload(workload: SyntheticWorkload) -> str:
    """Content hash over everything any certificate fact depends on."""
    parts = (
        workload.name,
        workload.seed,
        tuple(workload.schedule),
        tuple(
            (name, fingerprint_region(workload.phases[name].region))
            for name in workload._phase_order
        ),
        stream_slots(workload),
    )
    return hashlib.sha256(repr(parts).encode()).hexdigest()


@dataclass(frozen=True)
class ProfileCertificate:
    """The versioned, content-hashed proof bundle for one profile build."""

    benchmark: str
    suite: str
    seed: int
    regions: Tuple[RegionProof, ...]
    stream: StreamProof
    window: WindowProof
    workload_fingerprint: str
    schema_version: int = PROOF_SCHEMA_VERSION
    code_version: str = field(default_factory=_proof_code_version)

    @property
    def deterministic_regions(self) -> Tuple[RegionProof, ...]:
        return tuple(r for r in self.regions if r.deterministic)

    def region_proof(self, region_id: int) -> Optional[RegionProof]:
        for proof in self.regions:
            if proof.region_id == region_id:
                return proof
        return None

    @property
    def content_hash(self) -> str:
        return hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode()
        ).hexdigest()

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "code_version": self.code_version,
            "benchmark": self.benchmark,
            "suite": self.suite,
            "seed": self.seed,
            "regions": [r.to_dict() for r in self.regions],
            "stream": self.stream.to_dict(),
            "window": self.window.to_dict(),
            "workload_fingerprint": self.workload_fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileCertificate":
        return cls(
            benchmark=data["benchmark"],
            suite=data["suite"],
            seed=int(data["seed"]),
            regions=tuple(RegionProof.from_dict(r) for r in data["regions"]),
            stream=StreamProof.from_dict(data["stream"]),
            window=WindowProof.from_dict(data["window"]),
            workload_fingerprint=data["workload_fingerprint"],
            schema_version=int(data["schema_version"]),
            code_version=data["code_version"],
        )

    def report(self) -> dict:
        """Coverage summary for the CLI / CI proof-coverage artifact."""
        det = self.deterministic_regions
        return {
            "benchmark": self.benchmark,
            "suite": self.suite,
            "seed": self.seed,
            "content_hash": self.content_hash,
            "regions": len(self.regions),
            "deterministic_regions": len(det),
            "deterministic_phases": [r.phase for r in det],
            "non_deterministic_reasons": {
                r.phase: list(r.reasons) for r in self.regions if not r.deterministic
            },
            "stream_slotted": self.stream.slotted,
            "window_head_bound": self.window.head_bound,
        }


def certify_workload(
    profile: BenchmarkProfile,
    workload: Optional[SyntheticWorkload] = None,
    seed: Optional[int] = None,
) -> ProfileCertificate:
    """Run the proof pass over one profile build.

    Certification is read-only over the workload — it inspects model
    parameters and stream geometry but performs no RNG draws — so it is
    safe to certify the live workload a simulation is about to run.
    """
    if workload is None:
        workload = build_workload(profile, seed)
    region_proofs = []
    seen_regions = set()
    for name in workload._phase_order:
        region = workload.phases[name].region
        if region.region_id in seen_regions:
            continue
        seen_regions.add(region.region_id)
        region_proofs.append(prove_region(name, region))
    return ProfileCertificate(
        benchmark=profile.name,
        suite=profile.suite,
        seed=workload.seed,
        regions=tuple(region_proofs),
        stream=prove_streams(workload),
        window=prove_window(workload),
        workload_fingerprint=fingerprint_workload(workload),
    )


class ProofStore:
    """Persistent on-disk store of proof certificates, one file per key.

    Keyed like the engine's result cache: the proof schema and package
    versions salt the key, so certificates from older code self-invalidate;
    the directory defaults to a ``proofs/`` subtree of ``REPRO_CACHE_DIR``
    and ``REPRO_CACHE=0`` disables reads and writes.  Corrupt, mismatched,
    or unreadable entries are misses.
    """

    def __init__(self, root: Optional[Path] = None, enabled: Optional[bool] = None):
        if root is None:
            root = (
                Path(
                    os.environ.get(
                        "REPRO_CACHE_DIR",
                        os.path.join(
                            os.path.expanduser("~"), ".cache", "repro-powerchop"
                        ),
                    )
                )
                / "proofs"
            )
        self.root = Path(root)
        if enabled is None:
            enabled = os.environ.get("REPRO_CACHE", "1") != "0"
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def key(self, benchmark: str, seed: int) -> str:
        parts = (
            f"proof-schema={PROOF_SCHEMA_VERSION}",
            f"version={_proof_code_version()}",
            f"benchmark={benchmark}",
            f"seed={seed}",
        )
        return hashlib.sha256("|".join(parts).encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, benchmark: str, seed: int) -> Optional[ProfileCertificate]:
        if not self.enabled:
            return None
        try:
            with open(self._path(self.key(benchmark, seed))) as handle:
                data = json.load(handle)
            if data.get("schema_version") != PROOF_SCHEMA_VERSION:
                raise ValueError("proof schema mismatch")
            if data.get("benchmark") != benchmark:
                raise ValueError("benchmark mismatch")
            cert = ProfileCertificate.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return cert

    def put(self, cert: ProfileCertificate) -> None:
        if not self.enabled:
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self._path(self.key(cert.benchmark, cert.seed))
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(cert.to_dict(), indent=1, sort_keys=True))
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - disk-full etc.; store is advisory
            pass

    def get_or_certify(
        self,
        profile: BenchmarkProfile,
        workload: Optional[SyntheticWorkload] = None,
        seed: Optional[int] = None,
    ) -> ProfileCertificate:
        """A valid certificate for ``profile``, from disk when possible.

        A stored certificate is only returned when its workload fingerprint
        matches the (given or freshly built) workload; anything else
        re-certifies and rewrites the store.
        """
        resolved_seed = profile.seed if seed is None else seed
        if workload is None:
            workload = build_workload(profile, seed)
        cached = self.get(profile.name, resolved_seed)
        if cached is not None and (
            cached.workload_fingerprint == fingerprint_workload(workload)
        ):
            return cached
        cert = certify_workload(profile, workload=workload, seed=seed)
        self.put(cert)
        return cert

    def clear(self) -> int:
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover
                    pass
        return removed
