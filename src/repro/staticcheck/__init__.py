"""Static analysis over the synthetic ISA: CFG verification, dataflow
summaries, the static criticality pre-pass that feeds the CDE, and the
proof engine that certifies runtime-consumable region/stream properties.

Four layered passes (see DESIGN.md §"Static analysis"):

1. :func:`verify_region` — structural CFG invariants of a
   :class:`~repro.isa.blocks.CodeRegion` (successor ranges, reachability,
   branch/mix consistency, PC layout);
2. :func:`summarize_region` — fixpoint dataflow producing per-region static
   unit-usage summaries (:class:`RegionSummary`);
3. :func:`build_hints` — packages the proofs runtime cares about into a
   :class:`StaticHints` structure the CDE consults when
   ``PowerChopConfig.use_static_hints`` is set;
4. :func:`certify_workload` — abstract interpretation emitting versioned,
   content-hashed :class:`ProfileCertificate` proof bundles (region
   determinism, stream slot-disjointness, idle-window safety) that the
   vectorized backend consumes for walk-trace memoization and to replace
   runtime checks with certificate validation.

``python -m repro staticcheck`` runs passes 1-2 over any workload profile
and reports diagnostics with severity levels; ``--prove`` adds pass 4.
"""

from repro.staticcheck.analyzer import (
    ProfileAnalysis,
    RegionAnalysis,
    analyze_profile,
    analyze_region,
    analyze_workload,
)
from repro.staticcheck.cfg import reachable_blocks, verify_region
from repro.staticcheck.dataflow import (
    RegionSummary,
    branch_entropy_bits,
    static_taken_probability,
    summarize_region,
)
from repro.staticcheck.diagnostics import Diagnostic, Severity
from repro.staticcheck.hints import StaticHints, build_hints
from repro.staticcheck.proofs import (
    PROOF_SCHEMA_VERSION,
    ProfileCertificate,
    ProofStore,
    RegionProof,
    StreamProof,
    WindowProof,
    certify_workload,
    classify_model,
    fingerprint_region,
    fingerprint_workload,
    prove_region,
    prove_streams,
    prove_window,
)

__all__ = [
    "Diagnostic",
    "Severity",
    "verify_region",
    "reachable_blocks",
    "RegionSummary",
    "summarize_region",
    "static_taken_probability",
    "branch_entropy_bits",
    "StaticHints",
    "build_hints",
    "RegionAnalysis",
    "ProfileAnalysis",
    "analyze_region",
    "analyze_workload",
    "analyze_profile",
    "PROOF_SCHEMA_VERSION",
    "RegionProof",
    "StreamProof",
    "WindowProof",
    "ProfileCertificate",
    "ProofStore",
    "classify_model",
    "fingerprint_region",
    "fingerprint_workload",
    "prove_region",
    "prove_streams",
    "prove_window",
    "certify_workload",
]
