"""CFG verification for :class:`~repro.isa.blocks.CodeRegion` graphs.

:class:`~repro.isa.blocks.CodeRegion` validates successor ranges at
construction time, but blocks are mutable (the workload generator rewires
successors and swaps branch models after construction), so a region can
drift into a malformed state that the constructor never sees.  The verifier
re-checks every structural invariant the simulator relies on:

- ``E-SUCC-RANGE``   — a successor index falls outside the block list.
- ``E-ENTRY-RANGE``  — the region entry index falls outside the block list.
- ``E-BRANCH-MIX``   — ``mix.has_branch`` disagrees with the presence of a
  :class:`~repro.isa.branches.StaticBranch` (the trace generator and the
  translator would disagree about the block's control flow).
- ``E-BRANCH-PC``    — the branch instruction's PC lies outside the block's
  ``[pc, pc + (n_instr - 1) * INSTR_BYTES]`` byte range.
- ``E-DUP-PC``       — two blocks share a PC; the translator's trace-follow
  logic and the region cache key on PCs, so duplicates alias translations.
- ``E-PC-OVERLAP``   — two blocks' instruction byte ranges overlap without
  sharing a start PC (a layout bug in the region builder).
- ``W-PC-ALIGN``     — a block PC is not ``INSTR_BYTES``-aligned.
- ``W-UNCOND-DIVERGE`` — an unconditional block whose ``taken_succ`` differs
  from ``fall_succ``; ``next_block`` ignores ``taken_succ``, so the edge is
  dead and probably a wiring mistake.
- ``W-UNREACHABLE``  — a block no path from the region entry reaches.
- ``W-NO-RETURN``    — a reachable block from which control can never return
  to the region entry.  Synthetic regions are closed loops re-entered at
  ``entry`` (the phase scheduler's analogue of the region exit), so a
  subgraph that cannot reach the entry traps execution for the rest of the
  phase and starves every other block's visit frequency.
"""

from __future__ import annotations

from typing import List, Set

from repro.isa.blocks import INSTR_BYTES, CodeRegion
from repro.staticcheck.diagnostics import Diagnostic, error, warning

__all__ = ["verify_region", "block_successors", "reachable_blocks"]


def block_successors(region: CodeRegion, index: int) -> List[int]:
    """In-range successor indices of one block, as ``next_block`` resolves
    them (unconditional blocks only ever fall through)."""
    block = region.blocks[index]
    n = len(region.blocks)
    if block.branch is None:
        succs = [block.fall_succ]
    elif block.taken_succ == block.fall_succ:
        succs = [block.fall_succ]
    else:
        succs = [block.taken_succ, block.fall_succ]
    return [s for s in succs if isinstance(s, int) and 0 <= s < n]


def reachable_blocks(region: CodeRegion) -> Set[int]:
    """Indices of blocks reachable from the region entry."""
    n = len(region.blocks)
    if not 0 <= region.entry < n:
        return set()
    seen = {region.entry}
    stack = [region.entry]
    while stack:
        for succ in block_successors(region, stack.pop()):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def _entry_reaching_blocks(region: CodeRegion, reachable: Set[int]) -> Set[int]:
    """Blocks (within ``reachable``) from which the entry can be reached."""
    predecessors: dict[int, List[int]] = {i: [] for i in reachable}
    for i in reachable:
        for succ in block_successors(region, i):
            if succ in predecessors:
                predecessors[succ].append(i)
    seen = {region.entry} if region.entry in reachable else set()
    stack = list(seen)
    while stack:
        for pred in predecessors[stack.pop()]:
            if pred not in seen:
                seen.add(pred)
                stack.append(pred)
    return seen


def verify_region(region: CodeRegion) -> List[Diagnostic]:
    """Check every structural invariant; returns diagnostics (empty = clean)."""
    diags: List[Diagnostic] = []
    rid = region.region_id
    blocks = region.blocks
    n = len(blocks)

    entry_ok = isinstance(region.entry, int) and 0 <= region.entry < n
    if not entry_ok:
        diags.append(
            error(
                "E-ENTRY-RANGE",
                f"entry index {region.entry} outside block list of size {n}",
                rid,
            )
        )

    for i, block in enumerate(blocks):
        for edge, succ in (("taken", block.taken_succ), ("fall", block.fall_succ)):
            if not isinstance(succ, int) or not 0 <= succ < n:
                diags.append(
                    error(
                        "E-SUCC-RANGE",
                        f"{edge} successor {succ} outside block list of size {n}",
                        rid,
                        i,
                    )
                )
        has_model = block.branch is not None
        if block.mix.has_branch != has_model:
            diags.append(
                error(
                    "E-BRANCH-MIX",
                    "mix.has_branch="
                    f"{block.mix.has_branch} but block "
                    f"{'carries' if has_model else 'lacks'} a branch model; "
                    "the trace generator and translator would disagree about "
                    "this block's control flow",
                    rid,
                    i,
                )
            )
        if has_model:
            low = block.pc
            high = block.pc + max(block.n_instr - 1, 0) * INSTR_BYTES
            if not low <= block.branch.pc <= high:
                diags.append(
                    error(
                        "E-BRANCH-PC",
                        f"branch pc {block.branch.pc:#x} outside block byte "
                        f"range [{low:#x}, {high:#x}]",
                        rid,
                        i,
                    )
                )
        elif block.taken_succ != block.fall_succ:
            diags.append(
                warning(
                    "W-UNCOND-DIVERGE",
                    f"unconditional block has taken_succ={block.taken_succ} != "
                    f"fall_succ={block.fall_succ}; the taken edge is dead",
                    rid,
                    i,
                )
            )
        if block.pc % INSTR_BYTES:
            diags.append(
                warning(
                    "W-PC-ALIGN",
                    f"block pc {block.pc:#x} not {INSTR_BYTES}-byte aligned",
                    rid,
                    i,
                )
            )

    # Layout: duplicate PCs, then byte-range overlaps among distinct starts.
    by_pc: dict[int, List[int]] = {}
    for i, block in enumerate(blocks):
        by_pc.setdefault(block.pc, []).append(i)
    for pc, indices in sorted(by_pc.items()):
        if len(indices) > 1:
            diags.append(
                error(
                    "E-DUP-PC",
                    f"blocks {indices} share pc {pc:#x}; translations and the "
                    "trace-follow logic key on block PCs",
                    rid,
                    indices[1],
                )
            )
    spans = sorted(
        (block.pc, block.pc + block.n_instr * INSTR_BYTES, i)
        for i, block in enumerate(blocks)
    )
    for (lo_a, hi_a, a), (lo_b, _hi_b, b) in zip(spans, spans[1:]):
        if lo_b < hi_a and lo_b != lo_a:
            diags.append(
                error(
                    "E-PC-OVERLAP",
                    f"block {b} at {lo_b:#x} starts inside block {a}'s byte "
                    f"range [{lo_a:#x}, {hi_a:#x})",
                    rid,
                    b,
                )
            )

    # Reachability (meaningful only once the entry index is valid).
    if entry_ok:
        reachable = reachable_blocks(region)
        for i in range(n):
            if i not in reachable:
                diags.append(
                    warning(
                        "W-UNREACHABLE",
                        "no path from the region entry reaches this block",
                        rid,
                        i,
                    )
                )
        returning = _entry_reaching_blocks(region, reachable)
        for i in sorted(reachable - returning):
            diags.append(
                warning(
                    "W-NO-RETURN",
                    "control entering this block can never return to the "
                    "region entry; the subgraph traps the rest of the phase",
                    rid,
                    i,
                )
            )
    return diags
