"""Static criticality hints: the bridge from analysis to the CDE.

PowerChop's CDE normally decides VPU criticality by measuring the SIMD
commit ratio over a profiling window.  The binary translator, however, sees
every region's code *before* it runs: when no reachable block of a region
contains a vector instruction, the dataflow pass proves the VPU non-critical
for any phase confined to that region, and the measurement is redundant.

:class:`StaticHints` carries that proof to runtime.  It is built once per
simulation from the workload's regions (see
:meth:`repro.sim.simulator.HybridSimulator`), threaded through the BT: the
translator notes each translation it builds (mapping translation IDs back to
their region's proof bit), the nucleus publishes the structure to interrupt
handlers, and the CDE — entered via the ``pvt_miss`` interrupt — asks
whether a phase signature's constituent translations are all VPU-dead.  When
they are, the CDE skips the VPU measurement and gates the unit for the
profiling windows themselves (``PowerChopConfig.use_static_hints``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.isa.blocks import CodeRegion
from repro.staticcheck.dataflow import RegionSummary, summarize_region

__all__ = ["StaticHints", "build_hints"]


class StaticHints:
    """Per-workload static-analysis facts, queryable by phase signature."""

    __slots__ = ("summaries", "vpu_dead_regions", "_tid_vpu_dead", "translations_noted")

    def __init__(self, summaries: Mapping[int, RegionSummary]) -> None:
        self.summaries: Dict[int, RegionSummary] = dict(summaries)
        self.vpu_dead_regions = frozenset(
            region_id for region_id, summary in self.summaries.items() if summary.vpu_dead
        )
        self._tid_vpu_dead: Dict[int, bool] = {}
        self.translations_noted = 0

    def note_translation(self, translation) -> None:
        """Record one freshly-built translation (called by the translator).

        A translation is VPU-dead when its region is statically proven so;
        ``n_vector == 0`` is re-checked as a consistency belt (a VPU-dead
        region cannot produce a vector-carrying translation).
        """
        self._tid_vpu_dead[translation.tid] = (
            translation.region_id in self.vpu_dead_regions and translation.n_vector == 0
        )
        self.translations_noted += 1

    def signature_vpu_dead(self, signature: Iterable[int]) -> bool:
        """True when every translation in the signature is known VPU-dead.

        Unknown translation IDs count as *not* proven — the hint must never
        gate a unit it cannot vouch for.
        """
        tids = tuple(signature)
        known = self._tid_vpu_dead
        return bool(tids) and all(known.get(tid, False) for tid in tids)


def build_hints(regions: Mapping[int, CodeRegion]) -> StaticHints:
    """Run the dataflow pass over every region and package the results."""
    return StaticHints(
        {region_id: summarize_region(region) for region_id, region in regions.items()}
    )
