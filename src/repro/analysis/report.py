"""Plain-text rendering of tables and bar 'figures' for the harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _fmt(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    max_value: float = 0.0,
) -> str:
    """Render a horizontal ASCII bar chart (the harness's 'figures')."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(empty)"
    peak = max_value or max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(width * max(value, 0.0) / peak)) if peak else 0
        filled = min(filled, width)
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| {value:.3f}{unit}")
    return "\n".join(lines)
