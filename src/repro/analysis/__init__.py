"""Analysis utilities: phase quality, metric aggregation, text rendering."""

from repro.analysis.phases import PhaseQuality, phase_quality
from repro.analysis.metrics import geomean, mean, suite_means
from repro.analysis.report import format_bars, format_table

__all__ = [
    "PhaseQuality",
    "phase_quality",
    "mean",
    "geomean",
    "suite_means",
    "format_table",
    "format_bars",
]
