"""Phase-identification quality analysis (paper §V-B, Figure 8).

The paper evaluates phase-detection quality by comparing the translation
vectors of execution windows that PowerChop identified as the same phase:
for every pair of same-signature windows, take the Manhattan distance
between their per-translation execution-count vectors, and average over all
pairs.  A perfect detector scores 0 (identical translations executed); the
worst case is twice the window size.  The paper reports an average
normalised distance of 2.8 % (28 of 1000 translations) with a maximum of
6.8 % — i.e. 97.8 % of translations identical on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.signature import PhaseSignature

#: Cap on pairwise comparisons per signature, to keep the analysis
#: quadratic-safe on very long runs (pairs are taken in window order).
_MAX_PAIRS_PER_SIGNATURE = 500


def manhattan_distance(a: Mapping[int, int], b: Mapping[int, int]) -> int:
    """Manhattan distance between two translation execution-count vectors."""
    distance = 0
    for tid, count in a.items():
        distance += abs(count - b.get(tid, 0))
    for tid, count in b.items():
        if tid not in a:
            distance += count
    return distance


@dataclass(frozen=True)
class PhaseQuality:
    """Summary of phase-identification quality for one run."""

    windows: int
    recurring_signatures: int
    compared_pairs: int
    mean_distance: float  # mean Manhattan distance between same-sig windows
    max_distance: float
    window_size: int

    @property
    def mean_normalised(self) -> float:
        """Mean distance as a fraction of the worst case (2 x window)."""
        return self.mean_distance / (2 * self.window_size) if self.window_size else 0.0

    @property
    def identical_fraction(self) -> float:
        """Fraction of translations identical between same-phase windows
        (the paper's '97.8 % of translations are identical' metric)."""
        return 1.0 - self.mean_normalised


def phase_quality(
    phase_log: Sequence[Tuple[PhaseSignature, Dict[int, int]]],
    window_size: int = 1000,
) -> PhaseQuality:
    """Compute Figure 8's metric from a controller's phase log.

    ``phase_log`` is the ``(signature, translation execution vector)``
    sequence a :class:`~repro.core.controller.PowerChopController` collects
    when ``collect_phase_vectors`` is enabled.
    """
    by_signature: Dict[PhaseSignature, List[Dict[int, int]]] = {}
    for signature, vector in phase_log:
        by_signature.setdefault(signature, []).append(vector)

    distances: List[int] = []
    recurring = 0
    for vectors in by_signature.values():
        if len(vectors) < 2:
            continue
        recurring += 1
        pairs = 0
        for a, b in combinations(vectors, 2):
            distances.append(manhattan_distance(a, b))
            pairs += 1
            if pairs >= _MAX_PAIRS_PER_SIGNATURE:
                break

    if not distances:
        return PhaseQuality(
            windows=len(phase_log),
            recurring_signatures=0,
            compared_pairs=0,
            mean_distance=0.0,
            max_distance=0.0,
            window_size=window_size,
        )
    return PhaseQuality(
        windows=len(phase_log),
        recurring_signatures=recurring,
        compared_pairs=len(distances),
        mean_distance=sum(distances) / len(distances),
        max_distance=float(max(distances)),
        window_size=window_size,
    )
