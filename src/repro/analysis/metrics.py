"""Metric aggregation helpers for the experiment harness."""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, TypeVar

T = TypeVar("T")


def mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (for speedup-like ratios); all values must be > 0."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def suite_means(
    records: Sequence[T],
    suite_of: Callable[[T], str],
    value_of: Callable[[T], float],
) -> Dict[str, float]:
    """Arithmetic mean of a metric per benchmark suite."""
    groups: Dict[str, List[float]] = {}
    for record in records:
        groups.setdefault(suite_of(record), []).append(value_of(record))
    return {suite: mean(values) for suite, values in groups.items()}


def weighted_mean(values: Mapping[T, float], weights: Mapping[T, float]) -> float:
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(values[k] * weights[k] for k in values) / total_weight
