"""Tests for the analysis utilities (phase quality, metrics, reporting)."""

import pytest

from repro.analysis.metrics import geomean, mean, suite_means, weighted_mean
from repro.analysis.phases import manhattan_distance, phase_quality
from repro.analysis.report import format_bars, format_table


class TestManhattan:
    def test_identical_vectors(self):
        assert manhattan_distance({1: 10, 2: 5}, {1: 10, 2: 5}) == 0

    def test_disjoint_vectors(self):
        assert manhattan_distance({1: 10}, {2: 10}) == 20

    def test_partial_overlap(self):
        assert manhattan_distance({1: 10, 2: 5}, {1: 7, 3: 2}) == 3 + 5 + 2

    def test_symmetry(self):
        a, b = {1: 4, 2: 9}, {2: 3, 5: 7}
        assert manhattan_distance(a, b) == manhattan_distance(b, a)

    def test_empty(self):
        assert manhattan_distance({}, {}) == 0


class TestPhaseQuality:
    def test_perfect_recurrence(self):
        log = [((1, 2), {1: 500, 2: 500})] * 3
        quality = phase_quality(log, window_size=1000)
        assert quality.mean_distance == 0.0
        assert quality.identical_fraction == 1.0
        assert quality.recurring_signatures == 1
        assert quality.compared_pairs == 3

    def test_imperfect_recurrence(self):
        log = [
            ((1, 2), {1: 500, 2: 500}),
            ((1, 2), {1: 480, 2: 520}),
        ]
        quality = phase_quality(log, window_size=1000)
        assert quality.mean_distance == 40
        assert quality.mean_normalised == pytest.approx(0.02)

    def test_singletons_ignored(self):
        log = [((1,), {1: 10}), ((2,), {2: 10})]
        quality = phase_quality(log)
        assert quality.recurring_signatures == 0
        assert quality.compared_pairs == 0
        assert quality.identical_fraction == 1.0


class TestMetrics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])

    def test_suite_means(self):
        records = [("a", 1.0), ("a", 3.0), ("b", 10.0)]
        result = suite_means(records, lambda r: r[0], lambda r: r[1])
        assert result == {"a": 2.0, "b": 10.0}

    def test_weighted_mean(self):
        values = {"x": 10.0, "y": 20.0}
        weights = {"x": 1.0, "y": 3.0}
        assert weighted_mean(values, weights) == pytest.approx(17.5)
        with pytest.raises(ValueError):
            weighted_mean(values, {"x": 0.0, "y": 0.0})


class TestReport:
    def test_table_alignment(self):
        table = format_table(("name", "value"), [("a", 1), ("long-name", 2.5)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a",), [("x", "y")])

    def test_bars_render(self):
        chart = format_bars(["a", "bb"], [0.5, 1.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bars_empty(self):
        assert format_bars([], []) == "(empty)"

    def test_bars_mismatch(self):
        with pytest.raises(ValueError):
            format_bars(["a"], [1.0, 2.0])
