"""Phase-detection behaviour across representative real profiles."""

import pytest

from repro.core.config import PowerChopConfig
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import design_for_suite
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile

#: One representative per suite + the motivation apps.
SAMPLE = ["gobmk", "hmmer", "gems", "dedup", "msn"]


def run_powerchop(name, max_instructions=500_000):
    profile = get_profile(name)
    design = design_for_suite(profile.suite)
    config = PowerChopConfig(window_size=500, warmup_windows=2,
                             collect_phase_vectors=True)
    simulator = HybridSimulator(
        design, build_workload(profile), GatingMode.POWERCHOP,
        powerchop_config=config,
    )
    result = simulator.run(max_instructions)
    return result, simulator


@pytest.mark.parametrize("name", SAMPLE)
class TestPhaseDetection:
    def test_signatures_recur(self, name):
        result, _sim = run_powerchop(name)
        assert result.windows > 4
        assert result.pvt_hits > 0, "phases never recognised"

    def test_policies_get_assigned(self, name):
        result, sim = run_powerchop(name)
        assert sim.controller.cde.phases_characterised() > 0

    def test_phase_quality_reasonable(self, name):
        from repro.analysis.phases import phase_quality

        _result, sim = run_powerchop(name)
        quality = phase_quality(sim.controller.phase_log, window_size=500)
        if quality.compared_pairs:
            # Same-signature windows must execute mostly-identical code.
            assert quality.identical_fraction > 0.75

    def test_htb_never_overflows_pathologically(self, name):
        _result, sim = run_powerchop(name)
        htb = sim.controller.htb
        total = sim.controller.translation_executions
        if total:
            assert htb.overflowed / total < 0.2


class TestCrossProfileDistinctness:
    def test_different_phases_have_different_signatures(self):
        _result, sim = run_powerchop("gems", max_instructions=800_000)
        signatures = {sig for sig, _vec in sim.controller.phase_log}
        # gems has two strongly different phases; PowerChop must see at
        # least two distinct recurring signatures.
        assert len(signatures) >= 2
