"""Unit tests for the direction predictors."""

import random

import pytest

from repro.uarch.branch.predictors import (
    BimodalPredictor,
    GSharePredictor,
    LocalPredictor,
    TournamentPredictor,
)


def train_and_measure(predictor, outcome_fn, n=4000, warmup=1000, pc=0x4000):
    """Train on a generated outcome stream; return post-warmup mispred rate."""
    misses = 0
    measured = 0
    for i in range(n):
        outcome = outcome_fn(i)
        if i >= warmup:
            measured += 1
            misses += predictor.predict(pc) != outcome
        predictor.update(pc, outcome)
    return misses / measured


class TestBimodal:
    def test_learns_biased(self):
        predictor = BimodalPredictor(256)
        rng = random.Random(0)
        rate = train_and_measure(predictor, lambda i: rng.random() < 0.9)
        assert rate < 0.15

    def test_fails_alternating(self):
        predictor = BimodalPredictor(256)
        rate = train_and_measure(predictor, lambda i: i % 2 == 0)
        assert rate > 0.4  # bimodal cannot track alternation

    def test_flush_resets(self):
        predictor = BimodalPredictor(64)
        for _ in range(10):
            predictor.update(0x10, False)
        assert predictor.predict(0x10) is False
        predictor.flush()
        assert predictor.predict(0x10) is True  # weakly-taken reset

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(100)

    def test_storage_bits(self):
        assert BimodalPredictor(1024).storage_bits == 2048


class TestLocal:
    def test_learns_short_pattern(self):
        predictor = LocalPredictor(n_history=64, history_bits=8, n_counters=256)
        pattern = [True, True, False]
        rate = train_and_measure(predictor, lambda i: pattern[i % 3])
        assert rate < 0.05

    def test_learns_loop_within_history(self):
        predictor = LocalPredictor(n_history=64, history_bits=10, n_counters=1024)
        rate = train_and_measure(predictor, lambda i: (i % 6) != 5)
        assert rate < 0.05

    def test_fails_long_loop_beyond_history(self):
        predictor = LocalPredictor(n_history=64, history_bits=4, n_counters=16)
        rate = train_and_measure(predictor, lambda i: (i % 40) != 39)
        assert rate > 0.01  # exits unpredictable with 4-bit history

    def test_flush(self):
        predictor = LocalPredictor(n_history=16, history_bits=4, n_counters=16)
        for i in range(100):
            predictor.update(0x8, i % 2 == 0)
        predictor.flush()
        assert predictor.predict(0x8) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalPredictor(n_history=3)
        with pytest.raises(ValueError):
            LocalPredictor(history_bits=0)


class TestGShare:
    def test_learns_global_alternation(self):
        predictor = GSharePredictor(history_bits=8, n_counters=1024)
        rate = train_and_measure(predictor, lambda i: i % 2 == 0)
        assert rate < 0.05

    def test_ghr_advances(self):
        predictor = GSharePredictor(history_bits=4, n_counters=16)
        predictor.update(0x0, True)
        predictor.update(0x0, False)
        assert predictor.ghr == 0b10

    def test_flush_clears_ghr(self):
        predictor = GSharePredictor(history_bits=4, n_counters=16)
        predictor.update(0x0, True)
        predictor.flush()
        assert predictor.ghr == 0

    def test_table_size_independent_of_history(self):
        predictor = GSharePredictor(history_bits=8, n_counters=8192)
        assert predictor.storage_bits == 2 * 8192 + 8


class TestTournament:
    def _make(self):
        local = LocalPredictor(n_history=128, history_bits=8, n_counters=256)
        global_pred = GSharePredictor(history_bits=8, n_counters=2048)
        return TournamentPredictor(local, global_pred, n_chooser=256)

    def test_beats_components_on_mixed_stream(self):
        # Branch A: local pattern; branch B: global correlation.  The
        # tournament should route each branch to the right component.
        tournament = self._make()
        outcomes_a = [True, True, False]
        misses = 0
        measured = 0
        last_b = True
        for i in range(6000):
            a = outcomes_a[i % 3]
            b = not last_b  # alternates -> global history catches it
            last_b = b
            if i > 2000:
                measured += 2
                misses += tournament.predict(0x100) != a
                misses += tournament.predict(0x200) != b
            tournament.update(0x100, a)
            tournament.update(0x200, b)
        assert misses / measured < 0.08

    def test_flush_resets_everything(self):
        tournament = self._make()
        for i in range(500):
            tournament.update(0x40, i % 2 == 0)
        tournament.flush()
        assert tournament.global_pred.ghr == 0

    def test_chooser_validation(self):
        local = LocalPredictor(n_history=16, history_bits=4, n_counters=16)
        global_pred = GSharePredictor(history_bits=4, n_counters=16)
        with pytest.raises(ValueError):
            TournamentPredictor(local, global_pred, n_chooser=100)

    def test_storage_aggregates(self):
        tournament = self._make()
        assert tournament.storage_bits > tournament.local.storage_bits
        assert tournament.storage_bits > tournament.global_pred.storage_bits
