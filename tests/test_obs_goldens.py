"""Golden-trace regression tests.

Each pinned (profile, seed, config) triple must reproduce its checked-in
decision-event sequence exactly.  A failure here means PowerChop's gating
behaviour changed: if that was intentional, regenerate the fixtures with
``python scripts/update_goldens.py`` and review the diff; if not, it's a
regression.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.obs.goldens import GOLDEN_SPECS, capture_golden, diff_goldens

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _load(name):
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text())


@pytest.fixture(scope="module")
def captures():
    """Capture every golden spec once per test module."""
    return {spec.name: capture_golden(spec) for spec in GOLDEN_SPECS}


def test_fixture_files_match_specs():
    on_disk = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert on_disk == {spec.name for spec in GOLDEN_SPECS}


@pytest.mark.parametrize("spec", GOLDEN_SPECS, ids=lambda spec: spec.name)
def test_replay_matches_fixture(spec, captures):
    expected = _load(spec.name)
    problems = diff_goldens(expected, captures[spec.name])
    assert not problems, "golden trace diverged:\n" + "\n".join(problems)


@pytest.mark.parametrize("spec", GOLDEN_SPECS, ids=lambda spec: spec.name)
def test_fixtures_are_nonempty(spec):
    # A golden with no events locks down nothing; specs are chosen for
    # decision density (policy decisions AND gate/regate activity).
    events = _load(spec.name)["events"]
    assert len(events) >= 10
    kinds = {event["kind"] for event in events}
    assert "policy_decision" in kinds
    assert "unit_gate" in kinds


def test_capture_is_deterministic(captures):
    spec = GOLDEN_SPECS[0]
    again = capture_golden(spec)
    assert again == captures[spec.name]


class TestDiff:
    def test_identical_traces_have_no_problems(self, captures):
        fixture = captures[GOLDEN_SPECS[0].name]
        assert diff_goldens(fixture, copy.deepcopy(fixture)) == []

    def test_reports_first_divergent_event(self, captures):
        expected = captures[GOLDEN_SPECS[0].name]
        tampered = copy.deepcopy(expected)
        tampered["events"][0]["payload"]["source"] = "tampered"
        problems = diff_goldens(expected, tampered)
        assert any("event 0 diverges" in line for line in problems)

    def test_reports_length_mismatch(self, captures):
        expected = captures[GOLDEN_SPECS[0].name]
        truncated = copy.deepcopy(expected)
        truncated["events"].pop()
        problems = diff_goldens(expected, truncated)
        assert any("event count" in line for line in problems)

    def test_reports_schema_mismatch(self, captures):
        expected = captures[GOLDEN_SPECS[0].name]
        stale = copy.deepcopy(expected)
        stale["schema"] = 0
        assert any("schema" in line for line in diff_goldens(stale, expected))
