"""Additional simulator-mode coverage: managed-unit subsets, edge cases."""

import pytest

from repro.core.config import PowerChopConfig
from repro.sim.simulator import GatingMode, HybridSimulator, run_simulation
from repro.uarch.config import SERVER
from repro.workloads.profiles import build_workload

N = 250_000


def run_managed(tiny_profile, managed, n=N):
    config = PowerChopConfig(
        window_size=200, warmup_windows=2, managed_units=managed
    )
    return run_simulation(
        SERVER,
        tiny_profile,
        GatingMode.POWERCHOP,
        max_instructions=n,
        powerchop_config=config,
    )


class TestManagedSubsets:
    def test_vpu_only_never_touches_others(self, tiny_profile):
        result = run_managed(tiny_profile, ("vpu",))
        assert result.energy.bpu_gated_frac == 0.0
        assert result.energy.mlc_way_residency == {SERVER.mlc_assoc: 1.0}
        assert result.switch_counts["bpu"] == 0
        assert result.switch_counts["mlc"] == 0

    def test_bpu_only(self, tiny_profile):
        result = run_managed(tiny_profile, ("bpu",))
        assert result.energy.vpu_gated_frac == 0.0
        assert result.switch_counts["vpu"] == 0

    def test_mlc_only(self, tiny_profile):
        result = run_managed(tiny_profile, ("mlc",))
        assert result.energy.vpu_gated_frac == 0.0
        assert result.energy.bpu_gated_frac == 0.0

    def test_single_unit_profiling_faster(self, tiny_profile):
        """Without the BPU, profiling needs one window instead of two."""
        vpu_only = run_managed(tiny_profile, ("vpu",))
        assert vpu_only.new_phases > 0

    def test_invalid_managed_units(self):
        with pytest.raises(ValueError):
            PowerChopConfig(managed_units=("fpu",))
        with pytest.raises(ValueError):
            PowerChopConfig(managed_units=())


class TestConfigValidation:
    def test_window_and_signature_bounds(self):
        with pytest.raises(ValueError):
            PowerChopConfig(window_size=0)
        with pytest.raises(ValueError):
            PowerChopConfig(signature_length=0)
        with pytest.raises(ValueError):
            PowerChopConfig(htb_entries=2, signature_length=4)
        with pytest.raises(ValueError):
            PowerChopConfig(pvt_entries=0)
        with pytest.raises(ValueError):
            PowerChopConfig(cde_interrupt_cycles=-1.0)

    def test_defaults_are_papers(self):
        config = PowerChopConfig()
        assert config.window_size == 1000
        assert config.signature_length == 4
        assert config.htb_entries == 128
        assert config.pvt_entries == 16


class TestTimeoutEdges:
    def test_long_timeout_never_gates(self, tiny_profile):
        result = run_simulation(
            SERVER,
            tiny_profile,
            GatingMode.TIMEOUT,
            max_instructions=N,
            timeout_cycles=1e9,
        )
        assert result.energy.vpu_gated_frac == 0.0

    def test_short_timeout_gates_more(self, tiny_profile):
        lax = run_simulation(
            SERVER, tiny_profile, GatingMode.TIMEOUT,
            max_instructions=N, timeout_cycles=200_000,
        )
        eager = run_simulation(
            SERVER, tiny_profile, GatingMode.TIMEOUT,
            max_instructions=N, timeout_cycles=2_000,
        )
        assert eager.energy.vpu_gated_frac >= lax.energy.vpu_gated_frac

    def test_timeout_switch_counts_tracked(self, tiny_profile):
        result = run_simulation(
            SERVER, tiny_profile, GatingMode.TIMEOUT,
            max_instructions=N, timeout_cycles=5_000,
        )
        assert result.switch_counts["vpu"] >= 1


class TestPrefetchIntegration:
    def test_streaming_profile_benefits_from_prefetcher(self):
        import dataclasses

        from repro.workloads.generator import MemoryBehavior
        from repro.workloads.mixes import PREDICTABLE
        from repro.workloads.profiles import BenchmarkProfile, PhaseDecl, RegionSpec

        profile = BenchmarkProfile(
            name="streamer",
            suite="test",
            phases=(
                PhaseDecl(
                    name="s",
                    region=RegionSpec(n_blocks=8, branch_mix=PREDICTABLE, mem_frac=0.4),
                    memory=MemoryBehavior(working_set_kb=8192, pattern="stream"),
                    blocks=20_000,
                ),
            ),
            schedule=("s",),
            seed=3,
        )
        with_pf = run_simulation(SERVER, profile, GatingMode.FULL, 150_000)
        no_pf_design = dataclasses.replace(SERVER, prefetch_streams=0)
        workload = build_workload(profile)
        no_pf = HybridSimulator(no_pf_design, workload, GatingMode.FULL).run(150_000)
        assert with_pf.ipc > no_pf.ipc * 1.3
        assert with_pf.extra["prefetch_covered"] > 0
