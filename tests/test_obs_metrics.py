"""Metrics registry tests: instruments, snapshot schema, legacy parity."""

import pytest

from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)
from repro.sim.simulator import GatingMode


class TestMetricKey:
    def test_unlabelled(self):
        assert metric_key("cycles", {}) == "cycles"

    def test_labels_sorted(self):
        key = metric_key("cache_hits", {"level": "2", "cache": "mlc"})
        assert key == "cache_hits{cache=mlc,level=2}"


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="increase"):
            Counter().inc(-1)

    def test_gauge_sets(self):
        gauge = Gauge()
        gauge.set(2.5)
        gauge.set(-1.0)
        assert gauge.value == -1.0

    def test_histogram_summary(self):
        hist = Histogram()
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.to_dict() == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0}
        assert hist.mean == 2.0

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.to_dict() == {"count": 0, "sum": 0.0, "min": None, "max": None}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("hits", cache="l1") is registry.counter(
            "hits", cache="l1"
        )
        assert registry.counter("hits", cache="l1") is not registry.counter(
            "hits", cache="mlc"
        )

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("cycles")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("cycles")

    def test_snapshot_schema_and_sorted_keys(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc(1)
        registry.counter("alpha").inc(2)
        registry.gauge("cycles").set(10.0)
        registry.histogram("ipc").observe(0.5)
        snap = registry.snapshot()
        assert snap["schema"] == METRICS_SCHEMA_VERSION
        assert list(snap["counters"]) == ["alpha", "zeta"]
        assert snap["gauges"] == {"cycles": 10.0}
        assert snap["histograms"]["ipc"]["count"] == 1


class TestResultSnapshot:
    def test_off_leaves_metrics_empty(self, run_quick):
        result, _sim = run_quick(GatingMode.FULL)
        assert result.metrics == {}

    @pytest.mark.parametrize("level", ["metrics", "full"])
    def test_snapshot_lands_on_result(self, tiny_profile, level):
        from repro.uarch.config import SERVER
        from repro.sim.simulator import HybridSimulator
        from repro.workloads.profiles import build_workload

        simulator = HybridSimulator(
            SERVER, build_workload(tiny_profile), GatingMode.FULL, obs_level=level
        )
        result = simulator.run(60_000)
        assert result.metrics["schema"] == METRICS_SCHEMA_VERSION
        assert result.metrics["counters"]["instructions"] == result.instructions

    def test_legacy_parity(self, run_quick):
        """Registry totals equal the legacy result fields (A/B parity)."""
        result, sim = run_quick(GatingMode.POWERCHOP)
        from repro.obs.collect import collect_metrics

        counters = collect_metrics(sim, result).snapshot()["counters"]
        assert counters["instructions"] == result.instructions
        assert counters["micro_ops"] == result.micro_ops
        assert counters["branches"] == result.branches
        assert counters["mispredicts"] == result.mispredicts
        assert counters["cache_hits{cache=l1}"] == result.l1_hits
        assert counters["cache_misses{cache=l1}"] == result.l1_misses
        assert counters["cache_hits{cache=mlc}"] == result.mlc_hits
        assert counters["cache_misses{cache=mlc}"] == result.mlc_misses
        assert counters["cache_writebacks{cache=mlc}"] == result.mlc_writebacks
        assert (
            counters["bt_interpreted_instructions"]
            == result.interpreted_instructions
        )
        assert counters["bt_translations_built"] == result.translations_built
        assert counters["windows"] == result.windows
        assert counters["pvt_lookups"] == result.pvt_lookups
        assert counters["pvt_hits"] == result.pvt_hits
        assert counters["pvt_misses"] == result.pvt_misses
        assert counters["pvt_evictions"] == result.pvt_evictions
        assert counters["cde_invocations"] == result.cde_invocations
        assert counters["cde_new_phases"] == result.new_phases
        for unit, count in result.switch_counts.items():
            assert counters[f"unit_switches{{unit={unit}}}"] == count

    def test_metrics_round_trip_through_result_dict(self, tiny_profile):
        from repro.sim.results import SimulationResult
        from repro.sim.simulator import HybridSimulator
        from repro.uarch.config import SERVER
        from repro.workloads.profiles import build_workload

        simulator = HybridSimulator(
            SERVER, build_workload(tiny_profile), GatingMode.FULL, obs_level="metrics"
        )
        result = simulator.run(60_000)
        rebuilt = SimulationResult.from_dict(result.to_dict())
        assert rebuilt.metrics == result.metrics

    def test_from_dict_tolerates_pre_metrics_payloads(self, run_quick):
        from repro.sim.results import SimulationResult

        result, _sim = run_quick(GatingMode.FULL)
        data = result.to_dict()
        del data["metrics"]  # cache entries written before the field existed
        assert SimulationResult.from_dict(data).metrics == {}
