"""Tests for phase signatures and the Hot Translation Buffer."""

import pytest

from repro.core.htb import HotTranslationBuffer
from repro.core.signature import make_signature


class TestSignature:
    def test_hottest_selected(self):
        counts = {1: 100, 2: 5, 3: 80, 4: 60, 5: 70, 6: 1}
        assert make_signature(counts, 4) == (1, 3, 4, 5)

    def test_sorted_output(self):
        counts = {9: 10, 2: 20, 7: 30}
        sig = make_signature(counts, 3)
        assert sig == tuple(sorted(sig))

    def test_tie_broken_by_tid(self):
        counts = {5: 10, 3: 10, 8: 10, 1: 10, 9: 10}
        assert make_signature(counts, 4) == (1, 3, 5, 8)

    def test_short_window(self):
        assert make_signature({7: 3}, 4) == (7,)

    def test_empty(self):
        assert make_signature({}, 4) == ()

    def test_order_insensitive_identity(self):
        a = make_signature({1: 50, 2: 40, 3: 30, 4: 20}, 4)
        b = make_signature({4: 21, 3: 29, 2: 41, 1: 52}, 4)
        assert a == b

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            make_signature({1: 1}, 0)


class TestHTB:
    def test_window_completion(self):
        htb = HotTranslationBuffer(n_entries=8, window_size=3)
        assert htb.record(1, 10) is False
        assert htb.record(2, 10) is False
        assert htb.record(1, 10) is True

    def test_instruction_weighted_hotness(self):
        htb = HotTranslationBuffer(n_entries=8, window_size=100)
        htb.record(1, 5)
        htb.record(2, 50)  # fewer executions but more instructions
        htb.record(1, 5)
        assert htb.signature(1) == (2,)

    def test_overflow_ignored(self):
        htb = HotTranslationBuffer(n_entries=2, window_size=100)
        htb.record(1, 10)
        htb.record(2, 10)
        htb.record(3, 10)  # no room: ignored (paper behaviour)
        assert htb.occupancy == 2
        assert htb.overflowed == 1
        assert 3 not in htb.translation_vector()

    def test_flush(self):
        htb = HotTranslationBuffer(n_entries=8, window_size=10)
        htb.record(1, 10)
        htb.flush()
        assert htb.occupancy == 0
        assert htb.window_executions == 0
        assert htb.windows_completed == 1

    def test_execution_vector(self):
        htb = HotTranslationBuffer(n_entries=8, window_size=100)
        for _ in range(3):
            htb.record(7, 10)
        htb.record(9, 100)
        assert htb.translation_vector() == {7: 3, 9: 1}

    def test_paper_storage(self):
        htb = HotTranslationBuffer()
        assert htb.storage_bytes == 1024  # 1KB (paper §IV-B4)
        assert htb.n_entries == 128
        assert htb.window_size == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            HotTranslationBuffer(n_entries=0)
        with pytest.raises(ValueError):
            HotTranslationBuffer(window_size=0)
