"""Tests for the static-analysis framework (repro.staticcheck)."""

import json

import pytest

from repro.__main__ import main
from repro.isa.blocks import INSTR_BYTES, BasicBlock, CodeRegion
from repro.isa.branches import (
    BiasedBranch,
    GlobalCorrelatedBranch,
    LoopBranch,
    PatternBranch,
    RandomBranch,
    StaticBranch,
)
from repro.isa.instructions import InstructionMix
from repro.staticcheck import (
    Severity,
    analyze_profile,
    analyze_region,
    branch_entropy_bits,
    reachable_blocks,
    static_taken_probability,
    summarize_region,
    verify_region,
)
from repro.workloads.suites import ALL_BENCHMARKS, get_profile


def make_block(pc, *, scalar=5, vector=0, loads=2, stores=1, branch_model=None,
               taken=0, fall=0):
    """One valid block; a branch model places the branch on the last slot."""
    mix = InstructionMix(
        scalar=scalar,
        vector=vector,
        loads=loads,
        stores=stores,
        has_branch=branch_model is not None,
    )
    branch = None
    if branch_model is not None:
        branch = StaticBranch(
            pc=pc + (mix.total - 1) * INSTR_BYTES, model=branch_model
        )
    return BasicBlock(pc, mix, branch, taken_succ=taken, fall_succ=fall)


def make_loop_region(region_id=0):
    """A clean 3-block loop: 0 -> 1 -> (back to 0 | fall to 2) -> 0."""
    b0 = make_block(0x1000, taken=1, fall=1)
    b1 = make_block(0x2000, branch_model=LoopBranch(4), taken=0, fall=2)
    b2 = make_block(0x3000, taken=0, fall=0)
    return CodeRegion(region_id, [b0, b1, b2], entry=0)


class TestVerifier:
    def codes(self, region):
        return {d.code for d in verify_region(region)}

    def test_clean_region_has_no_diagnostics(self):
        assert verify_region(make_loop_region()) == []

    def test_out_of_range_successor(self):
        region = make_loop_region()
        region.blocks[2].fall_succ = 99  # post-construction rewire
        assert "E-SUCC-RANGE" in self.codes(region)

    def test_entry_out_of_range(self):
        region = make_loop_region()
        region.entry = 7
        codes = self.codes(region)
        assert "E-ENTRY-RANGE" in codes
        # Reachability checks are suppressed when the entry itself is bad.
        assert "W-UNREACHABLE" not in codes

    def test_unreachable_block(self):
        region = make_loop_region()
        region.blocks[1].taken_succ = 0
        region.blocks[1].fall_succ = 0  # block 2 now orphaned
        diags = verify_region(region)
        assert any(
            d.code == "W-UNREACHABLE" and d.block == 2 for d in diags
        )

    def test_branch_mix_mismatch(self):
        region = make_loop_region()
        region.blocks[1].branch = None  # mix still claims has_branch
        assert "E-BRANCH-MIX" in self.codes(region)

    def test_branch_pc_outside_block(self):
        region = make_loop_region()
        region.blocks[1].branch.pc = 0x9000
        assert "E-BRANCH-PC" in self.codes(region)

    def test_duplicate_pc(self):
        region = make_loop_region()
        region.blocks[2].pc = region.blocks[0].pc
        assert "E-DUP-PC" in self.codes(region)

    def test_overlapping_byte_ranges(self):
        region = make_loop_region()
        region.blocks[1].pc = region.blocks[0].pc + INSTR_BYTES
        assert "E-PC-OVERLAP" in self.codes(region)

    def test_misaligned_pc(self):
        region = make_loop_region()
        region.blocks[0].pc = 0x1001
        assert "W-PC-ALIGN" in self.codes(region)

    def test_dead_taken_edge_on_unconditional_block(self):
        region = make_loop_region()
        region.blocks[0].taken_succ = 2  # fall_succ stays 1; edge is dead
        assert "W-UNCOND-DIVERGE" in self.codes(region)

    def test_trap_subgraph_cannot_return_to_entry(self):
        # 0 -> 1 -> (2 | 0); 2 self-loops, so control entering it is stuck.
        b0 = make_block(0x1000, taken=1, fall=1)
        b1 = make_block(0x2000, branch_model=LoopBranch(4), taken=2, fall=0)
        b2 = make_block(0x3000, taken=2, fall=2)
        region = CodeRegion(5, [b0, b1, b2], entry=0)
        diags = verify_region(region)
        assert any(d.code == "W-NO-RETURN" and d.block == 2 for d in diags)

    def test_diagnostics_are_actionable(self):
        region = make_loop_region()
        region.blocks[2].fall_succ = 99
        diag = verify_region(region)[0]
        rendered = diag.render()
        assert diag.message
        assert diag.code in rendered
        assert "region" in rendered
        assert diag.severity is Severity.ERROR


class TestDataflow:
    def test_taken_probabilities(self):
        assert static_taken_probability(LoopBranch(4)) == pytest.approx(0.75)
        assert static_taken_probability(
            PatternBranch([True, False, True, True])
        ) == pytest.approx(0.75)
        assert static_taken_probability(BiasedBranch(0.2)) == pytest.approx(0.2)
        assert static_taken_probability(
            GlobalCorrelatedBranch()
        ) == pytest.approx(0.5)

    def test_entropy_bounds(self):
        assert branch_entropy_bits(LoopBranch(8)) == 0.0
        assert branch_entropy_bits(PatternBranch([True, False])) == 0.0
        assert branch_entropy_bits(RandomBranch()) == pytest.approx(1.0)
        assert branch_entropy_bits(BiasedBranch(0.9)) == pytest.approx(
            0.469, abs=1e-3
        )

    def test_vector_free_region_is_vpu_dead(self):
        summary = summarize_region(make_loop_region())
        assert summary.vpu_dead
        assert summary.static_vector_ops == 0
        assert summary.vector_frac == 0.0
        assert summary.converged
        assert 0.0 < summary.load_density < 1.0

    def test_vector_region_is_not_vpu_dead(self):
        region = make_loop_region()
        b = make_block(0x4000, vector=6, taken=0, fall=0)
        b.region_id = region.region_id
        region.blocks[2].fall_succ = 3
        region.blocks.append(b)
        summary = summarize_region(region)
        assert not summary.vpu_dead
        assert summary.static_vector_ops == 6
        assert summary.vector_frac > 0.0

    def test_unreachable_vector_ops_do_not_spoil_the_proof(self):
        region = make_loop_region()
        orphan = make_block(0x4000, vector=6, taken=0, fall=0)
        orphan.region_id = region.region_id
        region.blocks.append(orphan)  # nothing points at it
        assert 3 not in reachable_blocks(region)
        summary = summarize_region(region)
        assert summary.vpu_dead
        assert summary.static_vector_ops == 0
        assert summary.n_reachable == 3

    def test_loop_only_region_has_zero_branch_entropy(self):
        summary = summarize_region(make_loop_region())
        assert summary.branch_entropy_bits == 0.0

    def test_invalid_entry_yields_empty_summary(self):
        region = make_loop_region()
        region.entry = 9
        summary = summarize_region(region)
        assert summary.n_reachable == 0
        assert summary.static_instructions == 0
        assert summary.converged
        assert summary.load_density == 0.0


class TestProfiles:
    def test_all_builtin_profiles_are_clean(self):
        for profile in ALL_BENCHMARKS:
            analysis = analyze_profile(profile)
            assert analysis.n_errors == 0, analysis.render()
            assert analysis.n_warnings == 0, analysis.render()

    def test_known_vpu_dead_benchmarks(self):
        assert analyze_profile(get_profile("hmmer")).vpu_dead_regions
        # bodytrack is vector-dense; no region should be provably dead.
        assert not analyze_profile(get_profile("bodytrack")).vpu_dead_regions

    def test_analysis_is_deterministic(self):
        profile = get_profile("gobmk")
        assert (
            analyze_profile(profile).to_dict()
            == analyze_profile(profile).to_dict()
        )

    def test_info_note_marks_vpu_dead_regions(self):
        analysis = analyze_region(make_loop_region())
        assert any(d.code == "I-VPU-DEAD" for d in analysis.diagnostics)


class TestCLI:
    def test_single_workload(self, capsys):
        assert main(["staticcheck", "-w", "hmmer"]) == 0
        out = capsys.readouterr().out
        assert "hmmer" in out
        assert "0 error(s)" in out

    def test_json_output(self, capsys):
        assert main(["staticcheck", "-w", "gobmk", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["errors"] == 0
        assert payload["profiles"][0]["benchmark"] == "gobmk"

    def test_verbose_includes_summaries(self, capsys):
        assert main(["staticcheck", "-w", "hmmer", "-v"]) == 0
        out = capsys.readouterr().out
        assert "H(branch)" in out
        assert "I-VPU-DEAD" in out

    def test_unknown_workload_fails_fast(self):
        with pytest.raises(KeyError):
            main(["staticcheck", "-w", "no-such-benchmark"])

    def test_json_schema_is_pinned(self, capsys):
        # Consumers (CI artifacts, dashboards) key on this shape; bump
        # STATICCHECK_JSON_SCHEMA when it changes.
        from repro.__main__ import STATICCHECK_JSON_SCHEMA

        assert main(["staticcheck", "-w", "gobmk", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert STATICCHECK_JSON_SCHEMA == 1
        assert payload["schema_version"] == STATICCHECK_JSON_SCHEMA
        assert set(payload) == {
            "schema_version",
            "profiles",
            "errors",
            "warnings",
            "ok",
        }

    def test_prove_reports_certificates(self, capsys):
        assert main(["staticcheck", "-w", "dgemm", "--prove", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        (report,) = payload["proofs"]
        assert report["benchmark"] == "dgemm"
        assert report["deterministic_regions"] == report["regions"] > 0
        assert report["stream_slotted"] is True
        assert report["content_hash"]

    def test_prove_human_output_condenses_reasons(self, capsys):
        assert main(["staticcheck", "-w", "gobmk", "--prove"]) == 0
        out = capsys.readouterr().out
        assert "non-closed-form branch(es)" in out
        assert "--json" in out
