"""Tiny-scale smoke tests of the heavyweight experiment modules.

These run the same code paths the full benchmark suite drives, at ~5% of
the instruction budget — enough to catch harness regressions without the
cost (shape assertions live in benchmarks/)."""

import pytest

from repro.experiments import common


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.05")
    common.clear_cache()
    yield
    common.clear_cache()


def test_unit_activity_mobile_smoke():
    from repro.experiments import unit_activity

    fractions = unit_activity.unit_gated_fractions("amazon")
    assert set(fractions) == {"vpu", "bpu", "mlc"}
    assert all(0.0 <= v <= 1.0 for v in fractions.values())


def test_fig16_smoke():
    from repro.experiments import fig16_vpu_timeout

    result = fig16_vpu_timeout.run(benchmarks=["hmmer", "namd"])
    assert len(result.rows) == 2
    assert "mean_powerchop_gated" in result.summary


def test_fig11_smoke():
    from repro.experiments import fig11_policy_changes

    result = fig11_policy_changes.run(benchmarks=["hmmer"])
    assert result.rows[0][0] == "hmmer"


def test_fig12_smoke():
    from repro.experiments import fig12_performance

    result = fig12_performance.run(benchmarks=["hmmer"])
    assert "mean_minimal_slowdown" in result.summary


def test_fig13_fig14_smoke():
    from repro.experiments import fig13_power_energy, fig14_leakage

    r13 = fig13_power_energy.run(benchmarks=["hmmer", "gobmk"])
    r14 = fig14_leakage.run(benchmarks=["hmmer", "gobmk"])
    assert len(r13.rows) == 2
    assert len(r14.rows) == 2
    # These share cached runs: the second call must not redo the work.
    assert r13.summary["mean_power_reduction"] is not None


def test_headline_smoke(monkeypatch):
    # Headline sweeps all 29 apps; restrict via monkeypatching the suites.
    from repro.experiments import headline
    from repro.workloads import suites

    monkeypatch.setattr(
        headline,
        "server_benchmarks",
        lambda: [suites.get_profile("hmmer")],
    )
    monkeypatch.setattr(
        headline,
        "mobile_benchmarks",
        lambda: [suites.get_profile("amazon")],
    )
    result = headline.run()
    assert {row[0] for row in result.rows} == {"server", "mobile"}


def test_sw_cost_smoke():
    from repro.experiments import table_sw_cost

    result = table_sw_cost.run(benchmarks=["hmmer"])
    assert result.summary["mean_miss_rate"] >= 0.0


def test_thresholds_smoke():
    from repro.experiments import table_thresholds

    result = table_thresholds.run(benchmarks=("hmmer",), fraction=0.2)
    presets = {row[1] for row in result.rows}
    assert presets == {"conservative", "default", "aggressive"}
