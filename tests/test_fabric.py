"""Sweep-fabric suite: fault injection, cache lifecycle, equivalence.

Covers the acceptance matrix for the fabric service layer:

- retry-success / retry-exhaustion / timeout / batch-survives-poison-worker
  paths, driven by the deterministic ``FaultyExecutor`` injectors from
  conftest;
- property-based (seeded ``random``, no extra deps) cache-lifecycle
  checks: the size budget is never exceeded, LRU never evicts a just-hit
  key before a colder one, and hit/miss/eviction counters reconcile with
  the model's observed operations;
- bit-identical equivalence between :class:`FabricScheduler` and
  :class:`SweepRunner` on a profiles x modes matrix, ``from_cache`` flags
  included;
- the engine regression: a crashed or unpicklable-result job yields a
  failed :class:`JobRecord` while the rest of the batch completes.
"""

import random

import pytest

from repro.sim import engine
from repro.sim.engine import (
    ResultCache,
    SimJob,
    SweepRunner,
    execute_job,
)
from repro.sim.fabric import (
    FabricScheduler,
    JobStatus,
    PoolUnavailable,
    RestartablePool,
    RetryPolicy,
)
from repro.sim.simulator import GatingMode
from tests.conftest import UnpicklableProbe

FAST = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05)


@pytest.fixture(autouse=True)
def fresh_engine(monkeypatch, tmp_path):
    """Each test gets an empty memo and its own disk-cache directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_BUDGET", raising=False)
    engine.clear_memo()
    yield
    engine.clear_memo()


def _job(seed=None, budget=30_000, benchmark="hmmer", mode=GatingMode.FULL):
    return SimJob(
        benchmark=benchmark, mode=mode, max_instructions=budget, seed=seed
    )


# ------------------------------------------------------------ retry policy


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.3,
            jitter_frac=0.0,
        )
        rng = random.Random(0)
        delays = [policy.delay(n, rng) for n in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]  # exponential, then capped

    def test_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay=1.0, jitter_frac=0.25, max_delay=1.0)
        draws = [policy.delay(1, random.Random(seed)) for seed in range(50)]
        assert all(0.75 <= d <= 1.25 for d in draws)
        assert len(set(draws)) > 1  # jitter actually varies
        # Seeded: the same rng state reproduces the same delay sequence.
        assert [policy.delay(1, random.Random(7)) for _ in range(3)] == [
            policy.delay(1, random.Random(7)) for _ in range(3)
        ]

    def test_exhausted_counts_first_attempt(self):
        assert RetryPolicy(max_attempts=1).exhausted(1)
        assert not RetryPolicy(max_attempts=3).exhausted(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_frac=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


# --------------------------------------------------------- restartable pool


class TestRestartablePool:
    def test_restart_if_ignores_stale_generation(self):
        pool = RestartablePool(max_workers=1)
        generation = pool.generation
        pool.restart()  # generation moves on
        assert pool.restarts == 1
        pool.restart_if(generation)  # stale caller: must not restart again
        assert pool.restarts == 1
        pool.restart_if(pool.generation)  # live caller: restarts
        assert pool.restarts == 2
        pool.close()

    def test_unavailable_pool_raises_pool_unavailable(self, monkeypatch):
        pool = RestartablePool(max_workers=2)

        def boom(max_workers):
            raise OSError("no fork for you")

        monkeypatch.setattr(
            "repro.sim.fabric.pool.ProcessPoolExecutor", boom
        )
        with pytest.raises(PoolUnavailable):
            pool.submit(int)
        assert not pool.available
        with pytest.raises(PoolUnavailable):  # stays unavailable
            pool.submit(int)


# -------------------------------------------------- cache lifecycle (LRU)


@pytest.fixture(scope="module")
def template_record():
    """One real successful record to persist under synthetic keys."""
    return execute_job(SimJob(benchmark="hmmer", max_instructions=20_000))


class _Clock:
    """Deterministic strictly-increasing mtime source."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestCacheLifecycle:
    def _cache(self, tmp_path, budget_entries, entry_size):
        return ResultCache(
            root=tmp_path / "lru",
            budget_bytes=budget_entries * entry_size,
            clock=_Clock(),
        )

    def _entry_size(self, tmp_path, record):
        probe = ResultCache(root=tmp_path / "probe")
        probe.put("size-probe", record)
        return probe.total_bytes()

    def test_lru_never_evicts_just_hit_key_before_colder(
        self, tmp_path, template_record
    ):
        size = self._entry_size(tmp_path, template_record)
        cache = self._cache(tmp_path, 3, size)
        for key in ("k1", "k2", "k3"):
            cache.put(key, template_record)
        assert cache.get("k1") is not None  # touch: k1 is now hottest
        cache.put("k4", template_record)  # over budget: k2 is coldest
        names = {path.name for path, _mtime, _size in cache.entries()}
        assert names == {"k1.json", "k3.json", "k4.json"}
        assert cache.evictions == 1
        assert cache.get("k2") is None  # evicted -> miss

    def test_budget_smaller_than_one_entry_still_holds(
        self, tmp_path, template_record
    ):
        size = self._entry_size(tmp_path, template_record)
        cache = ResultCache(
            root=tmp_path / "tiny", budget_bytes=size - 1, clock=_Clock()
        )
        cache.put("only", template_record)
        assert cache.total_bytes() <= size - 1  # invariant wins: evicted
        assert cache.entries() == []

    def test_zero_budget_means_unbounded(self, tmp_path, template_record):
        cache = ResultCache(root=tmp_path / "unbounded", budget_bytes=0)
        for index in range(8):
            cache.put(f"key{index}", template_record)
        assert len(cache.entries()) == 8
        assert cache.evictions == 0

    def test_budget_env_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_BUDGET", "12345")
        assert ResultCache(root=tmp_path).budget_bytes == 12345
        monkeypatch.setenv("REPRO_CACHE_BUDGET", "chonky")
        with pytest.raises(ValueError):
            ResultCache(root=tmp_path)

    def test_property_interleavings_respect_budget_lru_and_counters(
        self, tmp_path, template_record
    ):
        """Seeded random put/get interleavings against a model cache.

        Invariants after every operation: total bytes <= budget; the
        resident key set is exactly the model's LRU survivors (so no
        eviction ever picks a hotter key over a colder one); and the
        hit/miss/eviction counters equal the model's observed counts.
        """
        size = self._entry_size(tmp_path, template_record)
        budget_entries = 4
        cache = self._cache(tmp_path, budget_entries, size)
        rng = random.Random(1234)
        universe = [f"key{n}" for n in range(10)]
        model_lru: list = []  # coldest ... hottest
        hits = misses = evictions = 0

        for _step in range(300):
            key = rng.choice(universe)
            if rng.random() < 0.5:
                cache.put(key, template_record)
                if key in model_lru:
                    model_lru.remove(key)
                model_lru.append(key)
                while len(model_lru) > budget_entries:
                    model_lru.pop(0)
                    evictions += 1
            else:
                record = cache.get(key)
                if key in model_lru:
                    assert record is not None, f"model expected hit on {key}"
                    model_lru.remove(key)
                    model_lru.append(key)
                    hits += 1
                else:
                    assert record is None, f"model expected miss on {key}"
                    misses += 1
            assert cache.total_bytes() <= budget_entries * size
            resident = {path.name[: -len(".json")] for path, _m, _s in cache.entries()}
            assert resident == set(model_lru)
        assert (cache.hits, cache.misses, cache.evictions) == (
            hits,
            misses,
            evictions,
        ), "counters must reconcile with observed operations"
        assert evictions > 0 and hits > 0 and misses > 0  # the run was interesting


# ------------------------------------------------------- schema migration


class TestSchemaMigration:
    @pytest.fixture(autouse=True)
    def _pristine_migrations(self):
        saved = dict(engine.SCHEMA_MIGRATIONS)
        engine.SCHEMA_MIGRATIONS.clear()
        yield
        engine.SCHEMA_MIGRATIONS.clear()
        engine.SCHEMA_MIGRATIONS.update(saved)

    def test_v4_records_readable_after_bump_via_migration(
        self, monkeypatch, tmp_path, template_record
    ):
        cache = ResultCache(root=tmp_path / "mig")
        old_version = engine.CACHE_SCHEMA_VERSION
        job = SimJob(benchmark="hmmer", max_instructions=20_000)
        key = job.key()
        cache.put(key, template_record)

        monkeypatch.setattr(engine, "CACHE_SCHEMA_VERSION", old_version + 1)
        assert job.key() == key, "schema version must not salt the job key"
        assert cache.get(key) is None, "no migration registered -> miss"

        @engine.register_schema_migration(old_version)
        def _up(payload):
            payload = dict(payload)
            payload["schema"] = old_version + 1
            return payload

        migrated = cache.get(key)
        assert migrated is not None
        assert migrated.from_cache
        assert migrated.result.to_dict() == template_record.result.to_dict()

    def test_migration_chain_and_cycle_guard(
        self, monkeypatch, tmp_path, template_record
    ):
        cache = ResultCache(root=tmp_path / "chain")
        old_version = engine.CACHE_SCHEMA_VERSION
        cache.put("k", template_record)
        monkeypatch.setattr(engine, "CACHE_SCHEMA_VERSION", old_version + 2)

        @engine.register_schema_migration(old_version)
        def _one(payload):
            return {**payload, "schema": old_version + 1}

        assert cache.get("k") is None  # chain stops one short -> miss

        @engine.register_schema_migration(old_version + 1)
        def _two(payload):
            return {**payload, "schema": old_version + 2}

        assert cache.get("k") is not None  # full chain now reaches current

        # A migration that loops forever must be detected, not spin.
        @engine.register_schema_migration(old_version + 1)
        def _loop(payload):
            return {**payload, "schema": old_version}

        assert cache.get("k") is None


# ------------------------------------ engine regression: crash isolation


class TestSweepRunnerFaultIsolation:
    def test_unpicklable_result_fails_one_job_not_the_batch(self):
        poisoned = SimJob(
            benchmark="hmmer",
            max_instructions=30_000,
            probes=(UnpicklableProbe(),),
        )
        jobs = [_job(seed=1), poisoned, _job(seed=2)]
        records = SweepRunner(workers=2).run(jobs)
        assert [r.ok for r in records] == [True, False, True]
        assert records[1].result is None
        assert records[1].error
        # The failure is not memoised or persisted: resubmitting retries it.
        assert engine.memo_get(poisoned.key()) is None
        assert ResultCache().get(poisoned.key()) is None

    def test_crashed_worker_fails_one_job_rest_complete(self, crashing_job):
        jobs = [_job(seed=1), crashing_job("crash"), _job(seed=2), _job(seed=3)]
        records = SweepRunner(workers=2).run(jobs)
        assert len(records) == len(jobs)
        assert [r.ok for r in records] == [True, False, True, True]
        assert "BrokenProcessPool" in records[1].error

    def test_raising_job_fails_serially_too(self, crashing_job):
        jobs = [crashing_job("raise"), _job(seed=4)]
        records = SweepRunner(workers=1).run(jobs)
        assert [r.ok for r in records] == [False, True]
        assert "RuntimeError: injected fault" in records[0].error


# --------------------------------------------------------- the scheduler


def _counter(scheduler, name):
    return scheduler.registry.snapshot()["counters"].get(name, 0)


class TestFabricScheduler:
    def test_basic_batch_order_duplicates_and_events(self):
        jobs = [_job(seed=1), _job(seed=2), _job(seed=1)]
        scheduler = FabricScheduler(workers=1, retry=FAST)
        records = scheduler.run(jobs)
        assert [r.ok for r in records] == [True, True, True]
        assert records[0] is records[2]  # duplicates share one record
        assert [r.from_cache for r in records] == [False, False, False]
        statuses = [e.status for e in scheduler.events]
        assert statuses.count(JobStatus.QUEUED) == 2  # unique jobs only
        assert statuses.count(JobStatus.DONE) == 2
        assert statuses[0] is JobStatus.QUEUED
        done_counter = _counter(scheduler, "fabric_jobs{status=done}")
        assert done_counter == 2

    def test_warm_run_is_all_cached(self):
        jobs = [_job(seed=1), _job(seed=2)]
        FabricScheduler(workers=1, retry=FAST).run(jobs)
        engine.clear_memo()  # force the disk layer
        scheduler = FabricScheduler(workers=1, retry=FAST)
        records = scheduler.run(jobs)
        assert all(r.from_cache for r in records)
        assert _counter(scheduler, "fabric_jobs{status=cached}") == 2
        assert _counter(scheduler, "fabric_cache{event=hit}") == 2
        assert {e.status for e in scheduler.events} == {JobStatus.CACHED}

    def test_retry_success_after_one_crash(self, crashing_job):
        """Crash-once: the job's first worker dies, the retry lands."""
        jobs = [
            crashing_job("crash", once=True),
            _job(seed=11),
            _job(seed=12),
        ]
        scheduler = FabricScheduler(
            workers=2,
            retry=RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05),
        )
        records = scheduler.run(jobs)
        assert [r.ok for r in records] == [True, True, True]
        assert _counter(scheduler, "fabric_crashes") >= 1
        assert _counter(scheduler, "fabric_retries") >= 1
        assert _counter(scheduler, "fabric_pool_restarts") >= 1
        assert _counter(scheduler, "fabric_jobs{status=failed}") == 0

    def test_retry_exhaustion_yields_failed_record(self, crashing_job):
        scheduler = FabricScheduler(workers=1, retry=FAST)
        records = scheduler.run([crashing_job("raise"), _job(seed=13)])
        assert [r.ok for r in records] == [False, True]
        assert "RuntimeError: injected fault" in records[0].error
        assert records[0].result is None
        assert _counter(scheduler, "fabric_retries") == 1  # 2 attempts
        assert _counter(scheduler, "fabric_jobs{status=failed}") == 1
        failed_events = [
            e for e in scheduler.events if e.status is JobStatus.FAILED
        ]
        assert len(failed_events) == 1 and failed_events[0].attempt == 2

    @pytest.mark.timeout(120)
    def test_batch_survives_poison_worker(self, crashing_job):
        """Acceptance: job k of N crashes its worker on every attempt.

        The fabric returns N records — N-1 succeeded, 1 failed after the
        configured retries — and the metrics report the retry/failure
        counts.  ``shard_size=1`` serialises dispatch, confining each
        crash to its own job.
        """
        jobs = [
            _job(seed=21),
            _job(seed=22),
            crashing_job("crash"),  # job k: poisons its worker, always
            _job(seed=23),
        ]
        scheduler = FabricScheduler(workers=2, shard_size=1, retry=FAST)
        records = scheduler.run(jobs)
        assert len(records) == len(jobs)
        assert [r.ok for r in records] == [True, True, False, True]
        assert "worker pool broke" in records[2].error
        assert _counter(scheduler, "fabric_crashes") == FAST.max_attempts
        assert _counter(scheduler, "fabric_retries") == FAST.max_attempts - 1
        assert _counter(scheduler, "fabric_jobs{status=failed}") == 1
        assert _counter(scheduler, "fabric_jobs{status=done}") == 3

    @pytest.mark.timeout(90)
    def test_hang_times_out_and_batch_completes(self, crashing_job):
        """Hang-injection: the per-job timeout reclaims the stuck worker."""
        jobs = [crashing_job("hang"), _job(seed=31)]
        scheduler = FabricScheduler(
            workers=2,
            shard_size=1,
            job_timeout=1.5,
            retry=RetryPolicy(max_attempts=1),
        )
        records = scheduler.run(jobs)
        assert [r.ok for r in records] == [False, True]
        assert "TimeoutError" in records[0].error
        assert _counter(scheduler, "fabric_timeouts") == 1
        assert _counter(scheduler, "fabric_pool_restarts") >= 1

    @pytest.mark.timeout(90)
    def test_hang_timeout_then_retry_succeeds(self, crashing_job):
        """Hang-once: first attempt times out, the retry completes."""
        jobs = [crashing_job("hang", once=True)]
        scheduler = FabricScheduler(
            workers=2,
            job_timeout=1.5,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
        )
        records = scheduler.run(jobs)
        assert records[0].ok
        assert _counter(scheduler, "fabric_timeouts") == 1
        assert _counter(scheduler, "fabric_retries") == 1

    def test_degrades_to_serial_when_pool_unavailable(self, monkeypatch):
        def no_pool(self):
            self.available = False
            raise PoolUnavailable("injected: no subprocesses here")

        monkeypatch.setattr(RestartablePool, "_ensure", no_pool)
        scheduler = FabricScheduler(workers=4, retry=FAST)
        records = scheduler.run([_job(seed=41), _job(seed=42)])
        assert [r.ok for r in records] == [True, True]
        assert _counter(scheduler, "fabric_pool_unavailable") >= 1
        assert _counter(scheduler, "fabric_jobs{status=done}") == 2

    def test_unpicklable_jobs_run_in_process(self):
        def tweak(simulator):  # local closure: not picklable
            pass

        jobs = [
            SimJob(
                benchmark="hmmer",
                max_instructions=30_000,
                configure=tweak,
                cache_tag="fabric-noop-tweak",
            ),
            _job(),
        ]
        records = FabricScheduler(workers=2, retry=FAST).run(jobs)
        assert [r.ok for r in records] == [True, True]
        assert records[0].job_key != records[1].job_key  # tag salts the key
        # The closure can't travel to a pool worker; the job must have run
        # in-process — and, being a no-op, bit-identically to the plain one.
        assert records[0].result.to_dict() == records[1].result.to_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            FabricScheduler(workers=0)
        with pytest.raises(ValueError):
            FabricScheduler(shard_size=0)
        with pytest.raises(ValueError):
            FabricScheduler(job_timeout=0.0)


# ------------------------------------------------------------ equivalence


class TestFabricSweepRunnerEquivalence:
    """FabricScheduler must be bit-identical to SweepRunner.run."""

    PROFILES = ("hmmer", "msn", "bzip2")
    MODES = (GatingMode.FULL, GatingMode.POWERCHOP)

    def _matrix(self):
        return [
            _job(benchmark=name, mode=mode, budget=40_000)
            for name in self.PROFILES
            for mode in self.MODES
        ]

    def test_records_bit_identical_on_profile_mode_matrix(
        self, monkeypatch, tmp_path
    ):
        jobs = self._matrix()

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sweep"))
        engine.clear_memo()
        baseline = SweepRunner(workers=2).run(jobs)

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "fabric"))
        engine.clear_memo()
        fabric = FabricScheduler(workers=2, retry=FAST).run(jobs)

        assert [r.from_cache for r in fabric] == [
            r.from_cache for r in baseline
        ]
        assert [r.job_key for r in fabric] == [r.job_key for r in baseline]
        assert [r.result.to_dict() for r in fabric] == [
            r.result.to_dict() for r in baseline
        ], "fabric records must be bit-identical to SweepRunner's"
        assert [r.phase_log for r in fabric] == [
            r.phase_log for r in baseline
        ]

    def test_warm_cache_flags_match_too(self, monkeypatch, tmp_path):
        jobs = self._matrix()[:4]

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "warm"))
        engine.clear_memo()
        SweepRunner(workers=1).run(jobs)
        engine.clear_memo()
        baseline = SweepRunner(workers=1).run(jobs)  # all disk hits

        engine.clear_memo()
        fabric = FabricScheduler(workers=1, retry=FAST).run(jobs)
        assert all(r.from_cache for r in fabric)
        assert [r.from_cache for r in fabric] == [
            r.from_cache for r in baseline
        ]
        assert [r.result.to_dict() for r in fabric] == [
            r.result.to_dict() for r in baseline
        ]

    def test_sweep_cli_fabric_flag_matches_plain(self, monkeypatch, tmp_path, capsys):
        from repro.__main__ import main

        argv = ["sweep", "hmmer", "-m", "full", "-n", "40000", "--json"]
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-plain"))
        engine.clear_memo()
        assert main(argv) == 0
        plain = capsys.readouterr().out

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-fabric"))
        engine.clear_memo()
        assert main(argv + ["--fabric"]) == 0
        fabric = capsys.readouterr().out
        assert fabric == plain
