"""Smoke tests for the repository scripts."""

import runpy
import sys


class TestProfileSimulator:
    def test_throughput_helper(self):
        sys.path.insert(0, "scripts")
        try:
            import profile_simulator
        finally:
            sys.path.pop(0)
        from repro.sim.simulator import GatingMode

        rate = profile_simulator.throughput("hmmer", 100_000, GatingMode.FULL)
        assert rate > 10_000  # anything slower means the hot loop regressed

    def test_main_runs(self, monkeypatch, capsys):
        monkeypatch.setattr(
            sys, "argv", ["profile_simulator.py", "hmmer", "100000"]
        )
        runpy.run_path("scripts/profile_simulator.py", run_name="__main__")
        out = capsys.readouterr().out
        assert "guest-instructions/s" in out
        assert "powerchop" in out


class TestDeterminismLint:
    def _lint(self):
        sys.path.insert(0, "scripts")
        try:
            import lint_determinism
        finally:
            sys.path.pop(0)
        return lint_determinism

    def _codes(self, lint, source, tmp_path):
        bad = tmp_path / "case.py"
        bad.write_text(source)
        return [v[2] for v in lint.lint_file(bad)]

    def test_repo_is_clean(self, capsys):
        lint = self._lint()
        assert lint.main(["src/repro", "scripts"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_flags_unseeded_module_level_draws(self, tmp_path):
        lint = self._lint()
        assert self._codes(
            lint, "import random\nx = random.random()\n", tmp_path
        ) == ["D001"]
        assert self._codes(
            lint, "from random import shuffle\n", tmp_path
        ) == ["D001"]
        assert self._codes(
            lint, "import numpy as np\nx = np.random.rand(3)\n", tmp_path
        ) == ["D001"]

    def test_allows_seeded_generators(self, tmp_path):
        lint = self._lint()
        source = (
            "import random\nimport numpy as np\n"
            "rng = random.Random(7)\nx = rng.random()\n"
            "g = np.random.default_rng(7)\n"
        )
        assert self._codes(lint, source, tmp_path) == []

    def test_flags_unfrozen_spec_dataclasses(self, tmp_path):
        lint = self._lint()
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\nclass SimJob:\n    a: int = 0\n"
        )
        assert self._codes(lint, source, tmp_path) == ["D002"]
        frozen = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\nclass SimJob:\n    a: int = 0\n"
        )
        assert self._codes(lint, frozen, tmp_path) == []

    def test_flags_unfrozen_probe_subclasses(self, tmp_path):
        lint = self._lint()
        source = (
            "from dataclasses import dataclass\n"
            "from repro.sim.probes import ProbeSpec\n"
            "@dataclass\nclass MyProbe(ProbeSpec):\n    a: int = 0\n"
        )
        assert self._codes(lint, source, tmp_path) == ["D002"]

    def test_main_exits_nonzero_on_violation(self, tmp_path, capsys):
        lint = self._lint()
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.randint(0, 9)\n")
        assert lint.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "D001" in out and "bad.py" in out

    _RUN_LOOP = (
        "def my_loop(core, workload):\n"
        "    for block in workload.trace(100):\n"
        "        core.execute_block(block)\n"
    )

    def test_flags_run_loops_outside_backends(self, tmp_path):
        lint = self._lint()
        assert self._codes(lint, self._RUN_LOOP, tmp_path) == ["D003"]

    def test_allows_run_loops_inside_backends_package(self, tmp_path):
        lint = self._lint()
        pkg = tmp_path / "repro" / "sim" / "backends"
        pkg.mkdir(parents=True)
        inside = pkg / "custom.py"
        inside.write_text(self._RUN_LOOP)
        assert lint.lint_file(inside) == []

    def test_allows_readonly_trace_scans(self, tmp_path):
        lint = self._lint()
        scan = (
            "def count_blocks(workload):\n"
            "    n = 0\n"
            "    for block in workload.trace(100):\n"
            "        n += 1\n"
            "    return n\n"
        )
        assert self._codes(lint, scan, tmp_path) == []

    def _backend_codes(self, lint, source, tmp_path):
        """Lint ``source`` as if it lived in repro/sim/backends."""
        pkg = tmp_path / "repro" / "sim" / "backends"
        pkg.mkdir(parents=True, exist_ok=True)
        case = pkg / "case.py"
        case.write_text(source)
        return [v[2] for v in lint.lint_file(case)]

    def test_flags_direct_rng_draws_in_backends(self, tmp_path):
        lint = self._lint()
        assert self._backend_codes(
            lint, "def f(stream):\n    return stream._rng.getrandbits(30)\n",
            tmp_path,
        ) == ["D004"]
        assert self._backend_codes(
            lint, "def f(stream):\n    draw = stream._random\n", tmp_path
        ) == ["D004"]

    def test_rng_pragma_suppresses_d004(self, tmp_path):
        lint = self._lint()
        source = (
            "def f(stream):\n"
            "    draw = stream._random  # lint: rng-mirrored\n"
            "    bits = stream._rng.getrandbits  # lint: rng-mirrored\n"
        )
        assert self._backend_codes(lint, source, tmp_path) == []

    def test_d004_only_applies_inside_backends(self, tmp_path):
        lint = self._lint()
        outside = "def f(stream):\n    return stream._rng.getrandbits(30)\n"
        assert self._codes(lint, outside, tmp_path) == []

    def test_flags_mutable_default_arguments(self, tmp_path):
        lint = self._lint()
        assert self._codes(
            lint, "def f(xs=[]):\n    return xs\n", tmp_path
        ) == ["D005"]
        assert self._codes(
            lint, "def f(*, table=dict()):\n    return table\n", tmp_path
        ) == ["D005"]
        assert self._codes(
            lint, "g = lambda seen=set(): seen\n", tmp_path
        ) == ["D005"]

    def test_allows_immutable_defaults(self, tmp_path):
        lint = self._lint()
        source = (
            "def f(xs=(), name='x', n=0, table=None):\n"
            "    return xs, name, n, table\n"
        )
        assert self._codes(lint, source, tmp_path) == []


class TestGenerateExperimentsScript:
    def test_experiment_list_importable(self):
        sys.path.insert(0, "scripts")
        try:
            import generate_experiments_md as gen
        finally:
            sys.path.pop(0)
        ids = [eid for eid, _claim, _run in gen.EXPERIMENTS]
        assert len(ids) == len(set(ids))
        assert "fig12" in ids and "headline" in ids
        for _eid, claim, runner in gen.EXPERIMENTS:
            assert callable(runner)
            assert claim
