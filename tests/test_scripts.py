"""Smoke tests for the repository scripts."""

import runpy
import sys

import pytest


class TestProfileSimulator:
    def test_throughput_helper(self):
        sys.path.insert(0, "scripts")
        try:
            import profile_simulator
        finally:
            sys.path.pop(0)
        from repro.sim.simulator import GatingMode

        rate = profile_simulator.throughput("hmmer", 100_000, GatingMode.FULL)
        assert rate > 10_000  # anything slower means the hot loop regressed

    def test_main_runs(self, monkeypatch, capsys):
        monkeypatch.setattr(
            sys, "argv", ["profile_simulator.py", "hmmer", "100000"]
        )
        runpy.run_path("scripts/profile_simulator.py", run_name="__main__")
        out = capsys.readouterr().out
        assert "guest-instructions/s" in out
        assert "powerchop" in out


class TestGenerateExperimentsScript:
    def test_experiment_list_importable(self):
        sys.path.insert(0, "scripts")
        try:
            import generate_experiments_md as gen
        finally:
            sys.path.pop(0)
        ids = [eid for eid, _claim, _run in gen.EXPERIMENTS]
        assert len(ids) == len(set(ids))
        assert "fig12" in ids and "headline" in ids
        for _eid, claim, runner in gen.EXPERIMENTS:
            assert callable(runner)
            assert claim
