"""Regression tests for the region topology properties PowerChop needs.

Phase signatures are only stable if block execution frequencies are both
*skewed* (a hottest-N set exists) and *generically untied* (ranks do not
flip between windows).  These tests pin the RegionBuilder properties that
deliver that — the fixes behind the signature-stability work recorded in
DESIGN.md §4.
"""

import random
from collections import Counter

import pytest

from repro.isa.branches import GlobalHistory
from repro.workloads.generator import RegionBuilder
from repro.workloads.mixes import ALL_MIXES, PREDICTABLE


def build_region(mix, seed=0, n_blocks=32):
    rng = random.Random(seed)
    builder = RegionBuilder(rng, pc_base=0x400000)
    return builder.build(
        region_id=0,
        n_blocks=n_blocks,
        avg_block_size=12,
        mem_frac=0.3,
        store_frac=0.3,
        vector_frac=0.0,
        vector_style="none",
        branch_mix=dict(mix),
        bias=0.92,
    )


def visit_counts(region, n_steps=30_000):
    history = GlobalHistory()
    counts = Counter()
    idx = region.entry
    for _ in range(n_steps):
        block = region.blocks[idx]
        counts[idx] += 1
        idx, _taken = block.next_block(history)
    return counts


@pytest.mark.parametrize("mix_name", sorted(ALL_MIXES))
def test_frequencies_are_skewed(mix_name):
    """The hottest blocks must clearly dominate (90/10-style skew)."""
    region = build_region(ALL_MIXES[mix_name], seed=3)
    counts = visit_counts(region)
    ordered = [c for _i, c in counts.most_common()]
    top_quarter = sum(ordered[: max(1, len(ordered) // 4)])
    assert top_quarter / sum(ordered) > 0.45


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_hot_set_stable_across_windows(seed):
    """The identity of the hottest blocks must not flip window to window."""
    region = build_region(PREDICTABLE, seed=seed)
    history = GlobalHistory()
    idx = region.entry
    windows = []
    for _window in range(6):
        counts = Counter()
        for _ in range(5_000):
            block = region.blocks[idx]
            counts[idx] += block.n_instr
            idx, _taken = block.next_block(history)
        windows.append({i for i, _c in counts.most_common(4)})
    # Skip the first (warmup) window; the rest must agree on a core of at
    # least 2 of the 4 hottest blocks.  (Single-slot wobble is expected —
    # the CDE's signature-variant inheritance absorbs it, DESIGN.md §4 —
    # but a wholesale reshuffle would defeat phase recognition.)
    reference = windows[1]
    for window in windows[2:]:
        assert len(window & reference) >= 2, (reference, windows)


def test_all_blocks_reachable_or_dead_is_bounded():
    """Skew must not degenerate into almost all of the region being dead."""
    region = build_region(PREDICTABLE, seed=9)
    counts = visit_counts(region)
    visited = sum(1 for count in counts.values() if count > 0)
    # Kernel-dominated seeds legitimately concentrate execution in a few
    # blocks (exactly the 90/10 skew signatures rely on), but enough
    # distinct blocks must stay live to form a 4-translation signature.
    assert visited >= 4
