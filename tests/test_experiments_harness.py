"""Tests for the experiment harness (small-scale, fast variants)."""

import pytest

from repro.experiments import common
from repro.experiments.common import (
    ExperimentResult,
    instructions_for,
    run_cached,
)
from repro.experiments import fig01_vpu_phases, fig15_vector_prevalence
from repro.experiments import table1_designs, table_hwcost
from repro.sim.simulator import GatingMode
from repro.uarch.config import MOBILE, SERVER


@pytest.fixture(autouse=True)
def small_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.05")
    common.clear_cache()
    yield
    common.clear_cache()


class TestCommon:
    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert common.scale() == 0.5
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ValueError):
            common.scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            common.scale()

    def test_instructions_for_designs(self):
        assert instructions_for(MOBILE) > instructions_for(SERVER)
        assert instructions_for(SERVER, fraction=0.5) <= instructions_for(SERVER)
        assert instructions_for(SERVER) >= 200_000  # floor

    def test_run_cached_memoises(self):
        first, _ = run_cached("hmmer", GatingMode.FULL)
        second, _ = run_cached("hmmer", GatingMode.FULL)
        assert first is second

    def test_run_cached_distinguishes_modes(self):
        full, _ = run_cached("hmmer", GatingMode.FULL)
        chopped, _ = run_cached("hmmer", GatingMode.POWERCHOP)
        assert full is not chopped
        assert chopped.mode == "powerchop"

    def test_powerchop_runs_collect_phase_log(self):
        _result, phase_log = run_cached("hmmer", GatingMode.POWERCHOP)
        assert phase_log  # vectors collected for the Fig. 8 analysis

    def test_managed_units_key(self):
        vpu_only, _ = run_cached(
            "hmmer", GatingMode.POWERCHOP, managed_units=("vpu",)
        )
        all_units, _ = run_cached("hmmer", GatingMode.POWERCHOP)
        assert vpu_only is not all_units
        assert all_units.energy.bpu_gated_frac >= vpu_only.energy.bpu_gated_frac


class TestExperimentResult:
    def test_render_table(self):
        result = ExperimentResult(
            experiment_id="x",
            title="demo",
            headers=("a", "b"),
            rows=[(1, 2)],
            summary={"k": 1.0},
            notes=["hello"],
        )
        text = result.render()
        assert "== x: demo ==" in text
        assert "note: hello" in text
        assert "k=1" in text

    def test_render_bars(self):
        result = ExperimentResult(
            experiment_id="y",
            title="bars",
            bars=(("p", "q"), (0.5, 1.0), "u"),
        )
        assert "#" in result.render()


class TestLightExperiments:
    def test_fig01(self):
        result = fig01_vpu_phases.run(max_instructions=200_000)
        assert result.experiment_id == "fig01"
        assert result.summary["shards"] > 0

    def test_fig15(self):
        result = fig15_vector_prevalence.run(benchmarks=["namd", "milc"])
        rows = {r[0]: r for r in result.rows}
        assert set(rows) == {"namd", "milc"}

    def test_table1(self):
        result = table1_designs.run()
        assert any("1024KB 8-way" in str(row) for row in result.rows)

    def test_hwcost(self):
        result = table_hwcost.run()
        assert result.summary["pvt_storage_bytes"] == 264
