"""Tests for the binary translation subsystem."""

import random

import pytest

from repro.bt.interpreter import Interpreter
from repro.bt.nucleus import Nucleus
from repro.bt.region_cache import RegionCache, Translation
from repro.bt.runtime import BTRuntime, ExecMode
from repro.bt.translator import Translator, likely_taken
from repro.isa.branches import (
    BiasedBranch,
    GlobalCorrelatedBranch,
    LoopBranch,
    PatternBranch,
    RandomBranch,
)
from repro.uarch.config import SERVER
from repro.workloads.generator import RegionBuilder
from repro.workloads.mixes import PREDICTABLE
from repro.workloads.profiles import build_workload


def make_region(seed=0, n_blocks=10):
    rng = random.Random(seed)
    builder = RegionBuilder(rng, pc_base=0x400000)
    return builder.build(
        region_id=0,
        n_blocks=n_blocks,
        avg_block_size=10,
        mem_frac=0.3,
        store_frac=0.3,
        vector_frac=0.0,
        vector_style="none",
        branch_mix=dict(PREDICTABLE),
        bias=0.92,
    )


class TestInterpreter:
    def test_hotness_threshold(self):
        interp = Interpreter(hot_threshold=3)
        assert interp.note_execution(0x10, 5) is False
        assert interp.note_execution(0x10, 5) is False
        assert interp.note_execution(0x10, 5) is True  # just got hot
        assert interp.note_execution(0x10, 5) is False  # only fires once

    def test_counts_instructions(self):
        interp = Interpreter(2)
        interp.note_execution(0x10, 7)
        interp.note_execution(0x20, 3)
        assert interp.interpreted_instructions == 10
        assert interp.interpreted_blocks == 2

    def test_forget(self):
        interp = Interpreter(2)
        interp.note_execution(0x10, 1)
        interp.forget(0x10)
        assert interp.execution_count(0x10) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Interpreter(0)


class TestTranslator:
    def test_likely_taken_heuristics(self):
        assert likely_taken(LoopBranch(8)) is True
        assert likely_taken(BiasedBranch(0.9)) is True
        assert likely_taken(BiasedBranch(0.1)) is False
        assert likely_taken(RandomBranch()) is False
        assert likely_taken(GlobalCorrelatedBranch()) is False
        assert likely_taken(PatternBranch([True, True, False])) is True
        assert likely_taken(PatternBranch([True, False, False])) is False

    def test_translation_covers_path(self):
        region = make_region()
        translator = Translator(max_blocks=3)
        translation = translator.translate(region, region.blocks[region.entry])
        assert 1 <= translation.n_blocks <= 3
        assert translation.head_pc == region.blocks[region.entry].pc
        assert translation.n_instr > 0

    def test_translation_stops_at_loop(self):
        region = make_region(seed=2)
        translator = Translator(max_blocks=50)
        translation = translator.translate(region, region.blocks[0])
        assert len(set(translation.block_pcs)) == len(translation.block_pcs)

    def test_tid_is_lower_32_bits(self):
        translation = Translation(0x1_2345_6789, (0x1_2345_6789,), 10, 0, 0)
        assert translation.tid == 0x2345_6789


class TestRegionCache:
    def test_lookup_and_stats(self):
        cache = RegionCache()
        translation = Translation(0x100, (0x100,), 5, 0, 0)
        assert cache.lookup(0x100) is None
        cache.insert(translation)
        assert cache.lookup(0x100) is translation
        assert cache.stats.hits == 1
        assert cache.stats.lookups == 2
        assert 0x100 in cache
        assert len(cache) == 1


class TestNucleus:
    def test_dispatch_and_cost(self):
        nucleus = Nucleus()
        nucleus.register("tick", lambda x: x * 2.0, entry_cost_cycles=100)
        assert nucleus.raise_interrupt("tick", 5) == 110
        assert nucleus.counts["tick"] == 1
        assert nucleus.cycles == 110

    def test_unknown_kind(self):
        nucleus = Nucleus()
        with pytest.raises(KeyError):
            nucleus.raise_interrupt("nmi")

    def test_negative_cost_rejected(self):
        nucleus = Nucleus()
        with pytest.raises(ValueError):
            nucleus.register("x", lambda: 0.0, -1)


class TestBTRuntime:
    def _runtime_and_trace(self, tiny_profile, n_instructions=60_000):
        workload = build_workload(tiny_profile)
        regions = {
            p.region.region_id: p.region for p in workload.phases.values()
        }
        runtime = BTRuntime(SERVER, regions)
        return runtime, workload.trace(n_instructions)

    def test_cold_code_interpreted_then_translated(self, tiny_profile):
        runtime, trace = self._runtime_and_trace(tiny_profile)
        modes = []
        for block_exec in trace:
            mode, _cycles, _entered = runtime.on_block(block_exec.block)
            modes.append(mode)
        assert modes[0] is ExecMode.INTERPRETED
        assert modes[-1] is ExecMode.TRANSLATED
        translated_frac = modes.count(ExecMode.TRANSLATED) / len(modes)
        assert translated_frac > 0.9  # hot code runs from the region cache

    def test_translation_cost_charged_once_per_translation(self, tiny_profile):
        runtime, trace = self._runtime_and_trace(tiny_profile)
        charges = 0
        for block_exec in trace:
            _mode, cycles, _entered = runtime.on_block(block_exec.block)
            if cycles:
                charges += 1
        assert charges == runtime.translator.translations_built

    def test_entries_reported(self, tiny_profile):
        runtime, trace = self._runtime_and_trace(tiny_profile)
        entries = 0
        for block_exec in trace:
            _mode, _cycles, entered = runtime.on_block(block_exec.block)
            if entered is not None:
                entries += 1
        assert entries > 100  # plenty of translation executions
