"""Tests for the power models: CACTI-lite, McPAT-lite, gating, accounting."""

import pytest

from repro.power.accounting import EnergyAccounting
from repro.power.cacti import estimate_sram, htb_cost, pvt_cost
from repro.power.gating import GatingOverheadModel
from repro.power.mcpat import CorePowerModel
from repro.uarch.config import MOBILE, SERVER
from repro.uarch.core import CoreModel


class TestCacti:
    def test_monotone_in_size(self):
        small = estimate_sram(256)
        large = estimate_sram(4096)
        assert large.area_mm2 > small.area_mm2
        assert large.leakage_w > small.leakage_w
        assert large.read_energy_pj > small.read_energy_pj

    def test_cam_premium(self):
        ram = estimate_sram(1024, fully_associative=False)
        cam = estimate_sram(1024, fully_associative=True)
        assert cam.leakage_w > ram.leakage_w

    def test_htb_cost_in_paper_regime(self):
        est = htb_cost()
        # Paper: ~0.027 W and ~0.008 mm^2; we require the same magnitude.
        assert 0.005 < est.total_power_w < 0.08
        assert 0.002 < est.area_mm2 < 0.05

    def test_pvt_smaller_than_htb(self):
        assert pvt_cost().area_mm2 < htb_cost().area_mm2

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_sram(0)


class TestMcPAT:
    def test_leakage_tracks_area_fractions(self):
        model = CorePowerModel(SERVER)
        assert model.mlc.leakage_w == pytest.approx(0.35 * SERVER.core_leakage_w)
        assert model.vpu.leakage_w == pytest.approx(0.20 * SERVER.core_leakage_w)
        assert model.bpu.leakage_w == pytest.approx(0.04 * SERVER.core_leakage_w)
        total = (
            model.mlc.leakage_w
            + model.vpu.leakage_w
            + model.bpu.leakage_w
            + model.other_leakage_w
        )
        assert total == pytest.approx(SERVER.core_leakage_w)

    def test_gated_leakage_is_five_percent(self):
        model = CorePowerModel(SERVER)
        assert model.vpu_leakage_w(False) == pytest.approx(
            0.05 * model.vpu.leakage_w
        )
        assert model.bpu_leakage_w(False) == pytest.approx(
            0.05 * model.bpu.leakage_w
        )

    def test_mlc_way_leakage_interpolates(self):
        model = CorePowerModel(SERVER)
        full = model.mlc_leakage_w(8)
        half = model.mlc_leakage_w(4)
        one = model.mlc_leakage_w(1)
        assert full == pytest.approx(model.mlc.leakage_w)
        assert one < half < full
        assert one > 0.05 * full  # one way still fully powered

    def test_access_energy_scales_with_ways(self):
        model = CorePowerModel(SERVER)
        assert model.mlc_access_energy_j(1) < model.mlc_access_energy_j(8)

    def test_small_bpu_lookup_cheaper(self):
        model = CorePowerModel(SERVER)
        assert model.bpu_lookup_energy_j(False) < model.bpu_lookup_energy_j(True)

    def test_unknown_unit(self):
        model = CorePowerModel(SERVER)
        with pytest.raises(KeyError):
            model.unit_peak_dynamic_w("fpu")


class TestGatingOverhead:
    def test_eq1_shape(self):
        model = CorePowerModel(SERVER)
        gating = GatingOverheadModel(SERVER, model)
        expected = (
            2.0 * 0.20 * gating.cycle_energy_j("vpu") * SERVER.switching_factor
        )
        assert gating.switch_energy_j("vpu") == pytest.approx(expected)

    def test_mlc_costs_more_than_bpu(self):
        model = CorePowerModel(SERVER)
        gating = GatingOverheadModel(SERVER, model)
        assert gating.switch_energy_j("mlc") > gating.switch_energy_j("bpu")

    def test_latencies_from_design(self):
        gating = GatingOverheadModel(SERVER, CorePowerModel(SERVER))
        assert gating.switch_latency_cycles("mlc") == 50
        assert gating.switch_latency_cycles("vpu") == 30
        assert gating.switch_latency_cycles("bpu") == 20
        with pytest.raises(KeyError):
            gating.switch_latency_cycles("l1")


class TestAccounting:
    def test_full_power_run_leaks_at_core_rate(self):
        core = CoreModel(SERVER)
        accountant = EnergyAccounting(SERVER, core)
        report = accountant.finalize(1e6)
        assert report.avg_leakage_w == pytest.approx(SERVER.core_leakage_w, rel=1e-6)
        assert report.vpu_on_frac == 1.0
        assert report.mlc_way_residency == {8: 1.0}

    def test_gated_run_leaks_less(self):
        core = CoreModel(SERVER)
        core.apply_vpu_state(False)
        core.apply_bpu_state(False)
        core.apply_mlc_state(1)
        accountant = EnergyAccounting(SERVER, core)
        report = accountant.finalize(1e6)
        assert report.avg_leakage_w < SERVER.core_leakage_w * 0.7
        assert report.vpu_gated_frac == 1.0
        assert report.mlc_gated_frac(8) == 1.0

    def test_switch_segments_split_residency(self):
        core = CoreModel(SERVER)
        accountant = EnergyAccounting(SERVER, core)
        core.apply_vpu_state(False)
        accountant.on_switch("vpu", False, 400_000.0)
        report = accountant.finalize(1_000_000.0)
        assert report.vpu_on_frac == pytest.approx(0.4)
        assert report.switch_counts["vpu"] == 1
        assert report.switch_overhead_j > 0

    def test_dynamic_energy_attribution(self):
        core = CoreModel(SERVER)
        accountant = EnergyAccounting(SERVER, core)
        core.vpu.execute(100)
        core.counters.micro_ops += 1000
        for i in range(50):
            core.hierarchy.mlc.access(i * 64)
        for i in range(50):
            core.bpu.predict_and_update(0x10, True)
        report = accountant.finalize(10_000.0)
        assert report.unit_dynamic_j["vpu"] > 0
        assert report.unit_dynamic_j["mlc"] > 0
        assert report.unit_dynamic_j["bpu"] > 0
        assert report.unit_dynamic_j["other"] > 0

    def test_finalize_twice_rejected(self):
        core = CoreModel(SERVER)
        accountant = EnergyAccounting(SERVER, core)
        accountant.finalize(100.0)
        with pytest.raises(RuntimeError):
            accountant.finalize(200.0)

    def test_unknown_unit_switch(self):
        accountant = EnergyAccounting(SERVER, CoreModel(SERVER))
        with pytest.raises(KeyError):
            accountant.on_switch("l1", True, 0.0)

    def test_mobile_budget_smaller(self):
        mobile_report = EnergyAccounting(MOBILE, CoreModel(MOBILE)).finalize(1e6)
        server_report = EnergyAccounting(SERVER, CoreModel(SERVER)).finalize(1e6)
        assert mobile_report.avg_leakage_w < server_report.avg_leakage_w
