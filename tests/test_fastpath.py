"""Fast-path equivalence: run_fast must be bit-identical to the reference.

The steady-phase fast path (:mod:`repro.sim.fastpath`) promises *exact*
equivalence with the reference execution loop — every
:class:`SimulationResult` field, every ``extra`` entry, the metrics
snapshot, and the full ``obs_level="full"`` event stream.  Tier-1 proves
it on five profiles across all four gating modes; the exhaustive
29-profile sweep lives behind the slow marker.
"""

import pytest

from repro.core.config import PowerChopConfig
from repro.isa.branches import LoopBranch, StaticBranch
from repro.isa.instructions import InstructionMix
from repro.isa.blocks import BasicBlock, CodeRegion
from repro.sim.engine import SimJob
from repro.sim.fastpath import FastPathState
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import design_for_suite
from repro.workloads.generator import MemoryBehavior, PhaseSpec, SyntheticWorkload
from repro.workloads.profiles import build_workload
from repro.workloads.suites import ALL_BENCHMARKS, get_profile

#: Same sampling as tests/test_obs_identity.py: one profile per suite
#: family, exercising distinct unit behaviours.
SAMPLED_PROFILES = ("bzip2", "milc", "blackscholes", "google", "libquantum")

_QUICK = PowerChopConfig(window_size=100, warmup_windows=1)

ALL_MODES = (
    GatingMode.FULL,
    GatingMode.MINIMAL,
    GatingMode.POWERCHOP,
    GatingMode.TIMEOUT,
)


def _run(name, mode, fastpath, obs_level="off", seed=7, max_instructions=120_000):
    profile = get_profile(name)
    simulator = HybridSimulator(
        design_for_suite(profile.suite),
        build_workload(profile, seed),
        mode,
        powerchop_config=_QUICK if mode is GatingMode.POWERCHOP else None,
        obs_level=obs_level,
        fastpath=fastpath,
    )
    result = simulator.run(max_instructions)
    return simulator, result


def _events(simulator):
    return [(e.ts, e.kind, repr(e.payload)) for e in simulator.tracer.events()]


def _assert_identical(name, mode, obs_level="off", max_instructions=120_000):
    ref_sim, ref = _run(name, mode, False, obs_level, max_instructions=max_instructions)
    fast_sim, fast = _run(name, mode, True, obs_level, max_instructions=max_instructions)
    assert ref.to_dict() == fast.to_dict(), f"{name}/{mode.value} result diverged"
    assert _events(ref_sim) == _events(fast_sim), f"{name}/{mode.value} events diverged"


# ------------------------------------------------------------ tier-1 matrix


@pytest.mark.parametrize("profile_name", SAMPLED_PROFILES)
@pytest.mark.parametrize("mode", ALL_MODES)
def test_fastpath_bit_identical(profile_name, mode):
    _assert_identical(profile_name, mode)


@pytest.mark.parametrize("profile_name", SAMPLED_PROFILES)
def test_fastpath_event_stream_identical_full_obs(profile_name):
    """obs_level="full": same results AND the same typed event stream."""
    _assert_identical(profile_name, GatingMode.POWERCHOP, obs_level="full")


def test_fastpath_metrics_identical():
    """obs_level="metrics": the registry snapshot matches exactly."""
    _ref_sim, ref = _run("bzip2", GatingMode.POWERCHOP, False, "metrics")
    _fast_sim, fast = _run("bzip2", GatingMode.POWERCHOP, True, "metrics")
    assert ref.to_dict() == fast.to_dict()
    assert ref.metrics == fast.metrics


# --------------------------------------------------------- exhaustive sweep


@pytest.mark.slow
@pytest.mark.parametrize("profile_name", [p.name for p in ALL_BENCHMARKS])
@pytest.mark.parametrize("mode", ALL_MODES)
def test_fastpath_bit_identical_all_profiles(profile_name, mode):
    _assert_identical(profile_name, mode, max_instructions=200_000)


# ------------------------------------------------------------- unit pieces


def _single_phase_workload(random_frac):
    mix = InstructionMix(scalar=5, vector=0, loads=3, stores=1, has_branch=True)
    blocks = []
    for i in range(4):
        pc = 0x1000 + i * 0x40
        branch = StaticBranch(pc=pc + (mix.total - 1) * 4, model=LoopBranch(16))
        blocks.append(
            BasicBlock(pc, mix, branch, taken_succ=(i + 1) % 4, fall_succ=(i + 1) % 4)
        )
    region = CodeRegion(0, blocks)
    behavior = MemoryBehavior(
        working_set_kb=1.0, pattern="loop", stride=8, random_frac=random_frac
    )
    phase = PhaseSpec("only", region, behavior)
    return SyntheticWorkload("unit", "spec", [phase], [("only", 64)], seed=3)


def test_random_frac_streams_never_replay_blocks():
    """random_frac > 0 must take the per-access path (RNG draws consumed)."""
    design = design_for_suite("spec")
    sim = HybridSimulator(design, _single_phase_workload(0.3), GatingMode.FULL)
    sim.run(50_000)
    assert sim.fastpath_state.blocks_replayed == 0
    assert sim.fastpath_state.accesses_elided == 0


def test_deterministic_loop_replays_blocks():
    """A tiny deterministic loop working set reaches the replay path."""
    design = design_for_suite("spec")
    fast_sim = HybridSimulator(design, _single_phase_workload(0.0), GatingMode.FULL)
    fast_result = fast_sim.run(50_000)
    assert fast_sim.fastpath_state.blocks_replayed > 0
    assert fast_sim.fastpath_state.accesses_elided > 0
    # ... and the replayed run still matches the reference bit-for-bit.
    ref_sim = HybridSimulator(
        design, _single_phase_workload(0.0), GatingMode.FULL, fastpath=False
    )
    assert ref_sim.run(50_000).to_dict() == fast_result.to_dict()


def test_invalidation_hooks_clear_streaks():
    state = FastPathState()
    state.streaks[0x1000] = 7
    state.note_gating("vpu")
    assert state.streaks == {} and state.invalidations == 1
    state.streaks[0x1000] = 7
    state.note_window()
    assert state.streaks == {} and state.window_resets == 1
    state.streaks[0x1000] = 7
    state.note_policy_action()
    assert state.streaks == {} and state.policy_resets == 1


def test_gating_transitions_notify_listener():
    design = design_for_suite("spec")
    sim = HybridSimulator(design, _single_phase_workload(0.0), GatingMode.FULL)
    before = sim.fastpath_state.invalidations
    sim.core.apply_vpu_state(False)
    sim.core.apply_bpu_state(False)
    sim.core.apply_mlc_state(1)
    assert sim.fastpath_state.invalidations == before + 3


def test_simjob_fastpath_excluded_from_cache_key():
    """Both settings are bit-identical, so they may share cache entries."""
    on = SimJob(benchmark="bzip2", fastpath=True)
    off = SimJob(benchmark="bzip2", fastpath=False)
    assert on.key() == off.key()


def test_fastpath_disabled_uses_reference_loop():
    design = design_for_suite("spec")
    sim = HybridSimulator(
        design, _single_phase_workload(0.0), GatingMode.FULL, fastpath=False
    )
    assert sim.fastpath_state is None
    assert sim.core.fastpath_listener is None
    sim.run(10_000)  # runs the reference loop without error
