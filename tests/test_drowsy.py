"""Tests for the drowsy-cache baseline (related-work comparison)."""

import pytest

from repro.uarch.cache.drowsy import (
    DROWSY_LEAKAGE_FRAC,
    DrowsyMLCController,
    DrowsySetAssocCache,
)


def make_cache():
    return DrowsySetAssocCache(4, 4, 64, "d")


class TestDrowsyCache:
    def test_access_wakes_drowsy_line(self):
        cache = make_cache()
        cache.access_timed(0x0, 0.0)
        cache.drowse_all(100.0)
        assert cache.drowsy_count == 1
        assert cache.access_timed(0x0, 200.0) is True
        assert cache.wakes == 1
        assert cache.drowsy_count == 0

    def test_drowse_all_counts_resident_lines(self):
        cache = make_cache()
        for i in range(5):
            cache.access_timed(i * 64, float(i))
        assert cache.drowse_all(10.0) == 5
        assert cache.drowse_all(11.0) == 0  # already drowsy

    def test_eviction_of_drowsy_line_updates_count(self):
        cache = DrowsySetAssocCache(0.125, 1, 64, "dm")  # 2 sets, 1 way
        stride = cache.n_sets * 64
        cache.access_timed(0x0, 0.0)
        cache.drowse_all(1.0)
        cache.access_timed(stride, 2.0)  # evicts the drowsy line
        assert cache.drowsy_count == 0

    def test_drowsy_fraction_integral(self):
        cache = make_cache()
        cache.access_timed(0x0, 0.0)
        cache.drowse_all(0.0)
        # One resident drowsy line plus 63 invalid lines (held at retention
        # voltage): the whole array sits drowsy for all 1000 cycles.
        assert cache.drowsy_fraction(1000.0) == pytest.approx(1.0)

    def test_awake_resident_lines_reduce_fraction(self):
        cache = make_cache()
        capacity = cache.n_sets * cache.assoc
        for i in range(capacity):  # fill completely, all awake
            cache.access_timed(i * 64, 0.0)
        frac = cache.drowsy_fraction(1000.0)
        assert frac == pytest.approx(0.0, abs=0.01)

    def test_hits_and_misses_still_tracked(self):
        cache = make_cache()
        assert cache.access_timed(0x0, 0.0) is False
        assert cache.access_timed(0x0, 1.0) is True
        assert (cache.hits, cache.misses) == (1, 1)


class TestDrowsyController:
    def test_periodic_drowse(self):
        cache = make_cache()
        controller = DrowsyMLCController(cache, interval_cycles=100.0)
        cache.access_timed(0x0, 0.0)
        controller.tick(50.0)
        assert controller.drowse_events == 0
        controller.tick(150.0)
        assert controller.drowse_events == 1
        assert cache.drowsy_count == 1

    def test_leakage_factor_between_floor_and_one(self):
        cache = make_cache()
        controller = DrowsyMLCController(cache, 10.0)
        for i in range(100):
            cache.access_timed((i % 32) * 64, float(i * 10))
            controller.tick(float(i * 10))
        factor = controller.mlc_leakage_factor(1000.0)
        assert DROWSY_LEAKAGE_FRAC <= factor <= 1.0

    def test_wake_stalls(self):
        cache = make_cache()
        controller = DrowsyMLCController(cache, 10.0)
        cache.access_timed(0x0, 0.0)
        cache.drowse_all(1.0)
        cache.access_timed(0x0, 2.0)
        assert controller.wake_stall_cycles() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DrowsyMLCController(make_cache(), 0.0)


class TestDrowsyExperiment:
    def test_smoke(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        from repro.experiments import common, table_drowsy

        common.clear_cache()
        result = table_drowsy.run(benchmarks=("hmmer",))
        assert len(result.rows) == 1
        saved = float(result.rows[0][1].rstrip("%")) / 100
        assert 0.0 <= saved <= 1.0 - DROWSY_LEAKAGE_FRAC + 0.01
        common.clear_cache()
