"""Tests for the gateable branch unit and the BTB."""

import pytest

from repro.uarch.branch.btb import BranchTargetBuffer
from repro.uarch.branch.unit import BranchUnit


class TestBTB:
    def test_hit_after_insert(self):
        btb = BranchTargetBuffer(8)
        assert btb.lookup(0x100) is False
        btb.insert(0x100)
        assert btb.lookup(0x100) is True

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(2)
        btb.insert(0x1)
        btb.insert(0x2)
        btb.lookup(0x1)  # refresh
        btb.insert(0x3)  # evicts 0x2
        assert btb.lookup(0x2) is False
        assert btb.lookup(0x1) is True

    def test_capacity_bound(self):
        btb = BranchTargetBuffer(4)
        for pc in range(100):
            btb.insert(pc)
        assert len(btb) == 4

    def test_flush(self):
        btb = BranchTargetBuffer(4)
        btb.insert(0x1)
        btb.flush()
        assert len(btb) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(0)


class TestBranchUnit:
    def _unit(self):
        return BranchUnit(
            large_local_entries=128,
            large_local_hist_bits=8,
            large_global_hist_bits=8,
            large_global_counters=1024,
            large_chooser_entries=256,
            large_btb_entries=64,
            small_local_entries=32,
            small_local_hist_bits=4,
            small_btb_entries=16,
        )

    def test_counts_lookups_and_mispredicts(self):
        unit = self._unit()
        for i in range(100):
            unit.predict_and_update(0x10, i % 2 == 0)
        assert unit.lookups == 100
        assert 0 < unit.mispredicts <= 100

    def test_gate_off_loses_large_state(self):
        unit = self._unit()
        for i in range(2000):
            unit.predict_and_update(0x10, i % 2 == 0)
        unit.gate_off()
        assert unit.large_on is False
        assert unit.large.global_pred.ghr == 0
        assert len(unit.large_btb) == 0

    def test_gate_off_idempotent(self):
        unit = self._unit()
        unit.gate_off()
        unit.gate_off()
        unit.gate_on()
        assert unit.large_on is True

    def test_small_predictor_always_trains(self):
        unit = self._unit()
        # Train alternation while gated ON; the small side must also learn.
        for i in range(3000):
            unit.predict_and_update(0x20, i % 2 == 0)
        unit.gate_off()
        misses = 0
        for i in range(3000, 3200):
            mispred, _ = unit.predict_and_update(0x20, i % 2 == 0)
            misses += mispred
        assert misses / 200 < 0.1  # small local handles alternation

    def test_force_small_routes_without_state_loss(self):
        unit = self._unit()
        for i in range(1000):
            unit.predict_and_update(0x30, i % 2 == 0)
        ghr_before = unit.large.global_pred.ghr
        unit.force_small = True
        unit.predict_and_update(0x30, True)
        # Large side kept training (GHR advanced), nothing was flushed.
        assert unit.large.global_pred.ghr != ghr_before or unit.large_on
        assert len(unit.large_btb) > 0

    def test_btb_redirect_on_taken_miss(self):
        unit = self._unit()
        _mispred, redirect = unit.predict_and_update(0x40, True)
        assert redirect is True
        unit.predict_and_update(0x40, True)
        _mispred, redirect = unit.predict_and_update(0x40, True)
        assert redirect is False

    def test_gated_storage_positive(self):
        unit = self._unit()
        assert unit.gated_storage_bits > 0
