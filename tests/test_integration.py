"""Cross-module integration tests exercising the paper's key claims
(scaled down to test-size runs)."""

import pytest

from repro.core.config import PowerChopConfig
from repro.sim.results import leakage_reduction, power_reduction, slowdown
from repro.sim.simulator import GatingMode, run_simulation
from repro.uarch.config import MOBILE, SERVER
from repro.workloads.generator import MemoryBehavior
from repro.workloads.mixes import NOISY, PREDICTABLE
from repro.workloads.profiles import (
    BenchmarkProfile,
    PhaseDecl,
    RegionSpec,
)

N = 600_000
CONFIG = PowerChopConfig(window_size=400, warmup_windows=3)


def run(profile, mode, design=SERVER, n=N):
    config = CONFIG if mode is GatingMode.POWERCHOP else None
    return run_simulation(
        design, profile, mode, max_instructions=n, powerchop_config=config
    )


@pytest.fixture(scope="module")
def scalar_profile():
    """No vector work, near-perfectly biased branches (no loop patterns a
    big predictor could exploit), L1-resident data: everything should be
    gateable with negligible slowdown."""
    return BenchmarkProfile(
        name="all-noncritical",
        suite="test",
        phases=(
            PhaseDecl(
                name="spin",
                region=RegionSpec(n_blocks=10, branch_mix={"biased": 1.0}, bias=0.99),
                memory=MemoryBehavior(working_set_kb=8, pattern="loop"),
                blocks=30_000,
            ),
        ),
        schedule=("spin",),
        seed=11,
    )


@pytest.fixture(scope="module")
def critical_profile():
    """Dense vector + MLC-resident random working set + noisy branches:
    the VPU and MLC must stay on."""
    return BenchmarkProfile(
        name="all-critical",
        suite="test",
        phases=(
            PhaseDecl(
                name="kernel",
                region=RegionSpec(
                    n_blocks=10,
                    branch_mix=NOISY,
                    vector_frac=0.25,
                    vector_style="dense",
                    mem_frac=0.35,
                ),
                memory=MemoryBehavior(working_set_kb=400, pattern="random"),
                blocks=30_000,
            ),
        ),
        schedule=("kernel",),
        seed=12,
    )


class TestGatingDecisions:
    def test_noncritical_workload_fully_gated(self, scalar_profile):
        result = run(scalar_profile, GatingMode.POWERCHOP)
        energy = result.energy
        # Gated for everything past the warmup/profiling prologue (which is
        # a large fraction of a test-sized run).
        assert energy.vpu_gated_frac > 0.6
        assert energy.bpu_gated_frac > 0.4
        assert energy.mlc_gated_frac(SERVER.mlc_assoc) > 0.6

    def test_noncritical_gating_nearly_free(self, scalar_profile):
        full = run(scalar_profile, GatingMode.FULL)
        chopped = run(scalar_profile, GatingMode.POWERCHOP)
        # One-time warmup/CDE costs dominate a 600K-instruction run; the
        # steady-state cost is far lower (see benchmarks/fig12).
        assert slowdown(full, chopped) < 0.15
        assert leakage_reduction(full, chopped) > 0.20

    def test_critical_workload_stays_powered(self, critical_profile):
        result = run(critical_profile, GatingMode.POWERCHOP)
        energy = result.energy
        assert energy.vpu_gated_frac < 0.2
        assert energy.mlc_way_residency.get(SERVER.mlc_assoc, 0.0) > 0.8

    def test_critical_workload_minimal_power_hurts(self, critical_profile):
        full = run(critical_profile, GatingMode.FULL)
        minimal = run(critical_profile, GatingMode.MINIMAL)
        assert slowdown(full, minimal) > 0.4


class TestPowerPerformanceTradeoff:
    def test_powerchop_between_extremes(self, scalar_profile):
        full = run(scalar_profile, GatingMode.FULL)
        chopped = run(scalar_profile, GatingMode.POWERCHOP)
        minimal = run(scalar_profile, GatingMode.MINIMAL)
        # Power: minimal <= powerchop <= full
        assert (
            minimal.energy.avg_power_w
            <= chopped.energy.avg_power_w
            <= full.energy.avg_power_w * 1.0001
        )

    def test_power_reduction_positive_on_real_benchmarks(self):
        from repro.workloads.suites import get_profile

        full = run(get_profile("hmmer"), GatingMode.FULL, n=800_000)
        chopped = run(get_profile("hmmer"), GatingMode.POWERCHOP, n=800_000)
        assert power_reduction(full, chopped) > 0.03
        assert slowdown(full, chopped) < 0.10


class TestTimeoutComparison:
    def test_powerchop_gates_sparse_vector_timeout_cannot(self):
        """The Fig. 16 mechanism: uniformly-sparse vector ops."""
        profile = BenchmarkProfile(
            name="sparse-vec",
            suite="test",
            phases=(
                PhaseDecl(
                    name="loop",
                    region=RegionSpec(
                        n_blocks=12,
                        branch_mix=PREDICTABLE,
                        vector_style="sparse",
                        side_block_prob=0.4,
                    ),
                    memory=MemoryBehavior(working_set_kb=16, pattern="loop"),
                    blocks=30_000,
                ),
            ),
            schedule=("loop",),
            seed=13,
        )
        chopped = run(profile, GatingMode.POWERCHOP)
        timed = run(profile, GatingMode.TIMEOUT)
        assert chopped.energy.vpu_gated_frac > timed.energy.vpu_gated_frac + 0.3

    def test_timeout_gates_pure_scalar(self, scalar_profile):
        timed = run(scalar_profile, GatingMode.TIMEOUT)
        # Gated for the whole run except the initial 20K-cycle idle period.
        assert timed.energy.vpu_gated_frac > 0.85


class TestPhaseMachinery:
    def test_pvt_hits_dominate_steady_state(self, scalar_profile):
        result = run(scalar_profile, GatingMode.POWERCHOP)
        assert result.pvt_hits > result.pvt_misses

    def test_policies_stable_in_single_phase(self, scalar_profile):
        result = run(scalar_profile, GatingMode.POWERCHOP)
        # One steady phase: a handful of early switches, then no churn.
        assert sum(result.switch_counts.values()) <= 12

    def test_mobile_end_to_end(self):
        from repro.workloads.suites import get_profile

        full = run(get_profile("amazon"), GatingMode.FULL, design=MOBILE, n=1_500_000)
        chopped = run(
            get_profile("amazon"), GatingMode.POWERCHOP, design=MOBILE, n=1_500_000
        )
        assert power_reduction(full, chopped) > 0.05
