"""Checks that the documentation deliverables stay complete and honest."""

import pathlib

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestReadme:
    def test_exists_with_key_sections(self):
        text = (REPO / "README.md").read_text()
        for heading in ("## Install", "## Quickstart", "## Architecture",
                        "## Reproducing the paper"):
            assert heading in text

    def test_quickstart_snippet_is_valid_python(self):
        text = (REPO / "README.md").read_text()
        snippet = text.split("```python")[1].split("```")[0]
        compile(snippet, "<readme>", "exec")

    def test_mentions_paper(self):
        text = (REPO / "README.md").read_text()
        assert "PowerChop" in text
        assert "ISCA 2016" in text


class TestDesignDoc:
    def test_substitution_table_covers_infrastructure(self):
        text = (REPO / "DESIGN.md").read_text()
        for tool in ("gem5", "McPAT", "CACTI", "SimPoint", "Transmeta"):
            assert tool in text, tool

    def test_system_inventory_names_every_subpackage(self):
        text = (REPO / "DESIGN.md").read_text()
        src = REPO / "src" / "repro"
        for sub in src.iterdir():
            if sub.is_dir() and (sub / "__init__.py").exists():
                assert f"repro.{sub.name}" in text or sub.name in text, sub.name

    def test_implementation_choices_documented(self):
        text = (REPO / "DESIGN.md").read_text()
        for topic in (
            "Measurement routing",
            "Warmup epoch",
            "Signature-variant inheritance",
            "Stream prefetcher",
        ):
            assert topic in text, topic


class TestPackagingMetadata:
    def test_pyproject_pins_package(self):
        text = (REPO / "pyproject.toml").read_text()
        assert 'name = "repro"' in text
        assert "numpy" in text

    def test_examples_present(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3
        assert any(p.name == "quickstart.py" for p in examples)

    def test_benchmarks_cover_every_paper_artifact(self):
        bench_text = "\n".join(
            p.read_text() for p in (REPO / "benchmarks").glob("test_*.py")
        )
        for artifact in (
            "fig01", "fig02", "fig03", "fig08", "fig09", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16",
            "table1", "table_hwcost", "table_sw_cost",
        ):
            assert artifact in bench_text, artifact
