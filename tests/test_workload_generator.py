"""Unit tests for address streams, region building and trace generation."""

import random

import pytest

from repro.isa.branches import LoopBranch
from repro.workloads.generator import (
    AddressStream,
    MemoryBehavior,
    RegionBuilder,
    SyntheticWorkload,
)
from repro.workloads.mixes import LOCAL_HEAVY, PREDICTABLE
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile


class TestMemoryBehavior:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBehavior(pattern="zigzag")
        with pytest.raises(ValueError):
            MemoryBehavior(working_set_kb=0)
        with pytest.raises(ValueError):
            MemoryBehavior(stride=0)
        with pytest.raises(ValueError):
            MemoryBehavior(random_frac=1.5)


class TestAddressStream:
    def test_loop_wraps_within_working_set(self):
        behavior = MemoryBehavior(working_set_kb=1, pattern="loop", stride=64)
        stream = AddressStream(behavior, base=0x10000)
        addrs = stream.take(40)
        assert all(0x10000 <= a < 0x10000 + 1024 for a in addrs)
        assert addrs[0] == addrs[16]  # 1024/64 = 16 distinct lines

    def test_stream_monotonic(self):
        behavior = MemoryBehavior(working_set_kb=64, pattern="stream", stride=8)
        stream = AddressStream(behavior, base=0)
        addrs = stream.take(1000)
        assert addrs == sorted(addrs)

    def test_random_within_working_set(self):
        behavior = MemoryBehavior(working_set_kb=4, pattern="random")
        stream = AddressStream(behavior, base=0x2000, seed=1)
        addrs = stream.take(500)
        assert all(0x2000 <= a < 0x2000 + 4096 for a in addrs)
        assert len(set(addrs)) > 100

    def test_random_frac_mixes(self):
        behavior = MemoryBehavior(
            working_set_kb=64, pattern="loop", stride=8, random_frac=0.5
        )
        stream = AddressStream(behavior, base=0, seed=2)
        addrs = stream.take(400)
        deltas = [b - a for a, b in zip(addrs, addrs[1:])]
        assert any(d != 8 for d in deltas)  # random jumps present

    def test_take_matches_next(self):
        behavior = MemoryBehavior(working_set_kb=2, pattern="loop", stride=16)
        a = AddressStream(behavior, base=0)
        b = AddressStream(behavior, base=0)
        assert a.take(50) == [b.next() for _ in range(50)]

    def test_deterministic_by_seed(self):
        behavior = MemoryBehavior(working_set_kb=8, pattern="random")
        a = AddressStream(behavior, base=0, seed=9)
        b = AddressStream(behavior, base=0, seed=9)
        assert a.take(100) == b.take(100)


class TestRegionBuilder:
    def _build(self, seed=0, **kwargs):
        rng = random.Random(seed)
        builder = RegionBuilder(rng, pc_base=0x400000)
        defaults = dict(
            region_id=0,
            n_blocks=16,
            avg_block_size=12,
            mem_frac=0.3,
            store_frac=0.3,
            vector_frac=0.0,
            vector_style="none",
            branch_mix=dict(PREDICTABLE),
            bias=0.92,
        )
        defaults.update(kwargs)
        return builder.build(**defaults)

    def test_unique_pcs(self):
        region = self._build()
        pcs = region.block_pcs()
        assert len(pcs) == len(set(pcs))

    def test_successors_valid(self):
        region = self._build(seed=3)
        for block in region.blocks:
            assert 0 <= block.taken_succ < region.n_blocks
            assert 0 <= block.fall_succ < region.n_blocks

    def test_sparse_vector_on_side_blocks_only(self):
        region = self._build(vector_style="sparse", side_block_prob=0.5, seed=5)
        main_has_vec = any(
            b.n_vec > 0 for b in region.blocks if b.branch is not None
        )
        side_has_vec = any(
            b.n_vec > 0 for b in region.blocks if b.branch is None
        )
        assert not main_has_vec
        assert side_has_vec

    def test_dense_vector_on_main_path(self):
        region = self._build(
            vector_style="dense", vector_frac=0.3, branch_mix=dict(LOCAL_HEAVY)
        )
        assert sum(b.n_vec for b in region.blocks if b.branch is not None) > 0

    def test_loop_backedges_exist(self):
        region = self._build(branch_mix={"loop": 1.0}, seed=11)
        backedges = 0
        index = {b.pc: i for i, b in enumerate(region.blocks)}
        for i, block in enumerate(region.blocks):
            if block.branch and isinstance(block.branch.model, LoopBranch):
                if block.taken_succ < i:
                    backedges += 1
        assert backedges > 0

    def test_invalid_vector_style(self):
        with pytest.raises(ValueError):
            self._build(vector_style="wide")


class TestSyntheticWorkload:
    def test_trace_respects_budget(self, tiny_profile):
        workload = build_workload(tiny_profile)
        total = sum(be.block.n_instr for be in workload.trace(50_000))
        assert 50_000 <= total < 50_400

    def test_trace_deterministic(self, tiny_profile):
        a = [
            (be.block.pc, be.taken, tuple(be.addresses))
            for be in build_workload(tiny_profile).trace(30_000)
        ]
        b = [
            (be.block.pc, be.taken, tuple(be.addresses))
            for be in build_workload(tiny_profile).trace(30_000)
        ]
        assert a == b

    def test_different_seeds_differ(self, tiny_profile):
        a = [be.block.pc for be in build_workload(tiny_profile, seed=1).trace(20_000)]
        b = [be.block.pc for be in build_workload(tiny_profile, seed=2).trace(20_000)]
        assert a != b

    def test_schedule_repeats_when_bounded(self, tiny_profile):
        workload = build_workload(tiny_profile)
        phases = {be.phase_name for be in workload.trace(400_000)}
        assert phases == {"vector_loop", "scalar_chase"}

    def test_address_spaces_disjoint_across_phases(self, tiny_profile):
        workload = build_workload(tiny_profile)
        by_phase = {}
        for be in workload.trace(100_000):
            if be.addresses:
                by_phase.setdefault(be.phase_name, set()).update(
                    a >> 30 for a in be.addresses
                )
        slots = list(by_phase.values())
        assert len(slots) == 2
        assert not (slots[0] & slots[1])

    def test_unknown_phase_in_schedule_rejected(self, tiny_profile):
        workload = build_workload(tiny_profile)
        with pytest.raises(ValueError):
            SyntheticWorkload(
                "bad",
                "test",
                list(workload.phases.values()),
                [("missing", 10)],
                seed=0,
            )

    def test_real_profile_traces(self):
        workload = build_workload(get_profile("hmmer"))
        count = sum(1 for _ in workload.trace(20_000))
        assert count > 500
