"""Unit tests for instruction classes and mixes."""

import pytest

from repro.isa.instructions import InstrClass, InstructionMix


class TestInstrClass:
    def test_distinct_values(self):
        values = {c.value for c in InstrClass}
        assert len(values) == len(InstrClass) == 5

    def test_names(self):
        assert InstrClass.VECTOR.name == "VECTOR"
        assert InstrClass.SCALAR < InstrClass.VECTOR


class TestInstructionMix:
    def test_total_includes_branch(self):
        mix = InstructionMix(scalar=5, vector=2, loads=2, stores=1, has_branch=True)
        assert mix.total == 11

    def test_total_without_branch(self):
        mix = InstructionMix(scalar=5, vector=0, loads=0, stores=0, has_branch=False)
        assert mix.total == 5

    def test_memory_ops(self):
        mix = InstructionMix(scalar=1, loads=3, stores=2)
        assert mix.memory_ops == 5

    def test_validate_rejects_negative(self):
        mix = InstructionMix(scalar=-1, loads=2)
        with pytest.raises(ValueError):
            mix.validate()

    def test_validate_rejects_empty(self):
        mix = InstructionMix(scalar=0, loads=0, stores=0, vector=0, has_branch=False)
        with pytest.raises(ValueError):
            mix.validate()

    def test_validate_accepts_branch_only(self):
        mix = InstructionMix(has_branch=True)
        mix.validate()
        assert mix.total == 1

    def test_frozen(self):
        mix = InstructionMix(scalar=3)
        with pytest.raises(AttributeError):
            mix.scalar = 5
