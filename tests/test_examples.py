"""Smoke tests: every example script runs end-to-end (small budgets)."""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(monkeypatch, capsys, path, argv):
    monkeypatch.setattr(sys, "argv", [path] + argv)
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, f"{EXAMPLES}/quickstart.py", ["hmmer", "150000"]
        )
        assert "PowerChop slowdown" in out
        assert "power saved" in out

    def test_custom_workload(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, f"{EXAMPLES}/custom_workload.py", ["400000"]
        )
        assert "media-pipeline" in out
        assert "phases" in out

    def test_threshold_tuning(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, f"{EXAMPLES}/threshold_tuning.py",
            ["hmmer", "200000"],
        )
        assert "vpu_threshold" in out

    def test_phase_inspection(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, f"{EXAMPLES}/phase_inspection.py",
            ["hmmer", "400000"],
        )
        assert "phase quality" in out
        assert "PVT" in out

    @pytest.mark.slow
    def test_mobile_web_browsing(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, f"{EXAMPLES}/mobile_web_browsing.py", ["250000"]
        )
        assert "amazon" in out
