"""Unit tests for the set-associative cache with way gating."""

import pytest

from repro.uarch.cache.cache import SetAssocCache


def make_cache(size_kb=4, assoc=4, line=64):
    return SetAssocCache(size_kb, assoc, line, "test")


class TestBasics:
    def test_geometry(self):
        cache = make_cache(4, 4, 64)
        assert cache.n_sets == 16
        assert cache.active_size_kb == 4

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssocCache(3, 4, 64)  # 3KB not divisible into 4-way 64B sets
        with pytest.raises(ValueError):
            SetAssocCache(4, 0)
        with pytest.raises(ValueError):
            SetAssocCache(4, 4, 60)

    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.access(0x1004) is True  # same line
        assert (cache.hits, cache.misses) == (2, 1)

    def test_distinct_lines(self):
        cache = make_cache()
        cache.access(0x0)
        assert cache.access(0x40) is False  # next line


class TestLRU:
    def test_eviction_order(self):
        cache = SetAssocCache(0.25, 2, 64, "tiny")  # 2 sets x 2 ways
        set_stride = cache.n_sets * 64
        a, b, c = 0x0, set_stride, 2 * set_stride  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is MRU
        cache.access(c)  # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_resident_bound(self):
        cache = make_cache(4, 4)
        for i in range(10_000):
            cache.access(i * 64)
        assert cache.resident_lines() <= 4 * cache.n_sets


class TestWriteback:
    def test_dirty_eviction_counts(self):
        cache = SetAssocCache(0.125, 1, 64, "dm")  # direct-mapped, 2 sets
        set_stride = cache.n_sets * 64
        cache.access(0x0, is_write=True)
        cache.access(set_stride)  # evicts dirty line
        assert cache.writebacks == 1

    def test_clean_eviction_free(self):
        cache = SetAssocCache(0.125, 1, 64, "dm")
        set_stride = cache.n_sets * 64
        cache.access(0x0)
        cache.access(set_stride)
        assert cache.writebacks == 0

    def test_write_hit_sets_dirty(self):
        cache = SetAssocCache(0.125, 1, 64, "dm")
        set_stride = cache.n_sets * 64
        cache.access(0x0)
        cache.access(0x0, is_write=True)
        cache.access(set_stride)
        assert cache.writebacks == 1


class TestWayGating:
    def test_shrink_flushes_gated_ways(self):
        cache = make_cache(4, 4)
        for i in range(4):  # fill set 0's ways
            cache.access(i * cache.n_sets * 64, is_write=True)
        dirty = cache.set_active_ways(1)
        assert dirty == 3
        assert cache.resident_lines() == 1

    def test_shrink_keeps_mru(self):
        cache = make_cache(4, 4)
        stride = cache.n_sets * 64
        for i in range(4):
            cache.access(i * stride)
        cache.access(0)  # make line 0 MRU
        cache.set_active_ways(1)
        assert cache.access(0) is True

    def test_grow_costs_nothing(self):
        cache = make_cache(4, 4)
        cache.set_active_ways(1)
        assert cache.set_active_ways(4) == 0

    def test_lookup_limited_to_active_ways(self):
        cache = make_cache(4, 4)
        cache.set_active_ways(2)
        stride = cache.n_sets * 64
        for i in range(3):
            cache.access(i * stride)
        assert cache.resident_lines() <= 2 * cache.n_sets
        assert cache.access(0 * stride) is False  # evicted by 2-way pressure

    def test_active_size(self):
        cache = make_cache(8, 8)
        cache.set_active_ways(4)
        assert cache.active_size_kb == 4.0

    def test_invalid_ways(self):
        cache = make_cache(4, 4)
        with pytest.raises(ValueError):
            cache.set_active_ways(0)
        with pytest.raises(ValueError):
            cache.set_active_ways(5)


class TestFlush:
    def test_flush_writes_back_dirty(self):
        cache = make_cache()
        cache.access(0x0, is_write=True)
        cache.access(0x40)
        assert cache.flush() == 1
        assert cache.resident_lines() == 0
