"""Tests for the static criticality pre-pass (StaticHints -> CDE -> runtime).

The contract under test: hints may only ever *accelerate* the decision the
dynamic profiler would have reached — policies stay bit-identical, the VPU
is simply gated during profiling windows instead of after them.
"""

from types import SimpleNamespace

import pytest

from repro.core.cde import CriticalityDecisionEngine, WindowStats
from repro.core.config import PowerChopConfig
from repro.sim.probes import StaticHintsProbe
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.staticcheck import StaticHints, build_hints, summarize_region
from repro.uarch.config import SERVER, design_for_suite
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile

from tests.test_staticcheck import make_block, make_loop_region

SIG = (1, 2, 3, 4)


def make_vector_region(region_id=1):
    region = make_loop_region(region_id)
    block = make_block(0x4000, vector=6, taken=0, fall=0)
    block.region_id = region_id
    region.blocks[2].fall_succ = 3
    region.blocks.append(block)
    return region


def make_hints():
    """Region 0 provably VPU-dead, region 1 vector-carrying."""
    return StaticHints(
        {
            0: summarize_region(make_loop_region(0)),
            1: summarize_region(make_vector_region(1)),
        }
    )


def translation(tid, region_id, n_vector=0):
    return SimpleNamespace(tid=tid, region_id=region_id, n_vector=n_vector)


def window(simd=0, *, large=True):
    return WindowStats(
        instructions=1000,
        simd_instructions=simd,
        mlc_hits=0,
        mlc_accesses=0,
        branches=100,
        mispredicts=2,
        bpu_large_active=large,
        mlc_at_full_ways=True,
    )


class TestStaticHints:
    def test_vpu_dead_region_set(self):
        hints = make_hints()
        assert hints.vpu_dead_regions == frozenset({0})

    def test_signature_requires_every_tid_proven(self):
        hints = make_hints()
        for tid in SIG:
            hints.note_translation(translation(tid, region_id=0))
        assert hints.signature_vpu_dead(SIG)
        assert hints.translations_noted == 4
        # One tid from the vector region spoils the whole signature.
        hints.note_translation(translation(9, region_id=1, n_vector=3))
        assert not hints.signature_vpu_dead((1, 2, 3, 9))

    def test_unknown_tids_count_as_not_proven(self):
        hints = make_hints()
        hints.note_translation(translation(1, region_id=0))
        assert not hints.signature_vpu_dead((1, 99))
        assert not hints.signature_vpu_dead(())

    def test_vector_carrying_translation_never_marked_dead(self):
        # Belt-and-braces: even if the region were misclassified, a
        # translation that demonstrably contains vector ops is not dead.
        hints = make_hints()
        hints.note_translation(translation(1, region_id=0, n_vector=2))
        assert not hints.signature_vpu_dead((1,))

    def test_build_hints_over_workload_regions(self):
        workload = build_workload(get_profile("hmmer"))
        hints = build_hints(
            {s.region.region_id: s.region for s in workload.phases.values()}
        )
        assert hints.vpu_dead_regions  # hmmer is vector-free


def make_cde(hints, **config_kwargs):
    config = PowerChopConfig(use_static_hints=True, **config_kwargs)
    return CriticalityDecisionEngine(config, SERVER, static_hints=hints)


def proven_hints():
    hints = make_hints()
    for tid in SIG:
        hints.note_translation(translation(tid, region_id=0))
    return hints


class TestCDEWithHints:
    def test_hinted_phase_gates_vpu_during_profiling(self):
        cde = make_cde(proven_hints())
        action, states = cde.on_pvt_miss(SIG, current_vpu_on=True)
        assert action == "profile"
        assert states.vpu_on is False
        assert cde.static_vpu_phases == 1
        assert cde.static_vpu_windows_skipped == 1

    def test_windows_already_gated_are_not_counted_as_skipped(self):
        cde = make_cde(proven_hints())
        cde.on_pvt_miss(SIG, current_vpu_on=False)
        assert cde.static_vpu_phases == 1
        assert cde.static_vpu_windows_skipped == 0

    def test_pinned_score_survives_measured_windows(self):
        cde = make_cde(proven_hints())
        cde.on_pvt_miss(SIG)
        assert cde.feed_profile_window(SIG, window(large=True)) is None
        cde.on_pvt_miss(SIG)
        policy = cde.feed_profile_window(SIG, window(large=False))
        assert policy is not None
        assert policy.vpu_on is False
        assert cde.known_policy(SIG) == policy

    def test_unproven_signature_profiles_dynamically(self):
        cde = make_cde(proven_hints())
        action, states = cde.on_pvt_miss((7, 8, 9, 10), current_vpu_on=True)
        assert action == "profile"
        assert states.vpu_on is True
        assert cde.static_vpu_phases == 0

    def test_hints_ignored_without_vpu_in_managed_units(self):
        cde = make_cde(proven_hints(), managed_units=("bpu", "mlc"))
        assert cde.hints is None
        _action, states = cde.on_pvt_miss(SIG, current_vpu_on=True)
        assert states.vpu_on is True
        assert cde.static_vpu_phases == 0

    def test_hints_ignored_when_config_opts_out(self):
        config = PowerChopConfig()  # use_static_hints defaults to False
        cde = CriticalityDecisionEngine(config, SERVER, static_hints=proven_hints())
        assert cde.hints is None


def run_once(benchmark, *, hints, n=600_000, probe=True):
    profile = get_profile(benchmark)
    config = PowerChopConfig(use_static_hints=hints)
    simulator = HybridSimulator(
        design_for_suite(profile.suite),
        build_workload(profile),
        GatingMode.POWERCHOP,
        powerchop_config=config,
    )
    state = StaticHintsProbe().build()
    result = simulator.run(n, probes=[state] if probe else ())
    return result, state.value()


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def hmmer_ab(self):
        baseline, base_data = run_once("hmmer", hints=False)
        hinted, hint_data = run_once("hmmer", hints=True)
        return baseline, base_data, hinted, hint_data

    def test_hints_skip_profiling_windows(self, hmmer_ab):
        _baseline, base_data, hinted, hint_data = hmmer_ab
        assert base_data["enabled"] is False
        assert hint_data["enabled"] is True
        assert hint_data["static_vpu_phases"] >= 1
        assert hint_data["vpu_windows_skipped"] >= 1
        assert hinted.extra["static_vpu_windows_skipped"] >= 1.0

    def test_policy_decisions_bit_identical(self, hmmer_ab):
        _baseline, base_data, _hinted, hint_data = hmmer_ab
        assert base_data["decided_policies"] == hint_data["decided_policies"]
        assert base_data["decided_policies"]  # non-vacuous comparison

    def test_same_work_less_energy(self, hmmer_ab):
        baseline, _bd, hinted, _hd = hmmer_ab
        assert hinted.instructions == baseline.instructions
        assert hinted.energy.avg_power_w <= baseline.energy.avg_power_w

    def test_no_hints_fire_on_vector_dense_workload(self):
        baseline, _bd = run_once("bodytrack", hints=False, n=400_000)
        hinted, hint_data = run_once("bodytrack", hints=True, n=400_000)
        assert hint_data["enabled"] is True
        assert hint_data["vpu_dead_regions"] == []
        assert hint_data["static_vpu_phases"] == 0
        # With no hints firing, the runs are indistinguishable — identical
        # energy accounting, not merely identical policies.
        assert hinted.cycles == baseline.cycles
        assert hinted.energy.avg_power_w == baseline.energy.avg_power_w
        assert hinted.energy.avg_leakage_w == baseline.energy.avg_leakage_w
