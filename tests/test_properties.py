"""Property-based tests (hypothesis) on core data structures and invariants."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.phases import manhattan_distance
from repro.core.htb import HotTranslationBuffer
from repro.core.policies import PolicyVector, decode_policy_bits, encode_policy_bits
from repro.core.pvt import PolicyVectorTable
from repro.core.signature import make_signature
from repro.uarch.branch.predictors import BimodalPredictor, GSharePredictor
from repro.uarch.cache.cache import SetAssocCache
from repro.uarch.config import SERVER
from repro.workloads.generator import AddressStream, MemoryBehavior

# ---------------------------------------------------------------- signatures

count_maps = st.dictionaries(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=10_000),
    max_size=40,
)


@given(counts=count_maps, length=st.integers(min_value=1, max_value=8))
def test_signature_is_sorted_subset(counts, length):
    sig = make_signature(counts, length)
    assert list(sig) == sorted(sig)
    assert len(sig) == min(length, len(counts))
    assert set(sig) <= set(counts)


@given(counts=count_maps)
def test_signature_contains_the_hottest(counts):
    sig = make_signature(counts, 4)
    if counts:
        hottest = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]
        assert any(counts[t] >= counts[hottest] for t in sig)


@given(counts=count_maps, length=st.integers(min_value=1, max_value=8))
def test_signature_permutation_invariant(counts, length):
    items = list(counts.items())
    shuffled = dict(reversed(items))
    assert make_signature(counts, length) == make_signature(shuffled, length)


# ----------------------------------------------------------------- manhattan


@given(a=count_maps, b=count_maps)
def test_manhattan_symmetry_and_identity(a, b):
    assert manhattan_distance(a, b) == manhattan_distance(b, a)
    assert manhattan_distance(a, a) == 0
    assert manhattan_distance(a, b) >= 0


@given(a=count_maps, b=count_maps, c=count_maps)
def test_manhattan_triangle_inequality(a, b, c):
    assert manhattan_distance(a, c) <= manhattan_distance(a, b) + manhattan_distance(
        b, c
    )


# --------------------------------------------------------------------- cache


@st.composite
def address_traces(draw):
    n_lines = draw(st.integers(min_value=1, max_value=64))
    length = draw(st.integers(min_value=1, max_value=300))
    return [
        draw(st.integers(min_value=0, max_value=n_lines - 1)) * 64
        for _ in range(length)
    ]


class _ReferenceLRU:
    """Oracle: per-set OrderedDict-based LRU cache."""

    def __init__(self, n_sets, ways, line=64):
        self.n_sets = n_sets
        self.ways = ways
        self.line = line
        self.sets = [OrderedDict() for _ in range(n_sets)]

    def access(self, addr):
        line = addr // self.line
        s = self.sets[line % self.n_sets]
        if line in s:
            s.move_to_end(line)
            return True
        s[line] = True
        if len(s) > self.ways:
            s.popitem(last=False)
        return False


@given(trace=address_traces(), ways=st.integers(min_value=1, max_value=4))
@settings(max_examples=60)
def test_cache_matches_reference_lru(trace, ways):
    cache = SetAssocCache(ways * 4 * 64 / 1024, ways, 64, "sut")
    oracle = _ReferenceLRU(cache.n_sets, ways)
    for addr in trace:
        assert cache.access(addr) == oracle.access(addr)


@given(trace=address_traces())
@settings(max_examples=40)
def test_cache_hits_plus_misses_equals_accesses(trace):
    cache = SetAssocCache(2, 2, 64, "sut")
    for addr in trace:
        cache.access(addr, is_write=addr % 128 == 0)
    assert cache.hits + cache.misses == len(trace)
    assert cache.resident_lines() <= cache.n_sets * cache.assoc


@given(
    trace=address_traces(),
    ways_seq=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4),
)
@settings(max_examples=40)
def test_way_gating_never_exceeds_active_capacity(trace, ways_seq):
    cache = SetAssocCache(1, 4, 64, "sut")
    for i, addr in enumerate(trace):
        if i % 37 == 0:
            cache.set_active_ways(ways_seq[i % len(ways_seq)])
        cache.access(addr, is_write=addr % 192 == 0)
        assert cache.resident_lines() <= cache.n_sets * cache.active_ways


# --------------------------------------------------------------------- HTB


@given(
    events=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=1, max_value=100),
        ),
        max_size=200,
    )
)
def test_htb_occupancy_and_window_invariants(events):
    htb = HotTranslationBuffer(n_entries=16, window_size=50)
    for tid, n_instr in events:
        completed = htb.record(tid, n_instr)
        assert htb.occupancy <= 16
        if completed:
            sig = htb.signature(4)
            assert len(sig) <= 4
            htb.flush()
            assert htb.window_executions == 0


# --------------------------------------------------------------------- PVT


@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=12), st.booleans()),
        max_size=100,
    )
)
def test_pvt_capacity_and_lru_consistency(ops):
    pvt = PolicyVectorTable(4)
    policy = PolicyVector(True, True, SERVER.mlc_assoc)
    inserted = set()
    for key, is_insert in ops:
        sig = (key,)
        if is_insert:
            evicted = pvt.insert(sig, policy)
            inserted.add(sig)
            if evicted is not None:
                inserted.discard(evicted[0])
        else:
            hit = pvt.lookup(sig)
            assert (hit is not None) == (sig in inserted)
        assert len(pvt) <= 4


# ------------------------------------------------------------ policy vectors


@given(
    vpu=st.booleans(),
    bpu=st.booleans(),
    ways=st.sampled_from(SERVER.mlc_way_states),
)
def test_policy_encode_decode_roundtrip(vpu, bpu, ways):
    policy = PolicyVector(vpu, bpu, ways)
    assert decode_policy_bits(encode_policy_bits(policy, SERVER), SERVER) == policy


# ------------------------------------------------------------ address stream


@given(
    ws_kb=st.floats(min_value=0.25, max_value=64),
    stride=st.sampled_from([4, 8, 16, 64]),
    n=st.integers(min_value=1, max_value=200),
)
def test_loop_stream_stays_in_working_set(ws_kb, stride, n):
    behavior = MemoryBehavior(working_set_kb=ws_kb, pattern="loop", stride=stride)
    stream = AddressStream(behavior, base=1 << 20)
    top = (1 << 20) + max(int(ws_kb * 1024), stride)
    for addr in stream.take(n):
        assert (1 << 20) <= addr < top


# ---------------------------------------------------------------- predictors


@given(outcomes=st.lists(st.booleans(), min_size=1, max_size=300))
def test_bimodal_predictions_always_boolean(outcomes):
    predictor = BimodalPredictor(64)
    for taken in outcomes:
        assert isinstance(predictor.predict(0x40), bool)
        predictor.update(0x40, taken)


@given(outcomes=st.lists(st.booleans(), min_size=1, max_size=300))
def test_gshare_ghr_tracks_outcomes(outcomes):
    predictor = GSharePredictor(history_bits=8, n_counters=256)
    for taken in outcomes:
        predictor.update(0x10, taken)
    expected = 0
    for taken in outcomes:
        expected = ((expected << 1) | int(taken)) & 0xFF
    assert predictor.ghr == expected
