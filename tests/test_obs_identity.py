"""Observability must not perturb simulation: off vs full bit-identity.

``obs_level="off"`` must produce bit-identical results to ``"full"`` —
tracing is observation, never interference.  Tier-1 checks a sample of
profiles across modes; the full 29-profile sweep lives in
``benchmarks/test_obs_overhead.py`` behind the slow marker.
"""

import pytest

from repro.core.config import PowerChopConfig
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import design_for_suite
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile

#: One profile per suite family, exercising distinct unit behaviours.
SAMPLED_PROFILES = ("bzip2", "milc", "blackscholes", "google", "libquantum")

_QUICK = PowerChopConfig(window_size=100, warmup_windows=1)


def _run(name, mode, obs_level, seed=7, max_instructions=120_000):
    profile = get_profile(name)
    simulator = HybridSimulator(
        design_for_suite(profile.suite),
        build_workload(profile, seed),
        mode,
        powerchop_config=_QUICK if mode is GatingMode.POWERCHOP else None,
        obs_level=obs_level,
    )
    result = simulator.run(max_instructions)
    return simulator, result


def _comparable(result):
    """Result dict minus the metrics snapshot (only populated when on)."""
    data = result.to_dict()
    data.pop("metrics")
    return data


@pytest.mark.parametrize("profile_name", SAMPLED_PROFILES)
def test_off_vs_full_bit_identical_powerchop(profile_name):
    _off_sim, off = _run(profile_name, GatingMode.POWERCHOP, "off")
    full_sim, full = _run(profile_name, GatingMode.POWERCHOP, "full")
    assert _comparable(off) == _comparable(full)
    # The traced run really did trace — this is not an accidentally-inert
    # comparison.
    assert full_sim.tracer.emitted > 0


@pytest.mark.parametrize("mode", [GatingMode.FULL, GatingMode.TIMEOUT])
def test_off_vs_full_bit_identical_other_modes(mode):
    _off_sim, off = _run("bzip2", mode, "off")
    _full_sim, full = _run("bzip2", mode, "full")
    assert _comparable(off) == _comparable(full)


def test_off_vs_metrics_bit_identical():
    _off_sim, off = _run("bzip2", GatingMode.POWERCHOP, "metrics")
    _full_sim, full = _run("bzip2", GatingMode.POWERCHOP, "off")
    data_metrics = _comparable(off)
    data_off = _comparable(full)
    assert data_metrics == data_off


def test_decided_policies_identical():
    """Gating decisions specifically must match event-for-event."""
    off_sim, _ = _run("bzip2", GatingMode.POWERCHOP, "off")
    full_sim, _ = _run("bzip2", GatingMode.POWERCHOP, "full")
    off_policies = [
        (signature, policy.as_tuple() if hasattr(policy, "as_tuple") else
         (policy.vpu_on, policy.bpu_on, policy.mlc_ways))
        for signature, policy in off_sim.controller.cde.decided_policies()
    ]
    full_policies = [
        (signature, policy.as_tuple() if hasattr(policy, "as_tuple") else
         (policy.vpu_on, policy.bpu_on, policy.mlc_ways))
        for signature, policy in full_sim.controller.cde.decided_policies()
    ]
    assert off_policies == full_policies
