"""Tests for trace export/replay."""

import io

import pytest

from repro.uarch.config import SERVER
from repro.uarch.core import CoreModel
from repro.workloads.profiles import build_workload
from repro.workloads.trace_io import (
    export_trace,
    load_trace,
    replay_through_core,
)


@pytest.fixture
def trace_text(tiny_profile):
    workload = build_workload(tiny_profile)
    buffer = io.StringIO()
    count = export_trace(workload, buffer, max_instructions=40_000)
    assert count > 0
    buffer.seek(0)
    return buffer


class TestRoundTrip:
    def test_header_preserved(self, trace_text):
        trace = load_trace(trace_text)
        assert trace.name == "tiny"
        assert trace.suite == "test"

    def test_event_stream_matches_original(self, tiny_profile, trace_text):
        trace = load_trace(trace_text)
        original = [
            (be.block.pc, be.taken, tuple(be.addresses))
            for be in build_workload(tiny_profile).trace(40_000)
        ]
        replayed = [
            (be.block.pc, be.taken, tuple(be.addresses)) for be in trace
        ]
        assert replayed == original

    def test_instruction_totals_match(self, tiny_profile, trace_text):
        trace = load_trace(trace_text)
        original_total = sum(
            be.block.n_instr for be in build_workload(tiny_profile).trace(40_000)
        )
        assert trace.total_instructions == original_total

    def test_replay_through_core_deterministic(self, trace_text):
        trace = load_trace(trace_text)
        a = replay_through_core(trace, CoreModel(SERVER))
        b = replay_through_core(trace, CoreModel(SERVER))
        assert a == b > 0

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            load_trace(io.StringIO("not a trace\n"))

    def test_bad_line_rejected(self):
        buffer = io.StringIO("# repro-trace v1 x y\nZ what\n")
        with pytest.raises(ValueError):
            load_trace(buffer)
