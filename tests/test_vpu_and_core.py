"""Tests for the VPU model and the core timing model."""

import pytest

from repro.isa.blocks import BasicBlock, BlockExec
from repro.isa.branches import BiasedBranch, StaticBranch
from repro.isa.instructions import InstructionMix
from repro.uarch.config import MOBILE, SERVER
from repro.uarch.core import CoreModel
from repro.uarch.vpu import VectorUnit


class TestVectorUnit:
    def test_native_execution(self):
        vpu = VectorUnit(width=4, emulation_factor=8)
        assert vpu.execute(5) == 0
        assert vpu.native_ops == 5

    def test_emulated_execution(self):
        vpu = VectorUnit(width=4, emulation_factor=8)
        vpu.gate_off()
        assert vpu.execute(3) == 3 * 7
        assert vpu.emulated_ops == 3
        assert vpu.native_ops == 0

    def test_gate_cycle(self):
        vpu = VectorUnit(2, 6)
        vpu.gate_off()
        vpu.gate_on()
        assert vpu.gated_on

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorUnit(0, 8)
        with pytest.raises(ValueError):
            VectorUnit(4, 0)
        vpu = VectorUnit(4, 8)
        with pytest.raises(ValueError):
            vpu.execute(-1)


def make_exec(scalar=7, vector=0, loads=2, taken=False, addresses=(0x0, 0x40)):
    mix = InstructionMix(scalar=scalar, vector=vector, loads=loads, has_branch=True)
    branch = StaticBranch(pc=0x1000, model=BiasedBranch(0.5))
    block = BasicBlock(0x1000, mix, branch)
    return BlockExec(block, taken, addresses[: mix.memory_ops])


class TestCoreModel:
    def test_issue_limited_cycles(self):
        core = CoreModel(SERVER)
        # No memory, no vector; branch may mispredict/redirect.
        mix = InstructionMix(scalar=8, has_branch=False)
        block = BasicBlock(0x2000, mix, None)
        cycles = core.execute_block(BlockExec(block, False, ()), interpreting=False)
        assert cycles == pytest.approx(8 / SERVER.issue_width)

    def test_interpretation_penalty(self):
        core = CoreModel(SERVER)
        mix = InstructionMix(scalar=8, has_branch=False)
        block = BasicBlock(0x2000, mix, None)
        cycles = core.execute_block(BlockExec(block, False, ()), interpreting=True)
        assert cycles == pytest.approx(8 * SERVER.interpreter_cpi)

    def test_counters_accumulate(self):
        core = CoreModel(SERVER)
        core.execute_block(make_exec(), interpreting=False)
        counters = core.counters
        assert counters.instructions == 10
        assert counters.branches == 1
        assert counters.memory_ops == 2

    def test_vector_emulation_expands_micro_ops(self):
        core = CoreModel(SERVER)
        core.apply_vpu_state(False)
        exec_ = make_exec(vector=2)
        core.execute_block(exec_, interpreting=False)
        expected = exec_.block.n_instr + 2 * (SERVER.vpu_emulation_factor - 1)
        assert core.counters.micro_ops == expected
        assert core.counters.simd_instructions == 2

    def test_memory_stall_charged(self):
        core = CoreModel(SERVER)
        warm = CoreModel(SERVER)
        cold_cycles = core.execute_block(make_exec(), interpreting=False)
        warm.execute_block(make_exec(), interpreting=False)
        warm_cycles = warm.execute_block(make_exec(), interpreting=False)
        assert cold_cycles > warm_cycles  # cold misses cost stalls

    def test_mlc_gating_returns_dirty_count(self):
        core = CoreModel(SERVER)
        # Write enough lines that some land in the MLC dirty.
        for i in range(4000):
            core.hierarchy.mlc.access(i * 64, is_write=True)
        dirty = core.apply_mlc_state(1)
        assert dirty > 0
        assert core.states.mlc_ways == 1

    def test_bpu_gating_switches_mode(self):
        core = CoreModel(MOBILE)
        core.apply_bpu_state(False)
        assert core.bpu.large_on is False
        core.apply_bpu_state(True)
        assert core.bpu.large_on is True

    def test_design_way_states(self):
        assert SERVER.mlc_way_states == (1, 4, 8)
        assert MOBILE.mlc_way_states == (1, 4, 8)
