"""Trace/metrics invariants: properties every instrumented run must hold.

- VPU and BPU gate/regate events strictly alternate, and every event's
  ``from`` state equals the previous event's ``to`` (chain consistency);
  the MLC has more than two states, so it gets chain consistency only.
- A gated VPU interval executes zero native vector operations, and the
  energy accountant charges the VPU zero dynamic energy for it (dynamic
  VPU energy is exactly ``native_ops x op_energy``).
- Metrics-registry totals agree with the event stream.
- Windowed probes sharing ``sample_instructions`` cut identical windows
  (the ``include_trailing_window`` flush rule).
"""

from collections import defaultdict

import pytest

from repro.obs.events import EventKind
from repro.sim.probes import IPCSeriesProbe, MetricsProbe, include_trailing_window
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import SERVER
from repro.workloads.profiles import build_workload


@pytest.fixture(scope="module")
def traced():
    """One fully-traced POWERCHOP run shared by the invariant checks."""
    from repro.core.config import PowerChopConfig
    from repro.workloads.suites import get_profile

    simulator = HybridSimulator(
        SERVER,
        build_workload(get_profile("bzip2"), 7),
        GatingMode.POWERCHOP,
        powerchop_config=PowerChopConfig(window_size=100, warmup_windows=1),
        obs_level="full",
    )
    result = simulator.run(300_000)
    return simulator, result


def _unit_events(simulator, unit):
    return [
        event
        for event in simulator.tracer.events()
        if event.kind in (EventKind.UNIT_GATE, EventKind.UNIT_REGATE)
        and event.payload["unit"] == unit
    ]


class TestGateRegateAlternation:
    @pytest.mark.parametrize("unit", ["vpu", "bpu"])
    def test_strict_alternation(self, traced, unit):
        simulator, _result = traced
        events = _unit_events(simulator, unit)
        # Units start powered on, so the first transition must be a gate.
        expected = EventKind.UNIT_GATE
        for event in events:
            assert event.kind is expected, f"{unit}: consecutive {event.kind}"
            expected = (
                EventKind.UNIT_REGATE
                if event.kind is EventKind.UNIT_GATE
                else EventKind.UNIT_GATE
            )

    @pytest.mark.parametrize("unit", ["vpu", "bpu", "mlc"])
    def test_chain_consistency(self, traced, unit):
        simulator, _result = traced
        previous_to = 8 if unit == "mlc" else 1  # initial full-power state
        for event in _unit_events(simulator, unit):
            assert event.payload["from"] == previous_to
            assert event.payload["from"] != event.payload["to"]
            previous_to = event.payload["to"]

    def test_mlc_direction_matches_kind(self, traced):
        simulator, _result = traced
        for event in _unit_events(simulator, "mlc"):
            if event.kind is EventKind.UNIT_GATE:
                assert event.payload["to"] < event.payload["from"]
            else:
                assert event.payload["to"] > event.payload["from"]

    def test_final_event_state_matches_core(self, traced):
        simulator, _result = traced
        states = simulator.core.states
        finals = {"vpu": int(states.vpu_on), "bpu": int(states.bpu_large_on),
                  "mlc": states.mlc_ways}
        for unit, expected in finals.items():
            events = _unit_events(simulator, unit)
            if events:
                assert events[-1].payload["to"] == expected


class TestGatedIntervalsAreIdle:
    def test_vpu_gated_intervals_run_zero_native_ops(self, traced):
        """The events prove it: native_ops is flat across gated spans."""
        simulator, _result = traced
        events = _unit_events(simulator, "vpu")
        assert events, "run produced no VPU gating to check"
        gated_at = None
        for event in events:
            if event.kind is EventKind.UNIT_GATE:
                gated_at = event.payload["native_ops"]
            elif gated_at is not None:
                assert event.payload["native_ops"] == gated_at, (
                    "native vector ops executed while the VPU was gated"
                )
                gated_at = None
        if gated_at is not None:  # run ended gated
            assert simulator.core.vpu.native_ops == gated_at

    def test_accounting_charges_vpu_dynamic_only_for_native_ops(self, traced):
        """unit_dynamic_j[vpu] == native_ops x op energy — so gated
        intervals (zero native-op delta) carry zero dynamic energy."""
        from repro.power.mcpat import CorePowerModel

        simulator, result = traced
        expected = (
            simulator.core.vpu.native_ops
            * CorePowerModel(simulator.design).vpu_op_energy_j()
        )
        assert result.energy.unit_dynamic_j["vpu"] == pytest.approx(expected)


class TestMetricsAgreeWithEvents:
    def test_switch_counts_match_gate_events(self, traced):
        simulator, result = traced
        by_unit = defaultdict(int)
        for event in simulator.tracer.events():
            if event.kind in (EventKind.UNIT_GATE, EventKind.UNIT_REGATE):
                by_unit[event.payload["unit"]] += 1
        # The ring did not wrap in this short run, so the event stream is
        # complete and must tally with the accountant's switch counts.
        assert simulator.tracer.dropped == 0
        for unit, count in by_unit.items():
            assert result.switch_counts[unit] == count

    def test_emitted_counter_matches_buffer(self, traced):
        simulator, result = traced
        tracer = simulator.tracer
        assert tracer.emitted == len(tracer) + tracer.dropped
        counters = result.metrics["counters"]
        assert counters["obs_events_emitted"] == tracer.emitted
        assert counters["obs_events_dropped"] == tracer.dropped


class TestWindowAgreement:
    def test_flush_rule(self):
        assert not include_trailing_window(0, 100)
        assert not include_trailing_window(49, 100)
        assert include_trailing_window(50, 100)  # exactly half: included
        assert include_trailing_window(99, 100)
        assert not include_trailing_window(-5, 100)

    @pytest.mark.parametrize("budget", [60_000, 110_000, 150_000])
    def test_probe_window_counts_agree(self, tiny_profile, budget):
        """IPCSeriesProbe and MetricsProbe cut identical windows."""
        sample = 20_000
        ipc_probe = IPCSeriesProbe(sample_instructions=sample)
        metrics_probe = MetricsProbe(sample_instructions=sample)
        simulator = HybridSimulator(
            SERVER,
            build_workload(tiny_profile),
            GatingMode.FULL,
            obs_level="metrics",
        )
        states = (ipc_probe.build(), metrics_probe.build())
        simulator.run(budget, probes=states)
        series = states[0].value()
        hist = states[1].value()["windowed_ipc"]
        assert hist["count"] == len(series)
        assert hist["sum"] == pytest.approx(sum(series))
        if series:
            assert hist["min"] == pytest.approx(min(series))
            assert hist["max"] == pytest.approx(max(series))
