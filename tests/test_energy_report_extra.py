"""Extra coverage for the energy report and gating-energy interactions."""

import pytest

from repro.power.accounting import EnergyAccounting, EnergyReport
from repro.power.gating import GatingOverheadModel
from repro.power.mcpat import CorePowerModel
from repro.uarch.config import MOBILE, SERVER
from repro.uarch.core import CoreModel


class TestEnergyReportHelpers:
    def _report(self, residency):
        return EnergyReport(
            cycles=100.0,
            seconds=1e-7,
            leakage_j=1.0,
            dynamic_j=1.0,
            switch_overhead_j=0.0,
            unit_leakage_j={},
            unit_dynamic_j={},
            vpu_on_frac=0.25,
            bpu_on_frac=0.5,
            mlc_way_residency=residency,
        )

    def test_gated_fracs(self):
        report = self._report({8: 0.5, 4: 0.3, 1: 0.2})
        assert report.vpu_gated_frac == pytest.approx(0.75)
        assert report.bpu_gated_frac == pytest.approx(0.5)
        assert report.mlc_gated_frac(8) == pytest.approx(0.5)
        assert report.mlc_gated_frac(4) == pytest.approx(0.2)

    def test_zero_seconds(self):
        report = self._report({8: 1.0})
        report.seconds = 0.0
        assert report.avg_power_w == 0.0
        assert report.avg_leakage_w == 0.0


class TestMultiSwitchAccounting:
    def test_many_switches_accumulate_energy(self):
        core = CoreModel(SERVER)
        accountant = EnergyAccounting(SERVER, core)
        gating = GatingOverheadModel(SERVER, CorePowerModel(SERVER))
        per_switch = gating.switch_energy_j("vpu")
        for i in range(10):
            state = i % 2 == 0
            core.apply_vpu_state(not state)
            accountant.on_switch("vpu", not state, float(i * 1000))
        report = accountant.finalize(10_000.0)
        assert report.switch_counts["vpu"] == 10
        assert report.switch_overhead_j == pytest.approx(10 * per_switch)

    def test_alternating_states_split_residency_evenly(self):
        core = CoreModel(SERVER)
        accountant = EnergyAccounting(SERVER, core)
        for i in range(1, 5):
            new_state = i % 2 == 0
            core.apply_vpu_state(new_state)
            accountant.on_switch("vpu", new_state, i * 250.0)
        report = accountant.finalize(1250.0)
        assert report.vpu_on_frac == pytest.approx(0.6)

    def test_mlc_multiway_residency(self):
        core = CoreModel(SERVER)
        accountant = EnergyAccounting(SERVER, core)
        core.apply_mlc_state(4)
        accountant.on_switch("mlc", 4, 100.0)
        core.apply_mlc_state(1)
        accountant.on_switch("mlc", 1, 300.0)
        report = accountant.finalize(1000.0)
        assert report.mlc_way_residency == pytest.approx(
            {8: 0.1, 4: 0.2, 1: 0.7}
        )


class TestCrossDesignEnergy:
    def test_same_gating_saves_more_fraction_on_mobile(self):
        """The mobile MLC is 60% of the core, so way gating moves mobile
        leakage proportionally more than server leakage (the paper's
        explanation for the mobile core's larger savings)."""
        savings = {}
        for design in (SERVER, MOBILE):
            core = CoreModel(design)
            baseline = EnergyAccounting(design, core)
            full = baseline.finalize(1e6).avg_leakage_w
            core2 = CoreModel(design)
            core2.apply_mlc_state(1)
            gated = EnergyAccounting(design, core2).finalize(1e6).avg_leakage_w
            savings[design.kind] = 1.0 - gated / full
        assert savings["mobile"] > savings["server"]
