"""Backend registry + three-way bit-equivalence: reference / fastpath / vectorized.

Every registered execution backend promises *exact* equivalence with the
reference loop — every :class:`SimulationResult` field, every ``extra``
entry, and the deep component state (cache set contents, predictor
tables, prefetcher streams, RNG-visible history).  Tier-1 proves the
three-way match on five profiles across all four gating modes; the
exhaustive 29-profile sweep lives behind the slow marker.
"""

import dataclasses

import pytest

from repro.core.config import PowerChopConfig
from repro.isa.branches import LoopBranch, StaticBranch
from repro.isa.instructions import InstructionMix
from repro.isa.blocks import BasicBlock, CodeRegion
from repro.sim.backends import (
    DEFAULT_BACKEND,
    available_backends,
    get_backend,
    resolve_backend_name,
)
from repro.sim.backends.vectorized import _walk_table
from repro.sim.engine import NON_KEY_FIELDS, SimJob
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import design_for_suite
from repro.workloads.generator import MemoryBehavior, PhaseSpec, SyntheticWorkload
from repro.workloads.profiles import build_workload
from repro.workloads.suites import ALL_BENCHMARKS, get_profile

#: Same sampling as tests/test_fastpath.py: one profile per suite family,
#: exercising distinct unit behaviours.  Two mobilebench entries with
#: ``random_frac > 0`` (google 0.25, amazon 0.2) prove the RNG-planned
#: batch path — these streams previously took a per-access fallback.
SAMPLED_PROFILES = ("bzip2", "milc", "blackscholes", "google", "amazon", "libquantum")

_QUICK = PowerChopConfig(window_size=100, warmup_windows=1)

ALL_MODES = (
    GatingMode.FULL,
    GatingMode.MINIMAL,
    GatingMode.POWERCHOP,
    GatingMode.TIMEOUT,
)


def _run(name, mode, backend, seed=7, max_instructions=120_000):
    profile = get_profile(name)
    simulator = HybridSimulator(
        design_for_suite(profile.suite),
        build_workload(profile, seed),
        mode,
        powerchop_config=_QUICK if mode is GatingMode.POWERCHOP else None,
        backend=backend,
    )
    result = simulator.run(max_instructions)
    return simulator, result


def _deep_state(simulator):
    """Component state a result dict can't see; must still match exactly."""
    core = simulator.core
    h = core.hierarchy
    bpu = core.bpu
    state = {
        "l1_sets": h.l1._sets,
        "mlc_sets": h.mlc._sets,
        "llc_sets": h.llc._sets if h.llc is not None else None,
        "levels": list(h.level_counts),
        "local_hist": list(bpu.large.local._histories),
        "local_ctr": list(bpu.large.local._counters),
        "gshare_ctr": list(bpu.large.global_pred._counters),
        "gshare_ghr": bpu.large.global_pred.ghr,
        "chooser": list(bpu.large._chooser),
        "small_hist": list(bpu.small._histories),
        "small_ctr": list(bpu.small._counters),
        "btb": list(bpu.large_btb._entries),
        "history_bits": simulator.workload.history.bits,
        "counters": core.counters.snapshot(),
        "vpu": (core.vpu.native_ops, core.vpu.emulated_ops),
    }
    if h.prefetcher is not None:
        state["prefetcher"] = (
            list(h.prefetcher._streams),
            list(h.prefetcher._stamps),
            h.prefetcher._clock,
        )
    return state


def _assert_identical(name, mode, max_instructions=120_000):
    ref_sim, ref = _run(name, mode, "reference", max_instructions=max_instructions)
    ref_dict = ref.to_dict()
    ref_state = _deep_state(ref_sim)
    for backend in ("fastpath", "vectorized"):
        sim, result = _run(name, mode, backend, max_instructions=max_instructions)
        assert result.to_dict() == ref_dict, (
            f"{name}/{mode.value}/{backend} result diverged"
        )
        assert _deep_state(sim) == ref_state, (
            f"{name}/{mode.value}/{backend} component state diverged"
        )


# ------------------------------------------------------------ tier-1 matrix


@pytest.mark.parametrize("profile_name", SAMPLED_PROFILES)
@pytest.mark.parametrize("mode", ALL_MODES)
def test_backends_bit_identical(profile_name, mode):
    _assert_identical(profile_name, mode)


# --------------------------------------------------------- exhaustive sweep


@pytest.mark.slow
@pytest.mark.parametrize("profile_name", [p.name for p in ALL_BENCHMARKS])
@pytest.mark.parametrize("mode", ALL_MODES)
def test_backends_bit_identical_all_profiles(profile_name, mode):
    _assert_identical(profile_name, mode, max_instructions=200_000)


# ----------------------------------------------------------------- registry


def test_registry_lists_all_backends():
    assert available_backends() == ("reference", "fastpath", "vectorized")


@pytest.mark.parametrize("name", ["reference", "fastpath", "vectorized"])
def test_get_backend_roundtrip(name):
    backend = get_backend(name)
    assert backend.name == name
    # Instances are memoized: the registry hands back the same object.
    assert get_backend(name) is backend


def test_get_backend_unknown_name():
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("warp-drive")


def test_resolve_backend_name():
    assert resolve_backend_name(None, None) == DEFAULT_BACKEND
    assert resolve_backend_name("vectorized", None) == "vectorized"
    assert resolve_backend_name(None, True) == "fastpath"
    assert resolve_backend_name(None, False) == "reference"
    with pytest.raises(ValueError, match="not both"):
        resolve_backend_name("vectorized", True)


def test_simulator_exposes_backend():
    design = design_for_suite("spec")
    sim = HybridSimulator(
        design, _single_phase_workload(0.0), GatingMode.FULL, backend="vectorized"
    )
    assert sim.backend_name == "vectorized"
    assert sim.backend is get_backend("vectorized")
    assert sim.fastpath  # compat flag: anything faster than reference
    assert sim.fastpath_state is not None  # vectorized needs replay state


def test_simulator_reference_backend_has_no_replay_state():
    design = design_for_suite("spec")
    sim = HybridSimulator(
        design, _single_phase_workload(0.0), GatingMode.FULL, backend="reference"
    )
    assert sim.fastpath_state is None
    assert sim.core.fastpath_listener is None
    sim.run(10_000)  # runs the reference loop without error


# ----------------------------------------------------------- engine caching


def test_simjob_backend_excluded_from_cache_key():
    """Backends are bit-identical, so they may share cache entries."""
    keys = {
        SimJob(benchmark="bzip2", backend=backend).key()
        for backend in (None, "reference", "fastpath", "vectorized")
    }
    keys.add(SimJob(benchmark="bzip2", fastpath=True).key())
    keys.add(SimJob(benchmark="bzip2", fastpath=False).key())
    assert len(keys) == 1


def test_simjob_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        SimJob(benchmark="bzip2", backend="warp-drive")


def test_simjob_rejects_backend_fastpath_conflict():
    with pytest.raises(ValueError, match="not both"):
        SimJob(benchmark="bzip2", backend="vectorized", fastpath=True)


def test_non_key_fields_split_is_exhaustive():
    """Every SimJob field is either hashed by key() or in NON_KEY_FIELDS."""
    key_fields = {
        "benchmark",
        "profile",
        "design",
        "mode",
        "powerchop_config",
        "managed_units",
        "timeout_cycles",
        "max_instructions",
        "seed",
        "collect_phase_log",
        "probes",
        "obs_level",
        "cache_tag",
    }
    all_fields = {field.name for field in dataclasses.fields(SimJob)}
    assert all_fields == key_fields | NON_KEY_FIELDS
    assert not key_fields & NON_KEY_FIELDS


def test_key_fields_actually_vary_the_key():
    base = SimJob(benchmark="bzip2")
    assert base.key() != SimJob(benchmark="bzip2", seed=1).key()
    assert base.key() != SimJob(benchmark="bzip2", max_instructions=2).key()
    assert base.key() != SimJob(benchmark="bzip2", mode=GatingMode.MINIMAL).key()


# ------------------------------------------------- vectorized burst replay


def _single_phase_workload(random_frac, segment_blocks=64):
    mix = InstructionMix(scalar=5, vector=0, loads=3, stores=1, has_branch=True)
    blocks = []
    for i in range(4):
        pc = 0x1000 + i * 0x40
        branch = StaticBranch(pc=pc + (mix.total - 1) * 4, model=LoopBranch(16))
        blocks.append(
            BasicBlock(pc, mix, branch, taken_succ=(i + 1) % 4, fall_succ=(i + 1) % 4)
        )
    region = CodeRegion(0, blocks)
    behavior = MemoryBehavior(
        working_set_kb=1.0, pattern="loop", stride=8, random_frac=random_frac
    )
    phase = PhaseSpec("only", region, behavior)
    return SyntheticWorkload(
        "unit", "spec", [phase], [("only", segment_blocks)], seed=3
    )


def test_vectorized_records_bursts_on_deterministic_streams():
    design = design_for_suite("spec")
    sim = HybridSimulator(
        design, _single_phase_workload(0.0), GatingMode.FULL, backend="vectorized"
    )
    sim.run(50_000)
    state = sim.fastpath_state
    assert state.bursts_recorded > 0
    assert state.blocks_vectorized > 0
    assert state.blocks_fallback == 0


def test_vectorized_batches_random_streams():
    """random_frac > 0 batches through the bulk RNG plan — no fallback."""
    design = design_for_suite("spec")
    sim = HybridSimulator(
        design, _single_phase_workload(0.3), GatingMode.FULL, backend="vectorized"
    )
    sim.run(50_000)
    state = sim.fastpath_state
    assert state.bursts_recorded > 0
    assert state.blocks_vectorized > 0
    assert state.blocks_fallback == 0


def test_vectorized_idle_windows_extend_bursts():
    """Policy-idle window boundaries must not flush the burst.

    A long single-phase segment under POWERCHOP settles into a stable
    policy quickly; once the PVT holds a matching policy every boundary is
    idle, so the burst replays across many windows and the flush count
    stays far below the window count.
    """
    design = design_for_suite("spec")
    wl = _single_phase_workload(0.0, segment_blocks=5000)
    sim = HybridSimulator(
        design,
        wl,
        GatingMode.POWERCHOP,
        powerchop_config=_QUICK,
        backend="vectorized",
    )
    result = sim.run(50_000)
    state = sim.fastpath_state
    assert result.windows > 10
    assert state.bursts_recorded < result.windows / 2


def test_vectorized_timeout_mode_delegates_to_fastpath():
    """TIMEOUT gates the VPU per block — inherently scalar, so no bursts."""
    design = design_for_suite("spec")
    sim = HybridSimulator(
        design, _single_phase_workload(0.0), GatingMode.TIMEOUT, backend="vectorized"
    )
    sim.run(50_000)
    assert sim.fastpath_state.bursts_recorded == 0


def test_vectorized_probe_runs_delegate_to_reference():
    from repro.sim.probes import MetricsProbe

    ref_sim, ref = _run("bzip2", GatingMode.POWERCHOP, "reference")
    profile = get_profile("bzip2")
    sim = HybridSimulator(
        design_for_suite(profile.suite),
        build_workload(profile, 7),
        GatingMode.POWERCHOP,
        powerchop_config=_QUICK,
        backend="vectorized",
    )
    probe = MetricsProbe().build()
    result = sim.run(120_000, probes=(probe,))
    assert result.to_dict() == ref.to_dict()
    assert sim.fastpath_state.bursts_recorded == 0  # reference loop ran


def test_walk_table_is_memoized_per_region():
    wl = _single_phase_workload(0.0)
    region = wl.phases["only"].region
    table = _walk_table(region)
    assert _walk_table(region) is table
    branches, aux = table
    assert branches == [block.branch for block in region.blocks]
    assert [s[1] for s in aux.steps] == [block.pc for block in region.blocks]
    assert [s[2] for s in aux.steps] == [block.n_instr for block in region.blocks]


def test_attr_arrays_memoized_and_match_blocks():
    wl = _single_phase_workload(0.0)
    region = wl.phases["only"].region
    arrays = region.attr_arrays()
    assert region.attr_arrays() is arrays
    n_instr, n_mem, n_loads, n_vec = arrays
    assert n_instr.tolist() == [block.n_instr for block in region.blocks]
    assert n_mem.tolist() == [block.n_mem for block in region.blocks]
    assert n_loads.tolist() == [block.n_loads for block in region.blocks]
    assert n_vec.tolist() == [block.n_vec for block in region.blocks]
