"""Focused tests for the CDE's signature-variant policy inheritance."""

from repro.core.cde import CriticalityDecisionEngine, WindowStats
from repro.core.config import PowerChopConfig
from repro.core.policies import PolicyVector
from repro.uarch.config import SERVER


def make_cde(managed=("vpu",)):
    return CriticalityDecisionEngine(PowerChopConfig(managed_units=managed), SERVER)


def window(simd=0, instructions=10_000):
    return WindowStats(
        instructions=instructions,
        simd_instructions=simd,
        mlc_hits=0,
        mlc_accesses=0,
        branches=1000,
        mispredicts=10,
        bpu_large_active=True,
        mlc_at_full_ways=True,
    )


class TestInheritance:
    def test_three_of_four_overlap_inherits(self):
        cde = make_cde()
        base = (1, 2, 3, 4)
        cde.on_pvt_miss(base)
        policy = cde.feed_profile_window(base, window(simd=5000))
        assert policy is not None and policy.vpu_on is True

        variant = (1, 2, 3, 9)  # 4th-hottest slot wobbled
        action, inherited = cde.on_pvt_miss(variant)
        assert action == "register"
        assert inherited == policy
        assert cde.inherited_policies == 1
        assert cde.new_phases == 1  # the variant did not count as new

    def test_disjoint_signature_profiles_fresh(self):
        cde = make_cde()
        base = (1, 2, 3, 4)
        cde.on_pvt_miss(base)
        cde.feed_profile_window(base, window())
        action, _ = cde.on_pvt_miss((10, 20, 30, 40))
        assert action == "profile"
        assert cde.inherited_policies == 0

    def test_two_of_four_overlap_does_not_inherit(self):
        cde = make_cde()
        base = (1, 2, 3, 4)
        cde.on_pvt_miss(base)
        cde.feed_profile_window(base, window())
        action, _ = cde.on_pvt_miss((1, 2, 30, 40))
        assert action == "profile"

    def test_inherited_signature_becomes_known(self):
        cde = make_cde()
        base = (1, 2, 3, 4)
        cde.on_pvt_miss(base)
        cde.feed_profile_window(base, window())
        variant = (2, 3, 4, 5)
        cde.on_pvt_miss(variant)
        assert cde.known_policy(variant) is not None

    def test_short_signatures_inherit_conservatively(self):
        """A 1-translation signature must not inherit from everything."""
        cde = make_cde()
        base = (7,)
        cde.on_pvt_miss(base)
        policy = cde.feed_profile_window(base, window())
        assert policy is not None
        # A different singleton shares zero translations: no inheritance.
        action, _ = cde.on_pvt_miss((8,))
        assert action == "profile"

    def test_store_evicted_feeds_inheritance(self):
        cde = make_cde()
        stored = PolicyVector(False, True, SERVER.mlc_assoc)
        cde.store_evicted((5, 6, 7, 8), stored)
        action, payload = cde.on_pvt_miss((5, 6, 7, 9))
        assert (action, payload) == ("register", stored)
