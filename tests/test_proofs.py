"""Tests for proof certificates (repro.staticcheck.proofs).

Covers the proof pass itself (region / stream / window proofs and their
fingerprints), the on-disk :class:`ProofStore`, and — most importantly —
the soundness contract with the vectorized backend: certificates are
advisory, so simulation results are bit-identical with proofs attached,
absent, or *stale*, and a stale certificate is rejected at validation
time rather than trusted.
"""

import json

import pytest

from repro.isa.branches import BiasedBranch, GlobalCorrelatedBranch, LoopBranch
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.staticcheck.proofs import (
    BUFFERED,
    CLOSED_FORM,
    HISTORY_COUPLED,
    OPAQUE,
    PROOF_SCHEMA_VERSION,
    ProfileCertificate,
    ProofStore,
    certify_workload,
    classify_model,
    fingerprint_region,
    fingerprint_workload,
    prove_region,
    prove_streams,
    prove_window,
)
from repro.uarch.config import design_for_suite
from repro.workloads.kernels import PROFILES as KERNEL_PROFILES
from repro.workloads.profiles import build_workload
from repro.workloads.suites import ALL_BENCHMARKS, get_profile

from tests.test_backends import _QUICK, _deep_state


# ------------------------------------------------------------ classification


class TestClassification:
    def test_lattice_placement(self):
        from repro.isa.branches import PatternBranch, RandomBranch

        assert classify_model(LoopBranch(4)) == CLOSED_FORM
        assert classify_model(PatternBranch([True, False])) == CLOSED_FORM
        assert classify_model(BiasedBranch(0.5)) == BUFFERED
        assert classify_model(RandomBranch()) == BUFFERED
        assert classify_model(GlobalCorrelatedBranch()) == HISTORY_COUPLED

    def test_subclasses_are_opaque(self):
        # A subclass may override next_outcome arbitrarily; exact-type
        # dispatch must not inherit the parent's classification.
        class SneakyLoop(LoopBranch):
            pass

        assert classify_model(SneakyLoop(4)) == OPAQUE


# ------------------------------------------------------------- region proofs


class TestRegionProofs:
    def test_kernel_regions_certify_deterministic(self):
        for profile in KERNEL_PROFILES:
            workload = build_workload(profile)
            for name, phase in workload.phases.items():
                proof = prove_region(name, phase.region)
                assert proof.deterministic, proof.reasons
                assert proof.reasons == ()
                assert set(proof.classes) == {CLOSED_FORM}
                assert proof.period_lcm is not None and proof.period_lcm >= 1

    def test_paper_profiles_do_not_certify(self):
        # Every paper benchmark mixes in stochastic branches; the proof
        # must say so per-block rather than silently certify.
        workload = build_workload(get_profile("gobmk"))
        proofs = [
            prove_region(name, phase.region)
            for name, phase in workload.phases.items()
        ]
        assert not any(p.deterministic for p in proofs)
        assert all(p.reasons for p in proofs)
        assert all(p.period_lcm is None for p in proofs)

    def test_mutating_a_model_flips_the_verdict(self):
        workload = build_workload(get_profile("dgemm"))
        region = next(iter(workload.phases.values())).region
        before = prove_region("p", region)
        assert before.deterministic
        block = next(b for b in region.blocks if b.branch is not None)
        block.branch.model = BiasedBranch(0.5, seed=3)
        after = prove_region("p", region)
        assert not after.deterministic
        assert any("BiasedBranch" in r for r in after.reasons)


# ----------------------------------------------------- stream / window proofs


class TestStreamAndWindowProofs:
    def test_stream_slots_are_certified_disjoint(self):
        workload = build_workload(get_profile("stencil"))
        proof = prove_streams(workload)
        assert proof.slotted
        assert len(proof.slots) == len(workload.phases)
        # Slotted means pairwise-disjoint ranges by construction; check it.
        ranges = sorted((base, base + span) for _, base, span, *_ in proof.slots)
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi <= lo

    def test_window_head_bound_counts_every_block(self):
        workload = build_workload(get_profile("dgemm"))
        proof = prove_window(workload)
        regions = {p.region.region_id: p.region for p in workload.phases.values()}
        assert proof.n_regions == len(regions)
        assert proof.head_bound == sum(len(r.blocks) for r in regions.values())


# --------------------------------------------------------------- fingerprints


class TestFingerprints:
    def test_region_fingerprint_is_stable(self):
        region = next(
            iter(build_workload(get_profile("dgemm")).phases.values())
        ).region
        assert fingerprint_region(region) == fingerprint_region(region)

    def test_region_fingerprint_sees_model_mutation(self):
        workload = build_workload(get_profile("dgemm"))
        region = next(iter(workload.phases.values())).region
        before = fingerprint_region(region)
        block = next(b for b in region.blocks if b.branch is not None)
        block.branch.model = BiasedBranch(0.5, seed=3)
        assert fingerprint_region(region) != before

    def test_workload_fingerprint_sees_seed(self):
        profile = get_profile("dgemm")
        assert fingerprint_workload(build_workload(profile)) != (
            fingerprint_workload(build_workload(profile, seed=profile.seed + 1))
        )


# ------------------------------------------------------- certificate bundles


class TestCertificate:
    def test_json_round_trip(self):
        cert = certify_workload(get_profile("stencil"))
        wire = json.loads(json.dumps(cert.to_dict()))
        assert ProfileCertificate.from_dict(wire) == cert
        assert ProfileCertificate.from_dict(wire).content_hash == cert.content_hash

    def test_schema_version_is_stamped(self):
        cert = certify_workload(get_profile("dgemm"))
        assert cert.schema_version == PROOF_SCHEMA_VERSION

    def test_report_shape(self):
        report = certify_workload(get_profile("dgemm")).report()
        assert report["benchmark"] == "dgemm"
        assert report["deterministic_regions"] == report["regions"]
        assert report["stream_slotted"] is True
        assert report["non_deterministic_reasons"] == {}
        assert report["content_hash"]

    def test_certification_is_read_only(self):
        # Certifying the live workload must not advance any RNG: a
        # simulation after certification matches one without it.
        profile = get_profile("bzip2")
        design = design_for_suite(profile.suite)

        def run(certify_first):
            workload = build_workload(profile)
            if certify_first:
                certify_workload(profile, workload=workload)
            sim = HybridSimulator(design, workload, GatingMode.FULL)
            return sim.run(60_000).to_dict()

        assert run(True) == run(False)


# ----------------------------------------------------------------- the store


class TestProofStore:
    def test_round_trip(self, tmp_path):
        store = ProofStore(root=tmp_path, enabled=True)
        cert = certify_workload(get_profile("dgemm"))
        store.put(cert)
        assert store.get("dgemm", cert.seed) == cert
        assert store.hits == 1

    def test_disabled_store_is_inert(self, tmp_path):
        store = ProofStore(root=tmp_path, enabled=False)
        store.put(certify_workload(get_profile("dgemm")))
        assert list(tmp_path.iterdir()) == []
        assert store.get("dgemm", 409) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store = ProofStore(root=tmp_path, enabled=True)
        cert = certify_workload(get_profile("dgemm"))
        store.put(cert)
        path = store._path(store.key("dgemm", cert.seed))
        data = json.loads(path.read_text())
        data["schema_version"] = PROOF_SCHEMA_VERSION + 1
        path.write_text(json.dumps(data))
        assert store.get("dgemm", cert.seed) is None
        assert store.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ProofStore(root=tmp_path, enabled=True)
        cert = certify_workload(get_profile("dgemm"))
        store.put(cert)
        store._path(store.key("dgemm", cert.seed)).write_text("{not json")
        assert store.get("dgemm", cert.seed) is None

    def test_get_or_certify_rejects_stale_fingerprint(self, tmp_path):
        store = ProofStore(root=tmp_path, enabled=True)
        profile = get_profile("dgemm")
        first = store.get_or_certify(profile)
        # Mutate the live workload: the stored certificate no longer
        # describes it, so get_or_certify must re-certify.
        workload = build_workload(profile)
        region = next(iter(workload.phases.values())).region
        block = next(b for b in region.blocks if b.branch is not None)
        block.branch.model = BiasedBranch(0.5, seed=3)
        fresh = store.get_or_certify(profile, workload=workload)
        assert fresh.workload_fingerprint != first.workload_fingerprint
        assert not fresh.deterministic_regions


# ------------------------------------------- soundness with the vectorized run


def _kernel_sim(name, mode, backend, proofs=None, mutate=False):
    profile = get_profile(name)
    workload = build_workload(profile)
    if mutate:
        region = next(iter(workload.phases.values())).region
        block = next(b for b in region.blocks if b.branch is not None)
        block.branch.model = BiasedBranch(0.6, seed=11)
    return HybridSimulator(
        design_for_suite(profile.suite),
        workload,
        mode,
        powerchop_config=_QUICK if mode is GatingMode.POWERCHOP else None,
        backend=backend,
        proofs=proofs,
    )


@pytest.mark.parametrize("name", ["dgemm", "stencil"])
def test_memo_fires_on_certified_kernels(name):
    cert = certify_workload(get_profile(name))
    sim = _kernel_sim(name, GatingMode.FULL, "vectorized", proofs=cert)
    sim.run(200_000)
    fs = sim.fastpath_state
    assert fs.proof_validations == 1
    assert fs.proof_rejections == 0
    assert fs.walk_memo_records > 0
    assert fs.walk_memo_hits > 0
    assert fs.walk_memo_blocks > 0


@pytest.mark.parametrize("name", ["dgemm", "stencil"])
@pytest.mark.parametrize(
    "mode", [GatingMode.FULL, GatingMode.POWERCHOP, GatingMode.MINIMAL]
)
def test_proofs_are_bit_identical(name, mode):
    ref_sim = _kernel_sim(name, mode, "reference")
    ref = ref_sim.run(200_000).to_dict()
    ref_state = _deep_state(ref_sim)
    cert = certify_workload(get_profile(name))
    for proofs in (None, cert):
        sim = _kernel_sim(name, mode, "vectorized", proofs=proofs)
        assert sim.run(200_000).to_dict() == ref, (
            f"{name}/{mode.value} diverged (proofs={proofs is not None})"
        )
        assert _deep_state(sim) == ref_state


def test_stochastic_profile_with_certificate_never_memoizes():
    # A paper profile's certificate is valid but certifies no region, so
    # the memo must stay cold while the run stays bit-identical.
    cert = certify_workload(get_profile("gobmk"))
    assert not cert.deterministic_regions
    ref = _kernel_sim_paper("reference").run(120_000).to_dict()
    sim = _kernel_sim_paper("vectorized", proofs=cert)
    assert sim.run(120_000).to_dict() == ref
    assert sim.fastpath_state.walk_memo_records == 0
    assert sim.fastpath_state.walk_memo_hits == 0


def _kernel_sim_paper(backend, proofs=None):
    profile = get_profile("gobmk")
    return HybridSimulator(
        design_for_suite(profile.suite),
        build_workload(profile),
        GatingMode.FULL,
        backend=backend,
        proofs=proofs,
    )


def test_stale_certificate_is_rejected_and_harmless():
    # Adversarial: certify, then mutate the workload under the proof's
    # feet.  The backend must notice the fingerprint mismatch, run the
    # plain (runtime-checked) path, and still be bit-identical.
    stale = certify_workload(get_profile("dgemm"))
    ref_sim = _kernel_sim("dgemm", GatingMode.FULL, "reference", mutate=True)
    ref = ref_sim.run(120_000).to_dict()
    ref_state = _deep_state(ref_sim)

    sim = _kernel_sim(
        "dgemm", GatingMode.FULL, "vectorized", proofs=stale, mutate=True
    )
    assert sim.run(120_000).to_dict() == ref
    assert _deep_state(sim) == ref_state
    fs = sim.fastpath_state
    assert fs.proof_validations == 1
    assert fs.proof_rejections == 1
    assert fs.walk_memo_records == 0
    assert fs.walk_memo_hits == 0


def test_kernel_profiles_stay_out_of_the_paper_set():
    names = {p.name for p in ALL_BENCHMARKS}
    assert len(ALL_BENCHMARKS) == 29
    for profile in KERNEL_PROFILES:
        assert profile.name not in names
        assert get_profile(profile.name) is profile
