"""Unit tests for branch behaviour models."""

import pytest

from repro.isa.branches import (
    BiasedBranch,
    GlobalCorrelatedBranch,
    GlobalHistory,
    LoopBranch,
    PatternBranch,
    RandomBranch,
    StaticBranch,
)


@pytest.fixture
def history():
    return GlobalHistory()


class TestGlobalHistory:
    def test_push_and_read(self, history):
        history.push(True)
        history.push(False)
        assert history.bit(0) == 0  # most recent
        assert history.bit(1) == 1

    def test_depth_mask(self):
        history = GlobalHistory(depth=4)
        for _ in range(10):
            history.push(True)
        assert history.bits == 0b1111


class TestBiasedBranch:
    def test_strong_bias(self, history):
        branch = BiasedBranch(0.95, seed=1)
        taken = sum(branch.next_outcome(history) for _ in range(2000))
        assert 1800 < taken < 2000

    def test_never_taken(self, history):
        branch = BiasedBranch(0.0, seed=1)
        assert not any(branch.next_outcome(history) for _ in range(100))

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            BiasedBranch(1.5)

    def test_clone_replays_identically(self, history):
        branch = BiasedBranch(0.5, seed=42)
        outcomes = [branch.next_outcome(history) for _ in range(50)]
        clone = branch.clone()
        assert [clone.next_outcome(history) for _ in range(50)] == outcomes


class TestRandomBranch:
    def test_roughly_balanced(self, history):
        branch = RandomBranch(seed=3)
        taken = sum(branch.next_outcome(history) for _ in range(4000))
        assert 1700 < taken < 2300

    def test_clone_type(self):
        assert isinstance(RandomBranch(1).clone(), RandomBranch)


class TestLoopBranch:
    def test_period(self, history):
        branch = LoopBranch(period=4)
        outcomes = [branch.next_outcome(history) for _ in range(8)]
        assert outcomes == [True, True, True, False] * 2

    def test_min_period(self):
        with pytest.raises(ValueError):
            LoopBranch(1)

    def test_clone_resets_state(self, history):
        branch = LoopBranch(3)
        branch.next_outcome(history)
        clone = branch.clone()
        assert [clone.next_outcome(history) for _ in range(3)] == [True, True, False]


class TestPatternBranch:
    def test_repeats(self, history):
        pattern = [True, False, False]
        branch = PatternBranch(pattern)
        outcomes = [branch.next_outcome(history) for _ in range(9)]
        assert outcomes == pattern * 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PatternBranch([])


class TestGlobalCorrelatedBranch:
    def test_pure_parity(self):
        history = GlobalHistory()
        branch = GlobalCorrelatedBranch(offsets=(1, 2), noise=0.0)
        # Prime history: bits (from recent) = 1, 0, 1
        history.push(True)
        history.push(False)
        history.push(True)
        # parity of bit1 (0) and bit2 (1) -> 1 -> taken
        assert branch.next_outcome(history) is True

    def test_invert(self):
        history = GlobalHistory()
        history.push(True)
        history.push(False)
        history.push(True)
        branch = GlobalCorrelatedBranch(offsets=(1, 2), noise=0.0, invert=True)
        assert branch.next_outcome(history) is False

    def test_noise_flips_sometimes(self):
        history = GlobalHistory()
        branch = GlobalCorrelatedBranch(offsets=(1,), noise=1.0, seed=5)
        clean = GlobalCorrelatedBranch(offsets=(1,), noise=0.0)
        history.push(True)
        assert branch.next_outcome(history) != clean.next_outcome(history)

    def test_validation(self):
        with pytest.raises(ValueError):
            GlobalCorrelatedBranch(offsets=())
        with pytest.raises(ValueError):
            GlobalCorrelatedBranch(noise=2.0)


class TestStaticBranch:
    def test_resolve_updates_history_and_count(self):
        history = GlobalHistory()
        branch = StaticBranch(pc=0x100, model=BiasedBranch(1.0))
        assert branch.resolve(history) is True
        assert history.bit(0) == 1
        assert branch.executions == 1
