"""Coverage for small modules: branch mixes, memory levels, misc paths."""

import pytest

from repro.uarch.cache.hierarchy import MemoryLevel
from repro.workloads.mixes import (
    ALL_MIXES,
    GLOBAL_HEAVY,
    IRREGULAR,
    LOCAL_HEAVY,
    NOISY,
    PREDICTABLE,
)


class TestMixes:
    def test_all_mixes_registered(self):
        assert set(ALL_MIXES) == {
            "predictable",
            "local_heavy",
            "global_heavy",
            "irregular",
            "noisy",
        }

    @pytest.mark.parametrize("mix", list(ALL_MIXES.values()))
    def test_weights_positive_and_normalisable(self, mix):
        assert all(w > 0 for w in mix.values())
        assert 0.99 < sum(mix.values()) < 1.01

    def test_mixes_immutable(self):
        with pytest.raises(TypeError):
            PREDICTABLE["biased"] = 0.0

    def test_semantic_shape(self):
        # The mixes must actually encode their documented character.
        assert GLOBAL_HEAVY["global"] >= 0.4
        assert NOISY["random"] >= 0.5
        assert PREDICTABLE.get("global", 0) == 0
        assert LOCAL_HEAVY["pattern"] > 0
        assert IRREGULAR["global"] > 0 and IRREGULAR["random"] > 0


class TestMemoryLevel:
    def test_ordering(self):
        assert MemoryLevel.L1 < MemoryLevel.MLC < MemoryLevel.LLC < MemoryLevel.MEMORY

    def test_usable_as_index(self):
        counts = [0, 0, 0, 0]
        counts[MemoryLevel.MLC] += 1
        assert counts == [0, 1, 0, 0]


class TestPackageSurface:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_subpackage_exports(self):
        import repro.core as core
        import repro.uarch as uarch
        import repro.workloads as workloads
        import repro.power as power
        import repro.sim as sim
        import repro.analysis as analysis

        for module in (core, uarch, workloads, power, sim, analysis):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
