"""Tests for the benchmark profile registry (the paper's 29-app study set)."""

import pytest

from repro.workloads.profiles import BenchmarkProfile, PhaseDecl, RegionSpec, build_workload
from repro.workloads.generator import MemoryBehavior
from repro.workloads.suites import (
    ALL_BENCHMARKS,
    MOBILEBENCH,
    PARSEC,
    SPEC_FP,
    SPEC_INT,
    SUITES,
    get_profile,
    mobile_benchmarks,
    server_benchmarks,
)


class TestRegistry:
    def test_twenty_nine_applications(self):
        assert len(ALL_BENCHMARKS) == 29

    def test_suite_sizes(self):
        assert len(SPEC_INT) == 10
        assert len(SPEC_FP) == 8
        assert len(PARSEC) == 6
        assert len(MOBILEBENCH) == 5

    def test_names_unique(self):
        names = [p.name for p in ALL_BENCHMARKS]
        assert len(names) == len(set(names))

    def test_seeds_unique(self):
        seeds = [p.seed for p in ALL_BENCHMARKS]
        assert len(seeds) == len(set(seeds))

    def test_lookup(self):
        assert get_profile("gobmk").suite == "SPEC-INT"
        with pytest.raises(KeyError):
            get_profile("doom")

    def test_design_pairing(self):
        assert all(p.suite == "MobileBench" for p in mobile_benchmarks())
        assert all(p.suite != "MobileBench" for p in server_benchmarks())
        assert len(server_benchmarks()) + len(mobile_benchmarks()) == 29

    def test_suites_mapping(self):
        assert set(SUITES) == {"SPEC-INT", "SPEC-FP", "PARSEC", "MobileBench"}

    def test_every_profile_has_description(self):
        assert all(p.description for p in ALL_BENCHMARKS)


class TestProfileShapes:
    """Profiles must encode the behaviours the paper reports per app."""

    @pytest.mark.parametrize("name", ["namd", "dedup", "perlbench", "h264ref"])
    def test_sparse_vector_apps(self, name):
        profile = get_profile(name)
        assert any(p.region.vector_style == "sparse" for p in profile.phases)

    @pytest.mark.parametrize("name", ["milc", "lbm", "blackscholes", "cactusADM"])
    def test_dense_vector_apps(self, name):
        profile = get_profile(name)
        assert any(p.region.vector_style == "dense" for p in profile.phases)

    @pytest.mark.parametrize("name", ["milc", "libquantum", "streamcluster", "lbm"])
    def test_streaming_apps(self, name):
        profile = get_profile(name)
        assert any(p.memory.pattern == "stream" for p in profile.phases)

    def test_spec_int_mostly_scalar(self):
        for profile in SPEC_INT:
            dense = [p for p in profile.phases if p.region.vector_style == "dense"]
            # gobmk's pattern matcher is the only dense-vector SPEC-INT phase
            assert not dense or profile.name == "gobmk"

    def test_gems_alternates_resident_and_streaming(self):
        profile = get_profile("gems")
        patterns = {p.memory.pattern for p in profile.phases}
        assert patterns == {"loop", "stream"}

    def test_all_profiles_instantiate(self):
        for profile in ALL_BENCHMARKS:
            workload = build_workload(profile)
            assert workload.name == profile.name
            assert len(workload.phases) == len(profile.phases)


class TestProfileValidation:
    def _phase(self, name="p"):
        return PhaseDecl(
            name=name,
            region=RegionSpec(),
            memory=MemoryBehavior(),
            blocks=100,
        )

    def test_duplicate_phase_names_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="x",
                suite="test",
                phases=(self._phase("a"), self._phase("a")),
                schedule=("a",),
            )

    def test_unknown_schedule_entry_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="x",
                suite="test",
                phases=(self._phase("a"),),
                schedule=("a", "b"),
            )

    def test_phase_lookup(self):
        profile = BenchmarkProfile(
            name="x", suite="test", phases=(self._phase("a"),), schedule=("a",)
        )
        assert profile.phase("a").name == "a"
        with pytest.raises(KeyError):
            profile.phase("z")


class TestKernelProfiles:
    """The deterministic kernels (outside the paper's 29-app study set)."""

    def test_registered_but_outside_the_study_set(self):
        from repro.workloads.kernels import PROFILES
        from repro.workloads.suites import KERNEL_BENCHMARKS, kernel_benchmarks

        assert KERNEL_BENCHMARKS == PROFILES
        assert kernel_benchmarks() == list(PROFILES)
        study_names = {p.name for p in ALL_BENCHMARKS}
        for profile in PROFILES:
            assert profile.name not in study_names
            assert get_profile(profile.name) is profile
            assert profile.suite not in SUITES

    def test_kernels_instantiate_and_run(self):
        from repro.workloads.kernels import PROFILES

        for profile in PROFILES:
            workload = build_workload(profile)
            n = sum(1 for _ in workload.trace(2_000))
            assert n > 0

    def test_kernels_are_staticcheck_clean(self):
        from repro.staticcheck import analyze_profile
        from repro.workloads.kernels import PROFILES

        for profile in PROFILES:
            analysis = analyze_profile(profile)
            assert analysis.n_errors == 0, analysis.render()
            assert analysis.n_warnings == 0, analysis.render()

    def test_kernel_branch_models_are_all_closed_form(self):
        from repro.isa.branches import LoopBranch, PatternBranch
        from repro.workloads.kernels import PROFILES

        for profile in PROFILES:
            workload = build_workload(profile)
            for phase in workload.phases.values():
                for block in phase.region.blocks:
                    if block.branch is not None:
                        assert type(block.branch.model) in (
                            LoopBranch,
                            PatternBranch,
                        )
