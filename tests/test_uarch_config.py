"""Tests for the architectural design points (Table I)."""

import dataclasses

import pytest

from repro.uarch.config import (
    MOBILE,
    SERVER,
    design_by_name,
    design_for_suite,
)


class TestTableI:
    """Values the paper pins down in Table I."""

    def test_server_mlc(self):
        assert SERVER.mlc_kb == 1024
        assert SERVER.mlc_assoc == 8
        assert SERVER.mlc_area_frac == 0.35

    def test_server_gated_mlc_configs(self):
        one, half, full = SERVER.mlc_way_states
        assert SERVER.mlc_kb * half / full == 512  # 512KB 4-way
        assert SERVER.mlc_kb * one / full == 128  # 128KB 1-way

    def test_mobile_mlc(self):
        assert MOBILE.mlc_kb == 2048
        assert MOBILE.mlc_area_frac == 0.60
        one, half, full = MOBILE.mlc_way_states
        assert MOBILE.mlc_kb * half / full == 1024
        assert MOBILE.mlc_kb * one / full == 256

    def test_vpu_widths_and_areas(self):
        assert SERVER.vpu_width == 4
        assert SERVER.vpu_area_frac == 0.20
        assert MOBILE.vpu_width == 2
        assert MOBILE.vpu_area_frac == 0.18

    def test_bpu_areas_and_btbs(self):
        assert SERVER.bpu_area_frac == 0.04
        assert SERVER.bpu.large_btb_entries == 4096
        assert SERVER.bpu.small_btb_entries == 1024
        assert MOBILE.bpu_area_frac == 0.03
        assert MOBILE.bpu.large_btb_entries == 2048
        assert MOBILE.bpu.small_btb_entries == 512

    def test_chooser_sizes(self):
        assert SERVER.bpu.large_chooser_entries == 16384
        assert MOBILE.bpu.large_chooser_entries == 8192

    def test_gating_overheads(self):
        for design in (SERVER, MOBILE):
            assert design.mlc_switch_cycles == 50
            assert design.vpu_switch_cycles == 30
            assert design.bpu_switch_cycles == 20
            assert design.vpu_save_restore_cycles == 500

    def test_gated_leakage_five_percent(self):
        assert SERVER.gated_leakage_frac == 0.05

    def test_sleep_transistor_worst_case(self):
        assert SERVER.sleep_transistor_ratio == 0.20


class TestLookup:
    def test_by_short_name(self):
        assert design_by_name("server") is SERVER
        assert design_by_name("mobile") is MOBILE

    def test_by_full_name(self):
        assert design_by_name(SERVER.name) is SERVER

    def test_unknown(self):
        with pytest.raises(KeyError):
            design_by_name("gpu")

    def test_suite_pairing(self):
        assert design_for_suite("MobileBench") is MOBILE
        assert design_for_suite("SPEC-INT") is SERVER
        assert design_for_suite("PARSEC") is SERVER


class TestValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError):
            dataclasses.replace(SERVER, kind="tablet")

    def test_bad_stall_factor(self):
        with pytest.raises(ValueError):
            dataclasses.replace(SERVER, memory_stall_factor=0.0)

    def test_bad_issue_width(self):
        with pytest.raises(ValueError):
            dataclasses.replace(SERVER, issue_width=0)

    def test_frequency_hz(self):
        assert SERVER.frequency_hz == pytest.approx(2.66e9)

    def test_llc_presence(self):
        assert SERVER.has_llc
        assert not MOBILE.has_llc
