"""Additional property-based tests: drowsy cache, prefetcher, HTB/PVT
interplay, energy accounting invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.cache.drowsy import DrowsySetAssocCache
from repro.uarch.cache.prefetch import StreamPrefetcher
from repro.uarch.config import SERVER
from repro.uarch.core import CoreModel
from repro.power.accounting import EnergyAccounting


# ------------------------------------------------------------------ drowsy

drowsy_ops = st.lists(
    st.one_of(
        st.tuples(st.just("access"), st.integers(min_value=0, max_value=63)),
        st.tuples(st.just("drowse"), st.just(0)),
    ),
    max_size=150,
)


@given(ops=drowsy_ops)
@settings(max_examples=60)
def test_drowsy_count_matches_entries(ops):
    cache = DrowsySetAssocCache(1, 2, 64, "d")
    now = 0.0
    for op, value in ops:
        now += 1.0
        if op == "access":
            cache.access_timed(value * 64, now, is_write=value % 3 == 0)
        else:
            cache.drowse_all(now)
        actual = sum(
            1
            for cache_set in cache._sets
            for entry in cache_set
            if len(entry) > 2 and entry[2]
        )
        assert cache.drowsy_count == actual
        assert 0 <= cache.drowsy_count <= cache.resident_lines()


@given(ops=drowsy_ops)
@settings(max_examples=30)
def test_drowsy_fraction_bounded(ops):
    cache = DrowsySetAssocCache(1, 2, 64, "d")
    now = 0.0
    for op, value in ops:
        now += 1.0
        if op == "access":
            cache.access_timed(value * 64, now)
        else:
            cache.drowse_all(now)
    assert 0.0 <= cache.drowsy_fraction(max(now, 1.0)) <= 1.0


# --------------------------------------------------------------- prefetcher


@given(lines=st.lists(st.integers(min_value=0, max_value=10_000), max_size=300))
def test_prefetcher_accounting_consistent(lines):
    prefetcher = StreamPrefetcher(n_streams=4, window=4)
    for line in lines:
        prefetcher.access(line)
    assert prefetcher.hits + prefetcher.misses == len(lines)
    assert 0.0 <= prefetcher.coverage <= 1.0


@given(start=st.integers(min_value=0, max_value=1000),
       length=st.integers(min_value=2, max_value=100))
def test_prefetcher_covers_pure_sequential(start, length):
    prefetcher = StreamPrefetcher(n_streams=2, window=4)
    hits = sum(prefetcher.access(start + i) for i in range(length))
    assert hits == length - 1  # everything after the stream head


# ------------------------------------------------------- energy accounting


@given(
    switch_points=st.lists(
        st.floats(min_value=1.0, max_value=999_999.0), min_size=0, max_size=10
    )
)
@settings(max_examples=40)
def test_vpu_residency_always_normalised(switch_points):
    core = CoreModel(SERVER)
    accountant = EnergyAccounting(SERVER, core)
    state = True
    for point in sorted(switch_points):
        state = not state
        core.apply_vpu_state(state)
        accountant.on_switch("vpu", state, point)
    report = accountant.finalize(1_000_000.0)
    assert 0.0 <= report.vpu_on_frac <= 1.0
    assert report.leakage_j >= 0.0
    assert report.switch_counts["vpu"] == len(switch_points)


@given(
    way_points=st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=999_999.0),
            st.sampled_from([1, 4, 8]),
        ),
        max_size=8,
    )
)
@settings(max_examples=40)
def test_mlc_residency_sums_to_one(way_points):
    core = CoreModel(SERVER)
    accountant = EnergyAccounting(SERVER, core)
    for point, ways in sorted(way_points):
        core.apply_mlc_state(ways)
        accountant.on_switch("mlc", ways, point)
    report = accountant.finalize(1_000_000.0)
    assert abs(sum(report.mlc_way_residency.values()) - 1.0) < 1e-9
    # Leakage can never exceed the always-on budget.
    assert report.avg_leakage_w <= SERVER.core_leakage_w * (1 + 1e-9)
