"""Tests for the Policy Vector Table and policy-vector encoding."""

import pytest

from repro.core.policies import (
    PolicyVector,
    decode_policy_bits,
    encode_policy_bits,
    full_power_policy,
    min_power_policy,
)
from repro.core.pvt import PolicyVectorTable
from repro.uarch.config import MOBILE, SERVER


class TestPolicyVector:
    def test_full_and_min(self):
        full = full_power_policy(SERVER)
        minimal = min_power_policy(SERVER)
        assert full == PolicyVector(True, True, 8)
        assert minimal == PolicyVector(False, False, 1)

    def test_validate_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            PolicyVector(True, True, 3).validate(SERVER)

    @pytest.mark.parametrize("design", [SERVER, MOBILE])
    def test_encode_decode_roundtrip(self, design):
        one, half, full = design.mlc_way_states
        for vpu in (True, False):
            for bpu in (True, False):
                for ways in (one, half, full):
                    policy = PolicyVector(vpu, bpu, ways)
                    bits = encode_policy_bits(policy, design)
                    assert 0 <= bits <= 0b1111
                    assert decode_policy_bits(bits, design) == policy

    def test_figure6_examples(self):
        # Figure 6(b): "V=1, B=0, M=01" and "V=0, B=0, M=11"
        assert decode_policy_bits(0b1001, SERVER) == PolicyVector(True, False, 4)
        assert decode_policy_bits(0b0011, SERVER) == PolicyVector(False, False, 8)

    def test_extended_quarter_ways_encoding(self):
        # M=10 (reserved in the paper's 3-state policy) carries the
        # extended policy's quarter-ways state.
        quarter = SERVER.mlc_way_states_extended[1]
        policy = PolicyVector(True, True, quarter)
        assert encode_policy_bits(policy, SERVER) == 0b1110
        assert decode_policy_bits(0b0010, SERVER).mlc_ways == quarter

    def test_extended_roundtrip(self):
        for ways in SERVER.mlc_way_states_extended:
            policy = PolicyVector(False, True, ways)
            bits = encode_policy_bits(policy, SERVER)
            assert decode_policy_bits(bits, SERVER) == policy

    def test_bits_range_checked(self):
        with pytest.raises(ValueError):
            decode_policy_bits(16, SERVER)


class TestPVT:
    def _pvt(self, n=4):
        return PolicyVectorTable(n)

    def test_miss_then_hit(self):
        pvt = self._pvt()
        policy = full_power_policy(SERVER)
        assert pvt.lookup((1, 2, 3, 4)) is None
        pvt.insert((1, 2, 3, 4), policy)
        assert pvt.lookup((1, 2, 3, 4)) == policy
        assert (pvt.hits, pvt.misses) == (1, 1)

    def test_lru_eviction_returns_victim(self):
        pvt = self._pvt(2)
        a, b, c = (1,), (2,), (3,)
        policy = full_power_policy(SERVER)
        pvt.insert(a, policy)
        pvt.insert(b, policy)
        pvt.lookup(a)  # refresh a
        evicted = pvt.insert(c, policy)
        assert evicted == (b, policy)
        assert a in pvt and c in pvt and b not in pvt
        assert pvt.evictions == 1

    def test_reinsert_updates_in_place(self):
        pvt = self._pvt(2)
        policy1 = full_power_policy(SERVER)
        policy2 = min_power_policy(SERVER)
        pvt.insert((1,), policy1)
        assert pvt.insert((1,), policy2) is None
        assert pvt.lookup((1,)) == policy2
        assert len(pvt) == 1

    def test_capacity_bound(self):
        pvt = self._pvt(3)
        policy = full_power_policy(SERVER)
        for i in range(10):
            pvt.insert((i,), policy)
        assert len(pvt) == 3

    def test_miss_rate(self):
        pvt = self._pvt()
        pvt.lookup((1,))
        pvt.insert((1,), full_power_policy(SERVER))
        pvt.lookup((1,))
        assert pvt.miss_rate == 0.5

    def test_paper_storage(self):
        pvt = PolicyVectorTable()
        assert pvt.n_entries == 16
        assert pvt.storage_bytes == 264  # paper §IV-B4

    def test_validation(self):
        with pytest.raises(ValueError):
            PolicyVectorTable(0)
