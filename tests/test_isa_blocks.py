"""Unit tests for basic blocks and code regions."""

import pytest

from repro.isa.blocks import INSTR_BYTES, BasicBlock, BlockExec, CodeRegion
from repro.isa.branches import BiasedBranch, GlobalHistory, StaticBranch
from repro.isa.instructions import InstructionMix


def make_block(pc=0x1000, taken=True, scalar=5):
    mix = InstructionMix(scalar=scalar, loads=1, has_branch=True)
    branch = StaticBranch(pc=pc + scalar * 4, model=BiasedBranch(1.0 if taken else 0.0))
    return BasicBlock(pc, mix, branch, taken_succ=1, fall_succ=0)


class TestBasicBlock:
    def test_cached_counts(self):
        block = make_block()
        assert block.n_instr == block.mix.total == 7
        assert block.n_mem == 1
        assert block.n_loads == 1
        assert block.n_vec == 0

    def test_size_bytes(self):
        block = make_block()
        assert block.size_bytes == block.n_instr * INSTR_BYTES

    def test_branch_mix_consistency_enforced(self):
        mix = InstructionMix(scalar=3, has_branch=True)
        with pytest.raises(ValueError):
            BasicBlock(0x0, mix, branch=None)

    def test_next_block_taken(self):
        block = make_block(taken=True)
        succ, taken = block.next_block(GlobalHistory())
        assert (succ, taken) == (1, True)

    def test_next_block_not_taken(self):
        block = make_block(taken=False)
        succ, taken = block.next_block(GlobalHistory())
        assert (succ, taken) == (0, False)

    def test_unconditional_block(self):
        mix = InstructionMix(scalar=4, has_branch=False)
        block = BasicBlock(0x20, mix, None, taken_succ=3, fall_succ=2)
        succ, taken = block.next_block(GlobalHistory())
        assert (succ, taken) == (2, False)


class TestCodeRegion:
    def test_successor_validation(self):
        block = make_block()
        block.taken_succ = 5
        with pytest.raises(ValueError):
            CodeRegion(0, [block])

    def test_region_id_stamped(self):
        a, b = make_block(0x100), make_block(0x200)
        a.taken_succ = a.fall_succ = 1
        b.taken_succ = b.fall_succ = 0
        region = CodeRegion(7, [a, b])
        assert a.region_id == 7
        assert b.region_id == 7

    def test_static_instruction_count(self):
        a, b = make_block(0x100), make_block(0x200)
        a.taken_succ = a.fall_succ = 1
        b.taken_succ = b.fall_succ = 0
        region = CodeRegion(0, [a, b])
        assert region.total_static_instructions == a.n_instr + b.n_instr
        assert region.block_pcs() == [0x100, 0x200]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CodeRegion(0, [])

    def test_entry_bounds(self):
        block = make_block()
        block.taken_succ = block.fall_succ = 0
        with pytest.raises(ValueError):
            CodeRegion(0, [block], entry=3)


class TestBlockExec:
    def test_carries_payload(self):
        block = make_block()
        exec_ = BlockExec(block, True, (0x10, 0x20), "phase-a")
        assert exec_.block is block
        assert exec_.taken is True
        assert exec_.addresses == (0x10, 0x20)
        assert exec_.phase_name == "phase-a"
