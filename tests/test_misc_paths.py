"""Remaining-path coverage: seeds, phase streams, replay under gating."""

import io

from repro.sim.simulator import GatingMode, run_simulation
from repro.uarch.config import SERVER
from repro.uarch.core import CoreModel
from repro.workloads.generator import MemoryBehavior
from repro.workloads.profiles import build_workload
from repro.workloads.trace_io import export_trace, load_trace, replay_through_core


class TestSeedOverrides:
    def test_run_simulation_seed_changes_trace(self, tiny_profile):
        a = run_simulation(
            SERVER, tiny_profile, GatingMode.FULL, 50_000, seed=1
        )
        b = run_simulation(
            SERVER, tiny_profile, GatingMode.FULL, 50_000, seed=2
        )
        assert a.cycles != b.cycles

    def test_same_seed_same_cycles(self, tiny_profile):
        a = run_simulation(SERVER, tiny_profile, GatingMode.FULL, 50_000, seed=5)
        b = run_simulation(SERVER, tiny_profile, GatingMode.FULL, 50_000, seed=5)
        assert a.cycles == b.cycles


class TestPhaseStreams:
    def test_address_stream_persists_across_recurrences(self, tiny_profile):
        workload = build_workload(tiny_profile)
        phase = next(iter(workload.phases.values()))
        stream_a = phase.address_stream(0, 1)
        stream_b = phase.address_stream(0, 1)
        assert stream_a is stream_b  # reuse, not regeneration

    def test_distinct_phases_distinct_bases(self, tiny_profile):
        workload = build_workload(tiny_profile)
        phases = list(workload.phases.values())
        s0 = phases[0].address_stream(0, 1)
        s1 = phases[1].address_stream(1, 1)
        assert s0.base != s1.base


class TestReplayUnderGating:
    def _trace(self, tiny_profile):
        workload = build_workload(tiny_profile)
        buffer = io.StringIO()
        export_trace(workload, buffer, max_instructions=30_000)
        buffer.seek(0)
        return load_trace(buffer)

    def test_gated_replay_differs_from_full(self, tiny_profile):
        trace = self._trace(tiny_profile)
        full_core = CoreModel(SERVER)
        full_cycles = replay_through_core(trace, full_core)

        trace2 = self._trace(tiny_profile)
        gated_core = CoreModel(SERVER)
        gated_core.apply_vpu_state(False)
        gated_core.apply_mlc_state(1)
        gated_cycles = replay_through_core(trace2, gated_core)
        assert gated_cycles > full_cycles

    def test_replay_counts_instructions(self, tiny_profile):
        trace = self._trace(tiny_profile)
        core = CoreModel(SERVER)
        replay_through_core(trace, core)
        assert core.counters.instructions == trace.total_instructions


class TestMemoryBehaviorEdge:
    def test_tiny_working_set_clamped_to_stride(self):
        from repro.workloads.generator import AddressStream

        behavior = MemoryBehavior(working_set_kb=0.001, pattern="loop", stride=64)
        stream = AddressStream(behavior, base=0)
        addrs = stream.take(10)
        assert all(a == 0 for a in addrs)  # single-line working set

    def test_stream_wraps_at_private_limit(self):
        from repro.workloads.generator import AddressStream

        behavior = MemoryBehavior(working_set_kb=1, pattern="stream", stride=1 << 20)
        stream = AddressStream(behavior, base=0)
        addrs = stream.take(2000)
        assert max(addrs) < 1 << 30  # stays in the phase's address slot
