"""Tests for the unified simulation engine (jobs, probes, cache, sweeps)."""

import json
import time

import pytest

from repro.bt.runtime import ExecMode
from repro.core.config import PowerChopConfig
from repro.core.criticality import CriticalityThresholds
from repro.sim import engine
from repro.sim.engine import (
    ResultCache,
    SimJob,
    SweepRunner,
    execute_job,
    run_job,
)
from repro.sim.probes import IPCSeriesProbe, PhaseLogProbe, UnitActivityProbe
from repro.sim.results import SimulationResult
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import MOBILE, SERVER, design_for_suite
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile


@pytest.fixture(autouse=True)
def fresh_engine(monkeypatch, tmp_path):
    """Each test gets an empty memo and its own disk-cache directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    engine.clear_memo()
    yield
    engine.clear_memo()


def _six_jobs(budget=60_000):
    """A small mixed sweep: three modes on one server and one mobile app."""
    jobs = []
    for name in ("hmmer", "msn"):
        for mode in (GatingMode.FULL, GatingMode.POWERCHOP, GatingMode.MINIMAL):
            jobs.append(SimJob(benchmark=name, mode=mode, max_instructions=budget))
    return jobs


class TestSimJobValidation:
    def test_needs_benchmark_or_profile(self):
        with pytest.raises(ValueError):
            SimJob()

    def test_rejects_both_benchmark_and_profile(self):
        with pytest.raises(ValueError):
            SimJob(benchmark="hmmer", profile=get_profile("hmmer"))

    def test_rejects_bad_budget_and_units(self):
        with pytest.raises(ValueError):
            SimJob(benchmark="hmmer", max_instructions=0)
        with pytest.raises(ValueError):
            SimJob(benchmark="hmmer", managed_units=("vpu", "gpu"))

    def test_configure_requires_cache_tag(self):
        def tweak(simulator):
            simulator.core.apply_bpu_state(False)

        with pytest.raises(ValueError, match="cache_tag"):
            SimJob(benchmark="hmmer", configure=tweak)
        job = SimJob(benchmark="hmmer", configure=tweak, cache_tag="small-bpu")
        assert job.cache_tag == "small-bpu"

    def test_key_is_stable_and_content_sensitive(self):
        a = SimJob(benchmark="hmmer", max_instructions=50_000)
        b = SimJob(benchmark="hmmer", max_instructions=50_000)
        assert a.key() == b.key()
        assert a.key() != SimJob(benchmark="hmmer", max_instructions=50_001).key()
        assert a.key() != SimJob(benchmark="namd", max_instructions=50_000).key()
        assert (
            a.key()
            != SimJob(
                benchmark="hmmer", max_instructions=50_000, mode=GatingMode.POWERCHOP
            ).key()
        )

    def test_key_distinguishes_configs(self):
        base = SimJob(benchmark="hmmer", mode=GatingMode.POWERCHOP)
        tuned = SimJob(
            benchmark="hmmer",
            mode=GatingMode.POWERCHOP,
            powerchop_config=PowerChopConfig(
                thresholds=CriticalityThresholds(vpu=0.05)
            ),
        )
        assert base.key() != tuned.key()

    def test_inline_profile_resolves_design(self, tiny_profile):
        job = SimJob(profile=tiny_profile, max_instructions=10_000)
        assert job.resolve_profile() is tiny_profile
        assert job.resolve_design() is design_for_suite("test")


class TestResultSerialization:
    def test_round_trip(self):
        record = execute_job(
            SimJob(
                benchmark="hmmer", mode=GatingMode.POWERCHOP, max_instructions=80_000
            )
        )
        data = record.result.to_dict()
        rebuilt = SimulationResult.from_dict(json.loads(json.dumps(data)))
        assert rebuilt == record.result
        assert rebuilt.ipc == record.result.ipc
        assert rebuilt.energy.avg_power_w == record.result.energy.avg_power_w
        assert data["derived"]["ipc"] == record.result.ipc


class TestResultCache:
    def test_miss_then_hit_round_trips(self):
        job = SimJob(
            benchmark="hmmer",
            mode=GatingMode.POWERCHOP,
            max_instructions=80_000,
            collect_phase_log=True,
        )
        cache = ResultCache()
        assert cache.get(job.key()) is None
        record = run_job(job, cache=cache)
        assert not record.from_cache
        engine.clear_memo()
        again = run_job(job, cache=ResultCache())
        assert again.from_cache
        assert again.result == record.result
        # Phase log survives the JSON round trip with exact types.
        assert again.phase_log == record.phase_log
        assert again.phase_log, "PowerChop jobs collect phase vectors"
        signature, vector = again.phase_log[0]
        assert isinstance(signature, tuple)
        assert all(isinstance(tid, int) for tid in vector)

    def test_config_change_invalidates(self):
        cache = ResultCache()
        base = SimJob(benchmark="hmmer", mode=GatingMode.POWERCHOP, max_instructions=60_000)
        run_job(base, cache=cache)
        engine.clear_memo()
        tuned = SimJob(
            benchmark="hmmer",
            mode=GatingMode.POWERCHOP,
            max_instructions=60_000,
            powerchop_config=PowerChopConfig(window_size=500),
        )
        assert cache.get(tuned.key()) is None

    def test_corrupt_entry_is_a_miss(self):
        job = SimJob(benchmark="hmmer", max_instructions=60_000)
        cache = ResultCache()
        run_job(job, cache=cache)
        path = cache.root / f"{job.key()}.json"
        path.write_text("{not json")
        engine.clear_memo()
        assert ResultCache().get(job.key()) is None

    def test_disable_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        job = SimJob(benchmark="hmmer", max_instructions=60_000)
        cache = ResultCache()
        assert not cache.enabled
        run_job(job, cache=cache)
        assert not cache.root.is_dir() or not list(cache.root.glob("*.json"))

    def test_clear(self):
        cache = ResultCache()
        run_job(SimJob(benchmark="hmmer", max_instructions=60_000), cache=cache)
        assert cache.clear() == 1
        assert cache.clear() == 0


class TestSweepRunnerDeterminism:
    def test_parallel_matches_serial_bit_identical(self, monkeypatch, tmp_path):
        jobs = _six_jobs()

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        engine.clear_memo()
        serial = SweepRunner(workers=1).run(jobs)

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        monkeypatch.setenv("REPRO_JOBS", "4")
        engine.clear_memo()
        runner = SweepRunner()
        assert runner.workers == 4
        parallel = runner.run(jobs)

        assert [r.from_cache for r in parallel] == [False] * len(jobs)
        serial_dicts = [r.result.to_dict() for r in serial]
        parallel_dicts = [r.result.to_dict() for r in parallel]
        assert serial_dicts == parallel_dicts  # same order, same values
        assert [r.result.benchmark for r in parallel] == [j.benchmark for j in jobs]
        assert [r.result.mode for r in parallel] == [j.mode.value for j in jobs]

    def test_duplicate_jobs_share_one_record(self):
        job = SimJob(benchmark="hmmer", max_instructions=60_000)
        records = SweepRunner(workers=1).run([job, job, job])
        assert records[0] is records[1] is records[2]

    def test_unpicklable_jobs_fall_back_to_serial(self):
        def tweak(simulator):  # local closure: not picklable
            simulator.core.apply_bpu_state(False)

        jobs = [
            SimJob(
                benchmark="hmmer",
                max_instructions=60_000,
                configure=tweak,
                cache_tag="small-bpu",
            ),
            SimJob(benchmark="hmmer", max_instructions=60_000),
        ]
        records = SweepRunner(workers=4).run(jobs)
        assert len(records) == 2
        # The configured run really forced the small BPU: worse misprediction.
        assert (
            records[0].result.mispredict_rate >= records[1].result.mispredict_rate
        )

    def test_warm_disk_cache_is_10x_faster(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "warm"))
        jobs = _six_jobs(budget=250_000)

        engine.clear_memo()
        start = time.perf_counter()
        cold = SweepRunner(workers=1).run(jobs)
        cold_elapsed = time.perf_counter() - start

        engine.clear_memo()  # force the disk layer, not the memo
        start = time.perf_counter()
        warm = SweepRunner(workers=1).run(jobs)
        warm_elapsed = time.perf_counter() - start

        assert all(r.from_cache for r in warm)
        assert [r.result.to_dict() for r in warm] == [
            r.result.to_dict() for r in cold
        ]
        assert cold_elapsed >= 10 * warm_elapsed, (
            f"warm cache not >=10x faster: cold {cold_elapsed:.3f}s, "
            f"warm {warm_elapsed:.3f}s"
        )


def _legacy_timeseries_ipc(design, profile, configure, max_instructions, sample):
    """The pre-engine hand-rolled loop from experiments.common (no tail)."""
    workload = build_workload(profile)
    simulator = HybridSimulator(design, workload, GatingMode.FULL)
    configure(simulator)
    core, bt = simulator.core, simulator.bt
    series = []
    cycles = 0.0
    last_cycles = 0.0
    last_instr = 0
    boundary = sample
    for block_exec in workload.trace(max_instructions):
        exec_mode, bt_cycles, _entered = bt.on_block(block_exec.block)
        cycles += bt_cycles
        cycles += core.execute_block(block_exec, exec_mode is ExecMode.INTERPRETED)
        instructions = core.counters.instructions
        if instructions >= boundary:
            delta_c = cycles - last_cycles
            delta_i = instructions - last_instr
            series.append(delta_i / delta_c if delta_c else 0.0)
            last_cycles, last_instr = cycles, instructions
            boundary += sample
    return series


class TestProbes:
    @pytest.mark.parametrize(
        "bench_name,design",
        [("gems", SERVER), ("msn", MOBILE)],
        ids=["server", "mobile"],
    )
    def test_ipc_probe_matches_legacy_loop(self, bench_name, design):
        from repro.experiments.common import timeseries_ipc

        profile = get_profile(bench_name)

        def keep_default(simulator):
            pass

        legacy = _legacy_timeseries_ipc(
            design, profile, keep_default, 400_000, 50_000
        )
        probed = timeseries_ipc(design, profile, keep_default, 400_000, 50_000)
        assert legacy, "legacy loop produced samples"
        assert probed[: len(legacy)] == legacy  # bit-identical prefix
        assert len(probed) - len(legacy) <= 1  # plus at most the tail sample

    def test_ipc_probe_emits_trailing_half_window(self):
        profile = get_profile("hmmer")

        def keep_default(simulator):
            pass

        from repro.experiments.common import timeseries_ipc

        # ~130k instructions with 50k samples: boundaries at 50k and 100k,
        # plus a ~30k >= 25k trailing window the old loop silently dropped.
        legacy = _legacy_timeseries_ipc(
            SERVER, profile, keep_default, 130_000, 50_000
        )
        probed = timeseries_ipc(SERVER, profile, keep_default, 130_000, 50_000)
        assert len(legacy) == 2
        assert len(probed) == 3
        assert probed[:2] == legacy
        assert probed[2] > 0

    def test_probe_specs_in_job_and_cache(self):
        job = SimJob(
            benchmark="hmmer",
            mode=GatingMode.POWERCHOP,
            max_instructions=80_000,
            probes=(IPCSeriesProbe(sample_instructions=20_000), PhaseLogProbe()),
        )
        cache = ResultCache()
        record = run_job(job, cache=cache)
        assert len(record.probes["ipc_series"]) >= 3
        assert record.probes["phase_log"]  # collect_phase_vectors auto-enabled
        engine.clear_memo()
        warm = run_job(job, cache=ResultCache())
        assert warm.from_cache
        assert warm.probes["ipc_series"] == record.probes["ipc_series"]

    def test_unit_activity_probe_samples_windows(self):
        config = PowerChopConfig(window_size=200, warmup_windows=2)
        job = SimJob(
            benchmark="hmmer",
            mode=GatingMode.POWERCHOP,
            powerchop_config=config,
            max_instructions=120_000,
            probes=(UnitActivityProbe(),),
        )
        record = execute_job(job)
        samples = record.probes["unit_activity"]
        assert len(samples) == record.result.windows
        cycles = [sample[0] for sample in samples]
        assert cycles == sorted(cycles)
        assert all(sample[3] >= 1 for sample in samples)

    def test_probe_set_changes_job_key(self):
        plain = SimJob(benchmark="hmmer", max_instructions=50_000)
        probed = SimJob(
            benchmark="hmmer",
            max_instructions=50_000,
            probes=(IPCSeriesProbe(sample_instructions=10_000),),
        )
        assert plain.key() != probed.key()


class TestRunCachedShim:
    def test_configure_without_tag_raises(self):
        from repro.experiments.common import run_cached

        with pytest.raises(ValueError, match="cache_tag"):
            run_cached(
                "hmmer",
                GatingMode.FULL,
                configure=lambda simulator: None,
            )

    def test_workers_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "zero")
        with pytest.raises(ValueError):
            engine.default_workers()
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError):
            engine.default_workers()
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert engine.default_workers() == 3
