"""Shared fixtures for the test suite.

Besides the profile/config fixtures, this file provides the
fault-injection toolkit for the sweep-fabric suite:

- :class:`FaultyExecutor` — a picklable ``SimJob.configure`` callback
  that deterministically kills, hangs, or fails its worker (optionally
  only on the first attempt, via an on-disk latch);
- :class:`UnpicklableProbe` — a probe whose value poisons result
  pickling, so the job *runs* but its record cannot cross the process
  boundary;
- the ``crashing_job`` fixture — a factory for jobs carrying those
  faults;
- a hard ``@pytest.mark.timeout(seconds)`` marker enforced with
  ``SIGALRM``, so hang-injection tests can never wedge a CI runner (no
  pytest-timeout dependency needed).
"""

import os
import signal
import time
from dataclasses import dataclass
from typing import Optional

import pytest

from repro.core.config import PowerChopConfig
from repro.sim.probes import ProbeSpec, ProbeState
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import SERVER
from repro.workloads.generator import MemoryBehavior
from repro.workloads.profiles import (
    BenchmarkProfile,
    PhaseDecl,
    RegionSpec,
    build_workload,
)
from repro.workloads.mixes import GLOBAL_HEAVY, PREDICTABLE


# --------------------------------------------------- hard test timeouts


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Enforce ``@pytest.mark.timeout(seconds)`` with a SIGALRM deadline.

    A hang-injection test that escapes its in-test timeout would
    otherwise block the whole suite; the alarm turns it into an ordinary
    failure.  On platforms without ``SIGALRM`` the marker is a no-op.
    """
    marker = item.get_closest_marker("timeout")
    seconds = marker.args[0] if marker is not None and marker.args else None
    if not seconds or not hasattr(signal, "SIGALRM"):
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(f"test exceeded hard timeout of {seconds}s")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------- fault injection


class FaultyExecutor:
    """Deterministic fault injector used as a ``SimJob.configure`` callback.

    Runs inside the worker process just before the simulation starts.
    ``kind``:

    - ``"crash"`` — hard-kills the worker (``os._exit``), poisoning a
      ``ProcessPoolExecutor`` exactly like a segfault or OOM-kill;
    - ``"hang"``  — sleeps far past any reasonable job timeout;
    - ``"raise"`` — raises ``RuntimeError`` from the job body;
    - ``"ok"``    — no fault (control).

    With ``latch`` set, the fault fires only if the latch file does not
    exist yet (and creates it) — i.e. exactly once across attempts, which
    is what the retry-success tests need.  Instances are picklable, so
    faulty jobs travel to pool workers like any other job.
    """

    KINDS = ("crash", "hang", "raise", "ok")

    def __init__(self, kind: str, latch: Optional[str] = None) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        self.kind = kind
        self.latch = latch

    def __call__(self, simulator) -> None:
        if self.latch is not None:
            if os.path.exists(self.latch):
                return  # fault already fired once; behave normally
            with open(self.latch, "w"):
                pass
        if self.kind == "crash":
            os._exit(13)
        elif self.kind == "hang":
            time.sleep(600)
        elif self.kind == "raise":
            raise RuntimeError("injected fault")


@dataclass(frozen=True)
class UnpicklableProbe(ProbeSpec):
    """Probe whose value cannot be pickled back from a worker process."""

    @property
    def name(self) -> str:
        return "unpicklable"

    def build(self) -> "_UnpicklableState":
        return _UnpicklableState()


class _UnpicklableState(ProbeState):
    __slots__ = ()

    name = "unpicklable"

    def value(self):
        return lambda: None  # closures do not pickle


@pytest.fixture
def crashing_job(tmp_path):
    """Factory for :class:`~repro.sim.engine.SimJob` carrying an injected fault.

    ``make(kind, once=False, ...)`` returns a job whose worker crashes,
    hangs or raises deterministically; ``once=True`` arms the fault for
    the first attempt only (retries succeed).  Each distinct ``tag``
    yields a distinct cache key, so faulty jobs never alias healthy ones.
    """
    from repro.sim.engine import SimJob

    def _make(
        kind: str = "crash",
        once: bool = False,
        benchmark: str = "hmmer",
        budget: int = 30_000,
        tag: str = "",
        seed: Optional[int] = None,
    ) -> SimJob:
        label = tag or f"{kind}-{'once' if once else 'always'}"
        latch = str(tmp_path / f"latch-{label}") if once else None
        return SimJob(
            benchmark=benchmark,
            max_instructions=budget,
            seed=seed,
            configure=FaultyExecutor(kind, latch),
            cache_tag=f"fault-{label}",
        )

    return _make


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_cache(tmp_path_factory):
    """Point the engine's on-disk result cache at a per-session directory.

    Tier-1 tests still exercise both cache layers, but never read entries
    written by a previous (possibly different) version of the code.
    """
    path = tmp_path_factory.mktemp("engine-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def tiny_profile() -> BenchmarkProfile:
    """A fast two-phase workload exercising all three units."""
    return BenchmarkProfile(
        name="tiny",
        suite="test",
        phases=(
            PhaseDecl(
                name="vector_loop",
                region=RegionSpec(
                    n_blocks=8,
                    branch_mix=PREDICTABLE,
                    vector_frac=0.2,
                    vector_style="dense",
                ),
                memory=MemoryBehavior(working_set_kb=16, pattern="loop"),
                blocks=6000,
            ),
            PhaseDecl(
                name="scalar_chase",
                region=RegionSpec(n_blocks=10, branch_mix=GLOBAL_HEAVY, mem_frac=0.35),
                memory=MemoryBehavior(working_set_kb=256, pattern="random"),
                blocks=5000,
            ),
        ),
        schedule=("vector_loop", "scalar_chase", "vector_loop"),
        seed=7,
    )


@pytest.fixture
def quick_config() -> PowerChopConfig:
    """A PowerChop config sized for short test runs."""
    return PowerChopConfig(
        window_size=200, warmup_windows=2, collect_phase_vectors=True
    )


def run_tiny(
    profile: BenchmarkProfile,
    mode: GatingMode,
    design=SERVER,
    max_instructions: int = 120_000,
    config: PowerChopConfig | None = None,
):
    """Build a fresh workload and run one short simulation."""
    workload = build_workload(profile)
    simulator = HybridSimulator(design, workload, mode, powerchop_config=config)
    return simulator.run(max_instructions), simulator


@pytest.fixture
def run_quick(tiny_profile, quick_config):
    def _run(mode=GatingMode.FULL, design=SERVER, max_instructions=120_000):
        config = quick_config if mode is GatingMode.POWERCHOP else None
        return run_tiny(tiny_profile, mode, design, max_instructions, config)

    return _run
