"""Shared fixtures for the test suite."""

import os

import pytest

from repro.core.config import PowerChopConfig
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import SERVER
from repro.workloads.generator import MemoryBehavior
from repro.workloads.profiles import (
    BenchmarkProfile,
    PhaseDecl,
    RegionSpec,
    build_workload,
)
from repro.workloads.mixes import GLOBAL_HEAVY, PREDICTABLE


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_cache(tmp_path_factory):
    """Point the engine's on-disk result cache at a per-session directory.

    Tier-1 tests still exercise both cache layers, but never read entries
    written by a previous (possibly different) version of the code.
    """
    path = tmp_path_factory.mktemp("engine-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def tiny_profile() -> BenchmarkProfile:
    """A fast two-phase workload exercising all three units."""
    return BenchmarkProfile(
        name="tiny",
        suite="test",
        phases=(
            PhaseDecl(
                name="vector_loop",
                region=RegionSpec(
                    n_blocks=8,
                    branch_mix=PREDICTABLE,
                    vector_frac=0.2,
                    vector_style="dense",
                ),
                memory=MemoryBehavior(working_set_kb=16, pattern="loop"),
                blocks=6000,
            ),
            PhaseDecl(
                name="scalar_chase",
                region=RegionSpec(n_blocks=10, branch_mix=GLOBAL_HEAVY, mem_frac=0.35),
                memory=MemoryBehavior(working_set_kb=256, pattern="random"),
                blocks=5000,
            ),
        ),
        schedule=("vector_loop", "scalar_chase", "vector_loop"),
        seed=7,
    )


@pytest.fixture
def quick_config() -> PowerChopConfig:
    """A PowerChop config sized for short test runs."""
    return PowerChopConfig(
        window_size=200, warmup_windows=2, collect_phase_vectors=True
    )


def run_tiny(
    profile: BenchmarkProfile,
    mode: GatingMode,
    design=SERVER,
    max_instructions: int = 120_000,
    config: PowerChopConfig | None = None,
):
    """Build a fresh workload and run one short simulation."""
    workload = build_workload(profile)
    simulator = HybridSimulator(design, workload, mode, powerchop_config=config)
    return simulator.run(max_instructions), simulator


@pytest.fixture
def run_quick(tiny_profile, quick_config):
    def _run(mode=GatingMode.FULL, design=SERVER, max_instructions=120_000):
        config = quick_config if mode is GatingMode.POWERCHOP else None
        return run_tiny(tiny_profile, mode, design, max_instructions, config)

    return _run
