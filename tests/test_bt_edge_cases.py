"""Edge-case coverage for the BT runtime and translator interplay."""

import pytest

from repro.bt.runtime import BTRuntime, ExecMode
from repro.isa.blocks import BasicBlock, CodeRegion
from repro.isa.branches import BiasedBranch, LoopBranch, StaticBranch
from repro.isa.instructions import InstructionMix
from repro.uarch.config import SERVER


def block(pc, taken_p=0.0, taken_succ=0, fall_succ=0, scalar=6):
    mix = InstructionMix(scalar=scalar, has_branch=True)
    branch = StaticBranch(pc=pc + scalar * 4, model=BiasedBranch(taken_p))
    b = BasicBlock(pc, mix, branch, taken_succ, fall_succ)
    return b


def make_runtime(blocks, entry=0):
    region = CodeRegion(0, blocks, entry)
    return BTRuntime(SERVER, {0: region}), region


class TestSideExits:
    def test_divergence_exits_translation(self):
        # Two blocks: a falls to b (likely), but we drive a "taken" path to
        # itself to force a side exit mid-translation.
        a = block(0x100, taken_p=0.0, taken_succ=0, fall_succ=1)
        b = block(0x200, taken_p=0.0, taken_succ=0, fall_succ=0)
        runtime, region = make_runtime([a, b])
        # Heat up block a so it gets translated (covers a->b by fall path).
        for _ in range(SERVER.hot_threshold):
            runtime.on_block(a)
        mode, _cycles, entered = runtime.on_block(a)
        assert mode is ExecMode.TRANSLATED and entered is not None
        # Executing block a again (instead of the expected b) is a side
        # exit followed by a fresh lookup at a's translation head.
        mode2, _cycles2, entered2 = runtime.on_block(a)
        assert mode2 is ExecMode.TRANSLATED
        assert entered2 is not None  # re-entered the same translation

    def test_mid_translation_blocks_not_interpreted(self):
        a = block(0x100, taken_p=0.0, taken_succ=1, fall_succ=1)
        b = block(0x200, taken_p=0.0, taken_succ=0, fall_succ=0)
        runtime, _region = make_runtime([a, b])
        for _ in range(SERVER.hot_threshold):
            runtime.on_block(a)
            runtime.on_block(b)
        # a is hot and translated (covering b); b executions inside the
        # translation must not count as interpreted.
        before = runtime.interpreter.interpreted_blocks
        runtime.on_block(a)
        runtime.on_block(b)
        assert runtime.interpreter.interpreted_blocks == before


class TestLoopTranslations:
    def test_backedge_translation_is_short(self):
        # A 2-block loop: translation must stop when the path revisits.
        mix = InstructionMix(scalar=6, has_branch=True)
        a = BasicBlock(0x100, mix, StaticBranch(0x118, LoopBranch(8)), 0, 1)
        mix2 = InstructionMix(scalar=6, has_branch=True)
        b = BasicBlock(0x200, mix2, StaticBranch(0x218, LoopBranch(8)), 0, 0)
        runtime, region = make_runtime([a, b])
        translation = runtime.translator.translate(region, a)
        assert translation.n_blocks <= 2
        assert len(set(translation.block_pcs)) == translation.n_blocks


class TestTranslationAccounting:
    def test_region_cache_grows_monotonically(self):
        a = block(0x100, taken_p=0.5, taken_succ=1, fall_succ=1)
        b = block(0x200, taken_p=0.5, taken_succ=0, fall_succ=0)
        runtime, _region = make_runtime([a, b])
        sizes = []
        for _ in range(100):
            runtime.on_block(a)
            runtime.on_block(b)
            sizes.append(len(runtime.region_cache))
        assert sizes == sorted(sizes)
        assert sizes[-1] >= 1

    def test_translation_cycles_match_cost_model(self):
        a = block(0x100)
        runtime, _region = make_runtime([a])
        total = 0.0
        for _ in range(SERVER.hot_threshold + 1):
            _mode, cycles, _entered = runtime.on_block(a)
            total += cycles
        built = runtime.translator.instructions_translated
        assert total == pytest.approx(built * SERVER.translate_cycles_per_instr)
