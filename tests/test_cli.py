"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gobmk" in out
        assert "MobileBench" in out

    def test_designs(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "server" in out and "mobile" in out

    def test_run_powerchop(self, capsys):
        assert main(["run", "hmmer", "-n", "150000"]) == 0
        out = capsys.readouterr().out
        assert "hmmer" in out
        assert "vpu gated" in out
        assert "PVT" in out

    def test_run_full_mode(self, capsys):
        assert main(["run", "hmmer", "-n", "100000", "-m", "full"]) == 0
        out = capsys.readouterr().out
        assert "[full]" in out

    def test_run_explicit_design(self, capsys):
        assert main(["run", "hmmer", "-n", "100000", "-d", "mobile"]) == 0
        assert "mobile" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "hmmer", "-n", "150000"]) == 0
        out = capsys.readouterr().out
        assert "powerchop" in out and "minimal" in out

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["run", "doom", "-n", "1000"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestThresholdPresets:
    def test_presets_are_ordered(self):
        from repro.core.criticality import CriticalityThresholds

        conservative = CriticalityThresholds.conservative()
        default = CriticalityThresholds()
        aggressive = CriticalityThresholds.aggressive()
        assert conservative.vpu < default.vpu < aggressive.vpu
        assert conservative.mlc_high < default.mlc_high < aggressive.mlc_high
