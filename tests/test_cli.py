"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.sim.results import SimulationResult


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gobmk" in out
        assert "MobileBench" in out

    def test_designs(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "server" in out and "mobile" in out

    def test_run_powerchop(self, capsys):
        assert main(["run", "hmmer", "-n", "150000"]) == 0
        out = capsys.readouterr().out
        assert "hmmer" in out
        assert "vpu gated" in out
        assert "PVT" in out

    def test_run_full_mode(self, capsys):
        assert main(["run", "hmmer", "-n", "100000", "-m", "full"]) == 0
        out = capsys.readouterr().out
        assert "[full]" in out

    def test_run_explicit_design(self, capsys):
        assert main(["run", "hmmer", "-n", "100000", "-d", "mobile"]) == 0
        assert "mobile" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "hmmer", "-n", "150000"]) == 0
        out = capsys.readouterr().out
        assert "powerchop" in out and "minimal" in out

    def test_run_json_round_trips(self, capsys):
        assert main(["run", "hmmer", "-n", "120000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "hmmer"
        assert payload["derived"]["ipc"] > 0
        restored = SimulationResult.from_dict(payload)
        assert restored.to_dict() == payload

    def test_compare_json(self, capsys):
        assert main(["compare", "hmmer", "-n", "120000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["results"]) == {"full", "powerchop", "minimal"}
        assert payload["comparison"]["full"]["slowdown"] == 0.0
        full = SimulationResult.from_dict(payload["results"]["full"])
        assert full.mode == "full"

    def test_sweep_json_and_cache(self, capsys):
        argv = [
            "sweep", "hmmer", "namd",
            "-m", "full,minimal", "-n", "80000", "-j", "1", "--json",
        ]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert len(cold) == 4
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert all(entry["from_cache"] for entry in warm)
        assert [e["result"] for e in warm] == [e["result"] for e in cold]

    def test_sweep_table(self, capsys):
        assert main(["sweep", "hmmer", "-n", "80000"]) == 0
        out = capsys.readouterr().out
        assert "slowdown/power_red" in out
        assert "hmmer" in out

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["run", "doom", "-n", "1000"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestThresholdPresets:
    def test_presets_are_ordered(self):
        from repro.core.criticality import CriticalityThresholds

        conservative = CriticalityThresholds.conservative()
        default = CriticalityThresholds()
        aggressive = CriticalityThresholds.aggressive()
        assert conservative.vpu < default.vpu < aggressive.vpu
        assert conservative.mlc_high < default.mlc_high < aggressive.mlc_high
